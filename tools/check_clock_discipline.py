#!/usr/bin/env python
"""AST lint: time must flow through the injected Clock in covered code.

Determinism in the resilience / serving / USaaS stack rests on one rule:
the *only* place allowed to read the wall clock or block the process is
:mod:`repro.resilience.clock` (the sanctioned seam — ``MonotonicClock``
wraps ``time.monotonic``/``time.sleep``; ``ManualClock`` replaces them
in tests and soaks).  Everything else takes a ``Clock`` and calls
``clock.now()`` / ``clock.sleep()``.

A single stray ``time.time()`` in a covered module silently breaks
byte-identical replays — the failure shows up as flaky soak counters
far from the offending line — so the rule is enforced structurally:

* covered packages: ``repro/serving``, ``repro/resilience``,
  ``repro/streaming`` and ``repro/core/usaas`` (matched as contiguous
  path parts), plus any
  ``cluster*.py`` or ``vectorized*.py`` module anywhere under a
  ``repro`` package — the cluster router/soak layer and the vectorized
  block engines must stay deterministic no matter where a future
  refactor parks them;
* banned calls: ``time.time``, ``time.monotonic``, ``time.sleep``,
  ``time.perf_counter`` and ``time.monotonic_ns`` — whether reached via
  ``import time``, ``import time as t``, or ``from time import sleep``
  (aliases included);
* exemption: ``repro/resilience/clock.py`` itself.

Run directly (``python tools/check_clock_discipline.py [root]``) or via
the tier-1 test that wires it in (``tests/test_clock_discipline.py``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

Violation = Tuple[Path, int, str]

#: Attributes of the ``time`` module that read the wall clock or block.
BANNED_ATTRS = (
    "time", "monotonic", "sleep", "perf_counter",
    "monotonic_ns", "perf_counter_ns", "time_ns",
)

#: Directory suffixes (contiguous path parts) where the rule applies.
COVERED_DIRS = (
    ("repro", "serving"),
    ("repro", "resilience"),
    ("repro", "streaming"),
    ("repro", "prediction"),
    ("repro", "integrity"),
    ("repro", "core", "usaas"),
)

#: File stems covered anywhere under a ``repro`` package, regardless of
#: directory: the cluster routing/soak layer is deterministic-by-
#: contract (byte-identical counters per seed), so it stays covered
#: even if a refactor moves it out of the covered directories.  The
#: vectorized block engines carry the same contract (byte-identical
#: columns per seed across worker counts), so every ``vectorized*.py``
#: module under ``repro`` is covered too.
COVERED_FILE_STEMS = ("cluster", "vectorized")

#: The one sanctioned seam: the Clock implementations themselves.
EXEMPT_SUFFIXES = (("repro", "resilience", "clock.py"),)


def _suffix_match(parts: Tuple[str, ...], suffix: Tuple[str, ...]) -> bool:
    n = len(suffix)
    for i in range(len(parts) - n + 1):
        if parts[i:i + n] == suffix:
            return True
    return False


def is_covered(path: Path) -> bool:
    parts = Path(path).parts
    if any(_suffix_match(parts, s) for s in EXEMPT_SUFFIXES):
        return False
    # Directory suffixes must not swallow the filename part.
    dir_parts = parts[:-1]
    if any(_suffix_match(dir_parts, s) for s in COVERED_DIRS):
        return True
    return (
        "repro" in dir_parts
        and any(parts[-1].startswith(stem) for stem in COVERED_FILE_STEMS)
        and parts[-1].endswith(".py")
    )


class _ClockVisitor(ast.NodeVisitor):
    """Track aliases of ``time`` and its banned members, flag call sites."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.violations: List[Violation] = []
        self.module_aliases: Set[str] = set()       # names bound to time
        self.member_aliases: Dict[str, str] = {}    # name -> time.<member>

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self.module_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in BANNED_ATTRS:
                    self.member_aliases[alias.asname or alias.name] = (
                        alias.name
                    )
        self.generic_visit(node)

    def _flag(self, node: ast.AST, member: str) -> None:
        self.violations.append((
            self.path, node.lineno,
            f"direct time.{member}() bypasses the injected Clock; "
            f"take a repro.resilience.clock.Clock and use clock.now() / "
            f"clock.sleep() instead",
        ))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.module_aliases
            and func.attr in BANNED_ATTRS
        ):
            self._flag(node, func.attr)
        elif isinstance(func, ast.Name) and func.id in self.member_aliases:
            self._flag(node, self.member_aliases[func.id])
        self.generic_visit(node)


def check_file(path: Path) -> List[Violation]:
    if not is_covered(path):
        return []
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    visitor = _ClockVisitor(path)
    visitor.visit(tree)
    return visitor.violations


def check_tree(root: Path) -> List[Violation]:
    violations: List[Violation] = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path))
    return violations


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not root.exists():
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    violations = check_tree(root)
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"{len(violations)} violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Fail when the latest perf run regressed the cold path by >30 %.

Compares the last two entries of the ``BENCH_perf.json`` trajectory
(written by ``benchmarks/perf``) on the cold-generation metrics.  Warm
and parallel numbers are informational — they depend on cache and host
state — but a cold-path slowdown is a code regression.  Wall-clock
metrics additionally get an absolute noise floor (:data:`MIN_DELTA_S`)
so host-load jitter on millisecond phases cannot fail the gate; the
simulated-clock serving/cluster metrics get none.  Independently
of the pairwise comparison, the newest full-scale run must keep the
structural speedups above :data:`SPEEDUP_FLOOR_FAMILIES` (checked even
when there is no earlier run to compare against; each family applies
only once the run records its metrics).

Usage::

    python tools/check_bench_regression.py [BENCH_perf.json]

Exit codes: 0 ok — including "no trajectory file yet" and "fewer than
two comparable runs", both normal on a fresh checkout or first run —
1 regression found, 2 malformed trajectory (a file that exists but
cannot be parsed is broken state worth failing on, unlike absence).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

#: Cold-path metrics guarded against regression (seconds; lower = better).
#: The analysis entries guard the columnar read paths: column-block
#: build, the single-pass curve matrix, the bulk signal export and the
#: cold (score-everything) sentiment timeline.  The serving entries are
#: *simulated-clock* admitted-latency percentiles from the seeded soak:
#: byte-stable across hosts, so any movement at all is a behaviour
#: change in admission/deadline/shedding code, not measurement noise.
#: The cluster entries extend the same discipline to the multi-replica
#: soak *under replica loss*: admitted-latency percentiles and the shed
#: rate with one replica crashing mid-spike, guarding the failover /
#: rebalance / quota path end to end.  The streaming entry is the
#: simulated-time lag from an injected degradation to its experience
#: change point — seed-derived like the serving percentiles, so any
#: movement is a detector behaviour change.  The integrity entries
#: guard the trust-weighted robust aggregation's wall cost and the
#: simulated-time lag from a flood's first record to the online trust
#: gate's first quarantine.
GUARDED_METRICS = (
    "calls_cold_s",
    "corpus_cold_s",
    "calls_vec_s",
    "corpus_vec_s",
    "analysis_columns_build_s",
    "analysis_curve_matrix_s",
    "analysis_signals_columnar_s",
    "analysis_timeline_cold_s",
    "serving_p50_admitted_s",
    "serving_p99_admitted_s",
    "cluster_p50_admitted_s",
    "cluster_p99_admitted_s",
    "cluster_shed_rate",
    "streaming_detect_latency_s",
    "prediction_train_s",
    "prediction_batch_infer_s",
    "prediction_soak_p99_coalesced_s",
    "integrity_robust_agg_s",
    "integrity_detect_latency_s",
)

#: Allowed slowdown before the check fails.
THRESHOLD = 0.30

#: Absolute slack for wall-clock metrics.  Host-load jitter moves the
#: millisecond analysis phases by 2-5x between runs without any code
#: change, so a purely relative gate fails spuriously there; a real
#: cold-path regression at these scales is invisible anyway.  A
#: wall-clock metric regresses only when it is both >THRESHOLD slower
#: *and* at least this many seconds slower.  Simulated-clock metrics
#: (``serving_*`` / ``cluster_*``) are byte-stable by construction and
#: stay ratio-only — for them any drift is a behaviour change.
MIN_DELTA_S = 0.1

_SIMULATED_PREFIXES = (
    "serving_", "cluster_", "streaming_", "prediction_soak_",
    "integrity_detect_",
)

#: Absolute floors on structural speedups, checked on the *latest
#: full-scale* run alone (no previous run needed).  The cold metrics
#: above catch gradual drift between runs; these catch an optimised
#: path quietly collapsing back toward its reference cost — a "cold
#: regression" a ratio check can't see when both paths move together.
#: Floors are grouped into families and each family is enforced only
#: when the run records at least one of its metrics, so trajectory
#: entries that predate a family (e.g. pre-streaming full runs) stay
#: valid.  Within a present family every floor must hold.  Floors sit
#: well under the measured speedups (~10x vectorized calls, ~8x
#: corpus, ~13x incremental windows) so host noise can't trip them,
#: while a real structural loss (2-3x territory) fails loudly.
SPEEDUP_FLOOR_FAMILIES = {
    "vectorized": {
        "calls_vec_speedup": 5.0,
        "corpus_vec_speedup": 5.0,
    },
    "streaming": {
        "streaming_incremental_speedup": 5.0,
    },
    "prediction": {
        "prediction_batch_speedup": 20.0,
        "prediction_rows_per_s": 100000.0,
    },
    "integrity": {
        "integrity_rows_per_s": 20000.0,
    },
}


def _latest_comparable(runs: List[dict]) -> Optional[List[dict]]:
    """The last two runs at the same scale (comparing across scales lies)."""
    if len(runs) < 2:
        return None
    current = runs[-1]
    for previous in reversed(runs[:-1]):
        if previous.get("scale") == current.get("scale"):
            return [previous, current]
    return None


def check(path: Path) -> int:
    if not path.exists():
        print(f"{path}: no benchmark trajectory yet; nothing to compare "
              f"(run benchmarks/perf to start one)")
        return 0
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trajectory {path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(data, dict):
        print(f"error: {path}: trajectory must be a JSON object",
              file=sys.stderr)
        return 2
    runs = data.get("runs")
    if runs is None or runs == []:
        print(f"{path}: no runs recorded yet; nothing to compare")
        return 0
    if not isinstance(runs, list):
        print(f"error: {path}: 'runs' must be a list", file=sys.stderr)
        return 2
    floor_failures = _check_speedup_floors(runs)
    pair = _latest_comparable(runs)
    if pair is None:
        print(f"{path}: fewer than two comparable runs; nothing to compare")
        return 1 if floor_failures else 0
    previous, current = pair
    failures: Dict[str, str] = {}
    for metric in GUARDED_METRICS:
        before = previous.get("results", {}).get(metric)
        after = current.get("results", {}).get(metric)
        if not isinstance(before, (int, float)) or not isinstance(
            after, (int, float)
        ) or before <= 0:
            continue
        ratio = after / before
        simulated = metric.startswith(_SIMULATED_PREFIXES)
        verdict = "ok"
        if ratio > 1.0 + THRESHOLD and (
            simulated or after - before > MIN_DELTA_S
        ):
            verdict = "REGRESSION"
            failures[metric] = (
                f"{before:.3f}s -> {after:.3f}s ({ratio:.2f}x)"
            )
        elif ratio > 1.0 + THRESHOLD:
            verdict = "ok (within noise floor)"
        print(f"  {metric:26s} {before:8.3f}s -> {after:8.3f}s "
              f"({ratio:5.2f}x)  {verdict}")
    if failures:
        print(
            f"FAIL: cold path regressed beyond {THRESHOLD:.0%}: "
            + "; ".join(f"{k}: {v}" for k, v in failures.items()),
            file=sys.stderr,
        )
        return 1
    if floor_failures:
        return 1
    print(f"ok: cold path within {THRESHOLD:.0%} of the previous run")
    return 0


def _check_speedup_floors(runs: List[dict]) -> List[str]:
    """Enforce :data:`SPEEDUP_FLOOR_FAMILIES` on the newest full-scale run.

    Older runs legitimately predate the optimised paths, so floors
    apply per family: a family only fails when the run is full-scale
    *and records at least one of that family's metrics* — in which
    case every floor in the family must hold.
    """
    latest_full = None
    for run in reversed(runs):
        if run.get("scale") == "full":
            latest_full = run
            break
    if latest_full is None:
        return []
    results = latest_full.get("results", {})
    failures: List[str] = []
    for family, floors in sorted(SPEEDUP_FLOOR_FAMILIES.items()):
        if not any(metric in results for metric in floors):
            continue  # run predates this family's harness phase
        for metric, floor in sorted(floors.items()):
            unit = "/s" if metric.endswith("_per_s") else "x"
            value = results.get(metric)
            if not isinstance(value, (int, float)) or value < floor:
                shown = (
                    f"{value:.2f}{unit}"
                    if isinstance(value, (int, float)) else value
                )
                failures.append(
                    f"{metric}: {shown} < {floor:.1f}{unit} floor"
                )
                print(f"  {metric:26s} {shown}  "
                      f"(floor {floor:.1f}{unit})  FAIL")
            else:
                print(f"  {metric:26s} {value:8.2f}{unit} "
                      f"(floor {floor:.1f}{unit})  ok")
    if failures:
        print(
            "FAIL: speedup floor violated: " + "; ".join(failures),
            file=sys.stderr,
        )
    return failures


def main(argv: List[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else Path("BENCH_perf.json")
    return check(path)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

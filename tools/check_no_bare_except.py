#!/usr/bin/env python
"""AST lint: forbid silent exception swallowing in ``src/``.

Two patterns are banned everywhere:

* bare ``except:`` — catches ``KeyboardInterrupt``/``SystemExit`` and
  hides programming errors;
* ``except Exception:`` (or ``except BaseException:``) whose handler
  body is only ``pass``/``...`` — the classic silent swallow that turns
  a broken source into a silently wrong answer.

Inside the fault-handling subsystems — ``repro/perf/`` and
``repro/resilience/`` — and in any ``vectorized*.py`` module under
``repro`` (the block engines, whose byte-identity contract a swallowed
failure would corrupt silently) the rule is stricter: *any* except
handler whose body only swallows (``pass``/``...``) is flagged, however
narrow the caught type.  That code's whole job is to observe failures; a
handler there must at minimum count, log, or re-route what it caught
(``continue``/``return`` with a recorded outcome are fine — a bare
``pass`` is not).

The resilience layer exists precisely so code never needs these: route
failures through ``repro.errors`` types and the health ledger instead.

Run directly (``python tools/check_no_bare_except.py [root]``) or via
the test that wires it into tier-1.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

Violation = Tuple[Path, int, str]

_BROAD = {"Exception", "BaseException"}

#: Directory suffixes (as contiguous path parts) where the strict rule
#: applies: any swallow-only handler is a violation, narrow types too.
STRICT_DIRS = (
    ("repro", "perf"),
    ("repro", "resilience"),
    ("repro", "prediction"),
    ("repro", "integrity"),
)

#: File stems under ``repro`` that are strict wherever they live: the
#: vectorized block engines promise byte-identical columns per seed, and
#: a swallowed exception there degrades silently into wrong numbers.
STRICT_FILE_STEMS = ("vectorized",)


def _is_strict(path: Path) -> bool:
    parts = Path(path).parts
    for suffix in STRICT_DIRS:
        n = len(suffix)
        for i in range(len(parts) - n):
            if parts[i:i + n] == suffix:
                return True
    return (
        "repro" in parts[:-1]
        and any(parts[-1].startswith(stem) for stem in STRICT_FILE_STEMS)
        and parts[-1].endswith(".py")
    )


def _is_swallow(body: List[ast.stmt]) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in body
    )


def _broad_names(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Tuple):
        return any(_broad_names(el) for el in node.elts)
    return False


def check_file(path: Path) -> List[Violation]:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    violations: List[Violation] = []
    strict = _is_strict(path)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            violations.append(
                (path, node.lineno, "bare 'except:' is forbidden")
            )
        elif _broad_names(node.type) and _is_swallow(node.body):
            violations.append(
                (path, node.lineno,
                 "'except Exception: pass' silently swallows failures")
            )
        elif strict and _is_swallow(node.body):
            violations.append(
                (path, node.lineno,
                 "handler silently swallows a failure in a fault-handling "
                 "module; count, log, or re-route it")
            )
    return violations


def check_tree(root: Path) -> List[Violation]:
    violations: List[Violation] = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path))
    return violations


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not root.exists():
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    violations = check_tree(root)
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"{len(violations)} violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python
"""AST lint: forbid silent exception swallowing in ``src/``.

Two patterns are banned:

* bare ``except:`` — catches ``KeyboardInterrupt``/``SystemExit`` and
  hides programming errors;
* ``except Exception:`` (or ``except BaseException:``) whose handler
  body is only ``pass``/``...`` — the classic silent swallow that turns
  a broken source into a silently wrong answer.

The resilience layer exists precisely so code never needs these: route
failures through ``repro.errors`` types and the health ledger instead.

Run directly (``python tools/check_no_bare_except.py [root]``) or via
the test that wires it into tier-1.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

Violation = Tuple[Path, int, str]

_BROAD = {"Exception", "BaseException"}


def _is_swallow(body: List[ast.stmt]) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in body
    )


def _broad_names(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Tuple):
        return any(_broad_names(el) for el in node.elts)
    return False


def check_file(path: Path) -> List[Violation]:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    violations: List[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            violations.append(
                (path, node.lineno, "bare 'except:' is forbidden")
            )
        elif _broad_names(node.type) and _is_swallow(node.body):
            violations.append(
                (path, node.lineno,
                 "'except Exception: pass' silently swallows failures")
            )
    return violations


def check_tree(root: Path) -> List[Violation]:
    violations: List[Violation] = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path))
    return violations


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not root.exists():
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    violations = check_tree(root)
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"{len(violations)} violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

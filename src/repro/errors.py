"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures without
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class SchemaError(ReproError):
    """A record violated the expected data schema."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent internal state."""


class AnalysisError(ReproError):
    """An analysis pipeline received data it cannot process."""


class QueryError(ReproError):
    """A USaaS query was malformed or referenced unknown signals."""


class ExtractionError(ReproError):
    """OCR or NLP extraction failed on the given input."""


class PrivacyError(ReproError):
    """An operation would have violated an aggregation/privacy floor."""


class ShardExecutionError(ReproError):
    """One shard of a parallel run failed every attempt it was given.

    Carries the shard index so operators (and tests) can see exactly
    which slice of the work list died, instead of a bare pool traceback.
    """

    def __init__(
        self,
        shard_index: int,
        attempts: int,
        last_error: "BaseException | None" = None,
    ) -> None:
        self.shard_index = int(shard_index)
        self.attempts = int(attempts)
        self.last_error = last_error
        detail = (
            f" (last: {type(last_error).__name__}: {last_error})"
            if last_error is not None else ""
        )
        super().__init__(
            f"shard {self.shard_index} failed after "
            f"{self.attempts} attempt(s){detail}"
        )

    def __reduce__(self):
        return (
            ShardExecutionError,
            (self.shard_index, self.attempts, self.last_error),
        )


class LockTimeoutError(ReproError):
    """An advisory file lock could not be acquired within its budget."""


class SourceUnavailableError(ReproError):
    """A signal source failed (raised, timed out) after all retries."""


class CircuitOpenError(SourceUnavailableError):
    """A circuit breaker is open: calls are being shed, not attempted."""


class DegradedServiceError(ReproError):
    """Too few signal sources survived to answer the query."""

"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures without
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class SchemaError(ReproError):
    """A record violated the expected data schema."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent internal state."""


class AnalysisError(ReproError):
    """An analysis pipeline received data it cannot process."""


class QueryError(ReproError):
    """A USaaS query was malformed or referenced unknown signals."""


class ExtractionError(ReproError):
    """OCR or NLP extraction failed on the given input."""


class PrivacyError(ReproError):
    """An operation would have violated an aggregation/privacy floor."""


class SourceUnavailableError(ReproError):
    """A signal source failed (raised, timed out) after all retries."""


class CircuitOpenError(SourceUnavailableError):
    """A circuit breaker is open: calls are being shed, not attempted."""


class DegradedServiceError(ReproError):
    """Too few signal sources survived to answer the query."""

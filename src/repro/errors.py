"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures without
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class SchemaError(ReproError):
    """A record violated the expected data schema."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent internal state."""


class AnalysisError(ReproError):
    """An analysis pipeline received data it cannot process."""


class InsufficientRatingsError(ConfigError, AnalysisError):
    """A training corpus carried too few explicit ratings to fit on.

    Raised by the MOS-predictor fit paths *before* any linear algebra
    runs, so a mis-configured feedback funnel (``FeedbackModel.
    sample_rate=0``, zero respondents) surfaces as a typed, actionable
    error naming the rating count instead of a numpy ``LinAlgError``
    from a degenerate normal-equation solve.  It derives from both
    :class:`ConfigError` (the root cause is configuration — the CLI
    maps it to exit 2) and :class:`AnalysisError` (the historical type
    of insufficient-data failures, so existing callers keep working).
    """

    def __init__(self, n_rated: int, n_required: int) -> None:
        self.n_rated = int(n_rated)
        self.n_required = int(n_required)
        super().__init__(
            f"corpus has {self.n_rated} rated session(s); fitting needs "
            f"at least {self.n_required} — raise the feedback sample "
            f"rate (FeedbackModel.sample_rate / --mos-sample-rate) or "
            f"supply more rated data"
        )

    def __reduce__(self):
        return (InsufficientRatingsError, (self.n_rated, self.n_required))


class QueryError(ReproError):
    """A USaaS query was malformed or referenced unknown signals."""


class ExtractionError(ReproError):
    """OCR or NLP extraction failed on the given input."""


class PrivacyError(ReproError):
    """An operation would have violated an aggregation/privacy floor."""


class ShardExecutionError(ReproError):
    """One shard of a parallel run failed every attempt it was given.

    Carries the shard index so operators (and tests) can see exactly
    which slice of the work list died, instead of a bare pool traceback.
    """

    def __init__(
        self,
        shard_index: int,
        attempts: int,
        last_error: "BaseException | None" = None,
    ) -> None:
        self.shard_index = int(shard_index)
        self.attempts = int(attempts)
        self.last_error = last_error
        detail = (
            f" (last: {type(last_error).__name__}: {last_error})"
            if last_error is not None else ""
        )
        super().__init__(
            f"shard {self.shard_index} failed after "
            f"{self.attempts} attempt(s){detail}"
        )

    def __reduce__(self):
        return (
            ShardExecutionError,
            (self.shard_index, self.attempts, self.last_error),
        )


class LockTimeoutError(ReproError):
    """An advisory file lock could not be acquired within its budget."""


class QueryRejectedError(ReproError):
    """The serving layer refused to admit a query.

    Carries the machine-readable ``reason`` (``"queue_full"`` when the
    pending queue is at capacity and shedding policy rejected the query,
    ``"deadline_infeasible"`` when the remaining deadline budget cannot
    fit even one attempt, ``"draining"`` when the server has stopped
    admitting, ``"quota_exceeded"`` when the cluster router shed the
    query for its tenant — token-bucket quota or weighted-fair share —
    and ``"no_replica"`` when routing found no live replica to take it)
    plus the query's priority class, so callers and tests can branch on
    *why* load was shed without parsing messages.
    """

    REASONS = ("queue_full", "deadline_infeasible", "draining",
               "quota_exceeded", "no_replica")

    def __init__(self, reason: str, priority: str = "interactive",
                 detail: str = "") -> None:
        if reason not in self.REASONS:
            raise ValueError(f"unknown rejection reason {reason!r}")
        self.reason = reason
        self.priority = priority
        self.detail = detail
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"query rejected ({reason}, priority={priority}){suffix}"
        )

    def __reduce__(self):
        return (QueryRejectedError, (self.reason, self.priority, self.detail))


class DeadlineExceededError(ReproError):
    """An admitted query missed its deadline budget.

    Raised by the synchronous serving path when the answer arrived (or
    failed) only after the query's :class:`~repro.serving.Deadline`
    expired; the overrun is bounded by one attempt timeout because the
    executor clamps per-attempt budgets to the remaining deadline.
    """

    def __init__(self, budget_s: float, overrun_s: float) -> None:
        self.budget_s = float(budget_s)
        self.overrun_s = float(overrun_s)
        super().__init__(
            f"deadline of {self.budget_s:.3f}s exceeded by "
            f"{self.overrun_s:.3f}s"
        )

    def __reduce__(self):
        return (DeadlineExceededError, (self.budget_s, self.overrun_s))


class SourceUnavailableError(ReproError):
    """A signal source failed (raised, timed out) after all retries."""


class CircuitOpenError(SourceUnavailableError):
    """A circuit breaker is open: calls are being shed, not attempted."""


class DegradedServiceError(ReproError):
    """Too few signal sources survived to answer the query."""

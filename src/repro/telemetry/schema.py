"""Record schema for the synthetic call dataset.

These dataclasses define the contract between the telemetry generator and
the §3 analysis pipeline.  Field names follow the paper's terminology:
*Presence*, *Cam On* and *Mic On* are percentages (§3.1), network metrics
come as per-session mean/median/P95 aggregates of five-second samples,
and explicit feedback (when sampled) is a 1–5 star rating.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SchemaError

NETWORK_METRICS = ("latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps")
AGGREGATES = ("mean", "median", "p95")
ENGAGEMENT_METRICS = ("presence_pct", "cam_on_pct", "mic_on_pct")


@dataclass(frozen=True)
class ParticipantRecord:
    """One user's session within one call.

    Attributes:
        call_id / user_id: opaque identifiers.
        platform: platform key from :mod:`repro.telemetry.platforms`.
        country: ISO-ish country code of the participant.
        session_duration_s: how long the user stayed.
        presence_pct: session duration as % of the call's median
            participant duration, capped at 100 (§3.1).
        cam_on_pct / mic_on_pct: % of the session with camera / mic on.
        dropped_early: True if the user left before the meeting ended.
        network: per-metric aggregates, ``network[metric][stat]`` with
            metric in ``NETWORK_METRICS`` and stat in ``AGGREGATES``.
        rating: 1–5 explicit feedback, or None (the overwhelmingly common
            case — the paper samples 0.1–1 % of sessions).
        conditioning: the user's long-term network-quality expectation in
            [0, 1] (1 = used to pristine networks); a §6 confounder.
    """

    call_id: str
    user_id: str
    platform: str
    country: str
    session_duration_s: float
    presence_pct: float
    cam_on_pct: float
    mic_on_pct: float
    dropped_early: bool
    network: Dict[str, Dict[str, float]]
    rating: Optional[int] = None
    conditioning: float = 0.5

    def __post_init__(self) -> None:
        if self.session_duration_s <= 0:
            raise SchemaError("session_duration_s must be positive")
        for name in ("presence_pct", "cam_on_pct", "mic_on_pct"):
            value = getattr(self, name)
            if not 0 <= value <= 100:
                raise SchemaError(f"{name} must be in [0, 100], got {value}")
        for metric in NETWORK_METRICS:
            if metric not in self.network:
                raise SchemaError(f"network aggregates missing {metric!r}")
            for stat in AGGREGATES:
                if stat not in self.network[metric]:
                    raise SchemaError(f"network[{metric!r}] missing {stat!r}")
        if self.rating is not None and self.rating not in (1, 2, 3, 4, 5):
            raise SchemaError(f"rating must be 1-5 or None, got {self.rating}")
        if not 0 <= self.conditioning <= 1:
            raise SchemaError("conditioning must be in [0, 1]")

    def metric(self, name: str, stat: str = "mean") -> float:
        """Shorthand accessor, e.g. ``p.metric('latency_ms')``."""
        try:
            return self.network[name][stat]
        except KeyError:
            raise SchemaError(f"no aggregate {name!r}/{stat!r}") from None

    def engagement(self, name: str) -> float:
        if name not in ENGAGEMENT_METRICS:
            raise SchemaError(f"unknown engagement metric {name!r}")
        return float(getattr(self, name))


@dataclass(frozen=True)
class CallRecord:
    """One meeting, with all participant sessions.

    Attributes:
        call_id: opaque identifier.
        start: wall-clock meeting start (timezone-naive, US Eastern —
            the paper's cohort is 9 AM–8 PM EST).
        scheduled_duration_s: the booked length of the meeting.
        is_enterprise: tenant type; the cohort keeps enterprise only.
        participants: all participant sessions.
    """

    call_id: str
    start: dt.datetime
    scheduled_duration_s: float
    is_enterprise: bool
    participants: List[ParticipantRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.scheduled_duration_s <= 0:
            raise SchemaError("scheduled_duration_s must be positive")
        for p in self.participants:
            if p.call_id != self.call_id:
                raise SchemaError(
                    f"participant {p.user_id} has call_id {p.call_id!r}, "
                    f"expected {self.call_id!r}"
                )

    @property
    def size(self) -> int:
        return len(self.participants)

    @property
    def countries(self) -> List[str]:
        return sorted({p.country for p in self.participants})

    def is_business_hours(self, start_hour: int = 9, end_hour: int = 20) -> bool:
        """Weekday and within [start_hour, end_hour) local time (§3.1)."""
        return self.start.weekday() < 5 and start_hour <= self.start.hour < end_hour

"""Meeting scheduling: when calls happen and who is in them.

The paper's cohort (§3.1) is *enterprise calls during business hours
(9 AM–8 PM EST) on weekdays with 3+ participants, all in the US*.  The
scheduler generates a realistic superset — some weekend/evening calls,
some tiny 1:1 calls, some international participants, some consumer
tenants — so that the cohort filter in :mod:`repro.engagement.cohort`
actually has something to remove.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError

# Scheduled lengths in minutes with calendar-realistic weights.
_DURATION_CHOICES_MIN = np.array([15, 30, 45, 60])
_DURATION_WEIGHTS = np.array([0.30, 0.45, 0.15, 0.10])

# Meeting size distribution: mostly small meetings, a tail of large ones.
_SIZE_CHOICES = np.array([2, 3, 4, 5, 6, 8, 10, 15, 25])
_SIZE_WEIGHTS = np.array([0.18, 0.20, 0.18, 0.14, 0.12, 0.08, 0.05, 0.03, 0.02])

_COUNTRIES = np.array(["US", "US", "US", "US", "US", "US", "US", "IN", "GB", "DE"])


@dataclass(frozen=True)
class Meeting:
    """A scheduled meeting before anyone joins."""

    call_id: str
    start: dt.datetime
    scheduled_duration_s: float
    size: int
    is_enterprise: bool
    countries: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigError("meeting size must be >= 1")
        if len(self.countries) != self.size:
            raise ConfigError("one country per participant required")
        if self.scheduled_duration_s <= 0:
            raise ConfigError("scheduled_duration_s must be positive")


class MeetingScheduler:
    """Draws meetings over a date span with business-hours clustering."""

    def __init__(
        self,
        span_start: dt.date = dt.date(2022, 1, 3),
        span_end: dt.date = dt.date(2022, 4, 29),
        enterprise_share: float = 0.85,
        us_only_share: float = 0.80,
    ) -> None:
        if span_end < span_start:
            raise ConfigError("span_end precedes span_start")
        if not 0 <= enterprise_share <= 1:
            raise ConfigError("enterprise_share must be in [0, 1]")
        if not 0 <= us_only_share <= 1:
            raise ConfigError("us_only_share must be in [0, 1]")
        self._span_start = span_start
        self._span_end = span_end
        self._enterprise_share = enterprise_share
        self._us_only_share = us_only_share

    def _sample_start(self, rng: np.random.Generator) -> dt.datetime:
        n_days = (self._span_end - self._span_start).days + 1
        while True:
            day = self._span_start + dt.timedelta(days=int(rng.integers(0, n_days)))
            # Calls cluster on weekdays; ~7 % land on weekends anyway.
            if day.weekday() >= 5 and rng.random() > 0.07:
                continue
            # Hours cluster in 9-20 local; ~10 % are off-hours.
            if rng.random() < 0.90:
                hour = int(rng.integers(9, 20))
            else:
                hour = int(rng.choice([7, 8, 20, 21, 22]))
            minute = int(rng.choice([0, 15, 30, 45]))
            return dt.datetime(day.year, day.month, day.day, hour, minute)

    def sample(self, rng: np.random.Generator, call_id: str) -> Meeting:
        """Draw one meeting."""
        size = int(rng.choice(_SIZE_CHOICES, p=_SIZE_WEIGHTS / _SIZE_WEIGHTS.sum()))
        duration_min = float(
            rng.choice(_DURATION_CHOICES_MIN, p=_DURATION_WEIGHTS / _DURATION_WEIGHTS.sum())
        )
        if rng.random() < self._us_only_share:
            countries = tuple(["US"] * size)
        else:
            countries = tuple(
                str(c) for c in rng.choice(_COUNTRIES, size=size)
            )
        return Meeting(
            call_id=call_id,
            start=self._sample_start(rng),
            scheduled_duration_s=duration_min * 60,
            size=size,
            is_enterprise=bool(rng.random() < self._enterprise_share),
            countries=countries,
        )

    def sample_many(self, rng: np.random.Generator, n: int,
                    id_prefix: str = "call") -> List[Meeting]:
        if n < 0:
            raise ConfigError("n must be non-negative")
        return [self.sample(rng, f"{id_prefix}-{i:08d}") for i in range(n)]

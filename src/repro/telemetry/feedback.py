"""Explicit end-of-call feedback: the sparse star ratings behind MOS.

§3.1: *"MS Teams requests a subset of users to submit explicit feedback at
the end of sessions — a rating between 1 (worst) and 5 (best). ... Such
feedback is only provided for a small fraction (between 0.1% and 1%) of
sessions."*

The rating model is driven primarily by the quality the user actually
experienced, with a personal leniency bias and response noise.  Users who
were driven out of the call early carry their annoyance into the rating.
Because engagement decisions (behavior.py) and ratings share the same
underlying experienced quality, the Fig. 4 engagement↔MOS correlation is
emergent rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class FeedbackModel:
    """End-of-session rating prompt and response model.

    Attributes:
        sample_rate: probability a session is prompted for feedback; the
            paper reports 0.1–1 %.
        response_rate: probability a prompted user actually answers rather
            than dismissing the splash screen.
        bias_sd: standard deviation of per-user leniency (rating points).
        noise_sd: response noise (rating points).
        drop_penalty: rating points removed when the user was driven to
            leave early.
    """

    sample_rate: float = 0.005
    response_rate: float = 0.5
    bias_sd: float = 0.45
    noise_sd: float = 0.55
    drop_penalty: float = 0.8

    def __post_init__(self) -> None:
        if not 0 <= self.sample_rate <= 1:
            raise ConfigError(f"sample_rate must be in [0, 1], got {self.sample_rate}")
        if not 0 <= self.response_rate <= 1:
            raise ConfigError("response_rate must be in [0, 1]")
        for name in ("bias_sd", "noise_sd", "drop_penalty"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    def maybe_rating(
        self,
        rng: np.random.Generator,
        experienced_mos: float,
        dropped_early: bool,
    ) -> Optional[int]:
        """Return a 1–5 rating, or None when not prompted / not answered.

        Args:
            experienced_mos: mean overall quality (1–5) over the intervals
                the user attended.
            dropped_early: whether the user was driven out early.
        """
        if not 1 <= experienced_mos <= 5:
            raise ConfigError(
                f"experienced_mos must be in [1, 5], got {experienced_mos}"
            )
        if rng.random() >= self.sample_rate:
            return None
        if rng.random() >= self.response_rate:
            return None
        raw = (
            experienced_mos
            + rng.normal(0, self.bias_sd)
            + rng.normal(0, self.noise_sd)
            - (self.drop_penalty if dropped_early else 0.0)
        )
        return int(np.clip(round(raw), 1, 5))

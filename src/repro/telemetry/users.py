"""Persistent users: identity, home networks, and conditioning that moves.

The default generator draws anonymous participants per call, with
long-term conditioning as a static random attribute.  That suffices for
the cross-sectional §3 analyses, but §6's conditioning confounder is a
*dynamic*: "exposure to network conditions could set expectations."

:class:`UserPopulation` provides the dynamic version: persistent users
who keep the same home network across calls and whose conditioning state
is an EWMA of the quality they have actually experienced.  A user who
lives on a pristine corporate network stays sensitive; one who has spent
months on congested DSL stops reacting to every blip.  The S6 benchmark
uses this to stage the paper's natural experiment.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.netsim.link import LinkProfile
from repro.rng import derive
from repro.telemetry.network_profiles import ProfileSampler
from repro.telemetry.platforms import PLATFORMS, Platform


@dataclass
class User:
    """One persistent user.

    Attributes:
        user_id: stable identifier across calls.
        platform: the device they habitually join from.
        home_profile: their usual access path (per-call traces still vary
            around it through the condition processes).
        conditioning: current expectation state in [0, 1]; 1 = accustomed
            to pristine networks (reacts fully to degradation).
        n_sessions: how many sessions they have been in.
    """

    user_id: str
    platform: Platform
    home_profile: LinkProfile
    conditioning: float
    n_sessions: int = 0
    _quality_sum: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.conditioning <= 1:
            raise ConfigError("conditioning must be in [0, 1]")

    @property
    def mean_experienced_quality(self) -> Optional[float]:
        """Average overall MOS across attended sessions (None if never)."""
        if self.n_sessions == 0:
            return None
        return self._quality_sum / self.n_sessions

    def record_session(self, experienced_mos: float,
                       adaptation: float = 0.1) -> None:
        """Fold one session's experienced quality into the expectation.

        Conditioning relaxes toward the normalised experienced quality:
        repeatedly good calls push it up (high expectations), repeatedly
        bad ones push it down (hardened).
        """
        if not 1 <= experienced_mos <= 5:
            raise ConfigError("experienced_mos must be in [1, 5]")
        if not 0 < adaptation <= 1:
            raise ConfigError("adaptation must be in (0, 1]")
        normalised = (experienced_mos - 1.0) / 4.0
        self.conditioning = float(np.clip(
            (1 - adaptation) * self.conditioning + adaptation * normalised,
            0.0, 1.0,
        ))
        self.n_sessions += 1
        self._quality_sum += experienced_mos


class UserPopulation:
    """A fixed population to draw meeting participants from."""

    def __init__(
        self,
        size: int = 2000,
        seed: int = 0,
        profiles: Optional[ProfileSampler] = None,
    ) -> None:
        if size < 10:
            raise ConfigError("population needs at least 10 users")
        rng = derive(seed, "telemetry", "users")
        sampler = profiles or ProfileSampler()
        keys = list(PLATFORMS)
        weights = np.array([PLATFORMS[k].population_share for k in keys])
        weights = weights / weights.sum()
        self._users: List[User] = []
        for i in range(size):
            platform = PLATFORMS[str(rng.choice(keys, p=weights))]
            self._users.append(User(
                user_id=f"user-{i:05d}",
                platform=platform,
                home_profile=sampler.sample(rng, is_mobile=platform.is_mobile),
                conditioning=float(np.clip(rng.beta(4, 2), 0, 1)),
            ))

    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self):
        return iter(self._users)

    def by_id(self, user_id: str) -> User:
        for user in self._users:
            if user.user_id == user_id:
                return user
        raise ConfigError(f"unknown user {user_id!r}")

    def sample(self, rng: np.random.Generator, n: int) -> List[User]:
        """Draw ``n`` distinct users for one meeting."""
        if n > len(self._users):
            raise ConfigError(
                f"meeting of {n} exceeds population of {len(self._users)}"
            )
        idx = rng.choice(len(self._users), size=n, replace=False)
        return [self._users[int(i)] for i in idx]

    def conditioning_distribution(self) -> np.ndarray:
        return np.array([u.conditioning for u in self._users])

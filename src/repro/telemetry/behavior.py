"""The user-behaviour engine: how experienced quality becomes user action.

This is the causal heart of the §3 reproduction.  Each participant is an
agent that, interval by interval, experiences the quality of its network
path (after the client's mitigation stack) and takes the actions the paper
observes, in the paper's observed order of escalation:

1. **Mute** — the means of first resort.  Delay makes rapid turn-taking
   painful, so the probability of keeping the microphone open tracks the
   interactivity score, which falls steeply up to ~150 ms and then
   flattens (the Fig. 1 Mic On shape).
2. **Camera off** — the second resort.  Driven by video quality (jitter
   artefacts, bitrate starvation) and, more weakly, by delay.
3. **Leave** — the last resort.  A per-interval hazard that stays small
   until audio becomes objectionable; residual audible gaps (which explode
   once raw loss exceeds the FEC budget, ~2–3 %) dominate this hazard.

Confounders the paper calls out in §6 are modelled explicitly: meeting
size raises the baseline mute rate (etiquette, not network), the platform
scales sensitivity and drop hazard (Fig. 3), and long-term *conditioning*
(a user's accumulated network expectations) damps reactions with a
deliberately weaker coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.netsim.vectorized import EffectiveArrays, QualityArrays
from repro.telemetry.platforms import Platform


@dataclass(frozen=True)
class BehaviorParams:
    """Coefficients of the behaviour engine.

    The defaults are calibrated (see ``benchmarks/``) so the emergent
    population curves match the shapes reported in the paper's Fig. 1–4.

    Attributes:
        mic_floor: fraction of the clean-conditions mic rate retained at
            zero interactivity (the Fig. 1 Mic On plateau level).
        cam_video_weight / cam_inter_weight: how camera propensity splits
            between video quality and interactivity; the remainder is a
            floor.
        base_leave_hazard: per-interval hazard of leaving for non-network
            reasons (agenda finished, conflicts, ...).
        audio_gap_leave_gain: leave-hazard gain per (residual audio loss
            %)^1.5 — the loss-driven drop-off mechanism.
        inter_leave_gain: leave-hazard gain per (1 - interactivity)^3 —
            delay frustration slowly pushing people out of the call.
        qoe_leave_gain: leave-hazard gain from generally poor overall QoE.
        meeting_size_mute_gain: added mute propensity per log2(size/3).
        conditioning_damping: fraction of network reaction removed for a
            fully conditioned (expectation = 0) user; deliberately small.
        early_leave_share: share of users with a planned early departure.
    """

    mic_floor: float = 0.66
    cam_floor: float = 0.28
    cam_video_weight: float = 0.47
    cam_inter_weight: float = 0.25
    base_leave_hazard: float = 0.0006
    audio_gap_leave_gain: float = 0.0016
    inter_leave_gain: float = 0.004
    qoe_leave_gain: float = 0.0030
    meeting_size_mute_gain: float = 0.06
    conditioning_damping: float = 0.25
    early_leave_share: float = 0.12

    def __post_init__(self) -> None:
        for name in ("mic_floor", "cam_floor", "cam_video_weight",
                     "cam_inter_weight", "conditioning_damping",
                     "early_leave_share"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.cam_floor + self.cam_video_weight + self.cam_inter_weight > 1.001:
            raise ConfigError("cam floor + weights must not exceed 1")
        for name in ("base_leave_hazard", "audio_gap_leave_gain",
                     "inter_leave_gain", "qoe_leave_gain",
                     "meeting_size_mute_gain"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class SessionOutcome:
    """What one participant ended up doing.

    Attributes:
        attended_intervals: number of five-second intervals attended.
        mic_on_frac / cam_on_frac: fraction of attended intervals with the
            channel on, in [0, 1].
        dropped_early: left before the planned end.
    """

    attended_intervals: int
    mic_on_frac: float
    cam_on_frac: float
    dropped_early: bool

    def __post_init__(self) -> None:
        if self.attended_intervals < 1:
            raise SimulationError("a session must attend at least one interval")
        for name in ("mic_on_frac", "cam_on_frac"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise SimulationError(f"{name} must be in [0, 1], got {value}")


class BehaviorModel:
    """Simulates one participant's in-call behaviour from quality arrays."""

    def __init__(self, params: BehaviorParams = BehaviorParams()) -> None:
        self._params = params

    @property
    def params(self) -> BehaviorParams:
        return self._params

    def simulate_session(
        self,
        rng: np.random.Generator,
        quality: QualityArrays,
        effective: EffectiveArrays,
        platform: Platform,
        meeting_size: int,
        conditioning: float,
    ) -> SessionOutcome:
        """Run the agent across the session's intervals.

        ``quality``/``effective`` must span the participant's *planned*
        stay; the agent may leave earlier.

        Args:
            conditioning: the user's long-term expectation of network
                quality in [0, 1]; 1 = accustomed to pristine networks
                (reacts fully), 0 = accustomed to bad ones (reacts less).
        """
        p = self._params
        n = len(quality.overall_mos)
        if n < 1:
            raise SimulationError("empty quality arrays")
        if meeting_size < 1:
            raise ConfigError("meeting_size must be >= 1")
        if not 0 <= conditioning <= 1:
            raise ConfigError("conditioning must be in [0, 1]")

        # Reaction damping: conditioned users react less (weak, per §6).
        reaction = (1 - p.conditioning_damping * (1 - conditioning))
        reaction *= platform.engagement_sensitivity

        # --- leave decision -------------------------------------------
        audio_gap = effective.residual_audio_loss_pct
        qoe_deficit = np.clip((3.9 - quality.overall_mos) / 2.9, 0.0, 1.0)
        delay_frustration = (1 - quality.interactivity) ** 3
        hazard = (
            p.base_leave_hazard
            + platform.drop_sensitivity * reaction * (
                p.audio_gap_leave_gain * audio_gap**1.5
                + p.inter_leave_gain * delay_frustration
                + p.qoe_leave_gain * qoe_deficit**2
            )
        )
        hazard = np.clip(hazard, 0.0, 0.5)
        draws = rng.random(n)
        triggered = draws < hazard
        if triggered.any():
            leave_at = int(np.argmax(triggered)) + 1
        else:
            leave_at = n
        # Planned (non-network) early departures.
        if rng.random() < p.early_leave_share:
            planned = int(np.ceil(n * rng.uniform(0.3, 0.95)))
            planned = max(1, planned)
        else:
            planned = n
        attended = max(1, min(leave_at, planned))
        dropped_early = leave_at < planned

        inter = quality.interactivity[:attended]
        video_q = (quality.video_mos[:attended] - 1) / 4

        # --- microphone -----------------------------------------------
        # Interactivity response with a floor: steep early, plateau late.
        mic_response = p.mic_floor + (1 - p.mic_floor) * inter
        # Degradation below perfect interactivity is what reaction scales.
        mic_response = 1 - reaction * (1 - mic_response)
        size_penalty = p.meeting_size_mute_gain * max(
            0.0, np.log2(max(meeting_size, 1) / 3)
        )
        p_mic = platform.base_mic_rate * np.clip(mic_response - size_penalty, 0.0, 1.0)
        mic_states = rng.random(attended) < p_mic

        # --- camera ----------------------------------------------------
        cam_response = (
            p.cam_floor
            + p.cam_video_weight * video_q
            + p.cam_inter_weight * inter
        ) / (p.cam_floor + p.cam_video_weight + p.cam_inter_weight)
        cam_response = 1 - reaction * np.clip(1 - cam_response, 0.0, 1.0)
        p_cam = platform.base_cam_rate * np.clip(cam_response, 0.0, 1.0)
        cam_states = rng.random(attended) < p_cam

        return SessionOutcome(
            attended_intervals=attended,
            mic_on_frac=float(mic_states.mean()),
            cam_on_frac=float(cam_states.mean()),
            dropped_early=bool(dropped_early),
        )

"""Per-participant network-condition sampling for call generation.

Fig. 1's methodology needs *support everywhere*: to study latency while
holding loss/jitter/bandwidth inside tight control windows, the call
population must contain sessions with (say) 250 ms latency but pristine
loss.  Real access networks provide exactly this diversity — a fibre user
on a VPN through a distant gateway has high latency and zero loss, a
nearby cable user in a congested neighbourhood has the opposite.

The tier-based sampler in :mod:`repro.netsim.link` correlates the four
metrics (bad tiers are bad at everything), so :class:`ProfileSampler`
partially decorrelates them: each metric is independently redrawn from a
wide log-uniform range with probability ``decorrelate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.netsim.link import LinkProfile, sample_link_profile

# Wide axis ranges covering each panel of Fig. 1 (plus headroom).
_LATENCY_RANGE_MS = (4.0, 350.0)
_LOSS_RANGE = (1e-4, 0.06)
_JITTER_RANGE_MS = (0.4, 25.0)
_BANDWIDTH_RANGE_MBPS = (0.4, 4.5)

#: The four redraw ranges in metric order (latency, loss, jitter,
#: bandwidth) — shared with the vectorized engine so both samplers
#: decorrelate over identical supports.
DECORRELATE_RANGES = (
    _LATENCY_RANGE_MS, _LOSS_RANGE, _JITTER_RANGE_MS, _BANDWIDTH_RANGE_MBPS,
)


def _log_uniform(rng: np.random.Generator, low: float, high: float) -> float:
    return float(np.exp(rng.uniform(np.log(low), np.log(high))))


@dataclass(frozen=True)
class ProfileSampler:
    """Draws per-session link profiles with tunable metric independence.

    Attributes:
        decorrelate: per-metric probability of replacing the tier-derived
            value with an independent wide-range draw.  0 reproduces the
            realistic-but-correlated tier population; 1 gives a fully
            independent population (maximum bin support, used by the
            figure benchmarks).
    """

    decorrelate: float = 0.5
    mobile_tier_affinity: float = 0.6

    def __post_init__(self) -> None:
        if not 0 <= self.decorrelate <= 1:
            raise ConfigError(f"decorrelate must be in [0, 1], got {self.decorrelate}")
        if not 0 <= self.mobile_tier_affinity <= 1:
            raise ConfigError(
                f"mobile_tier_affinity must be in [0, 1], "
                f"got {self.mobile_tier_affinity}"
            )

    def sample(
        self,
        rng: np.random.Generator,
        is_mobile: bool = False,
    ) -> LinkProfile:
        """Draw a profile, optionally conditioned on device class.

        Mobile participants draw from the cellular tiers with probability
        ``mobile_tier_affinity`` — the realistic platform/network
        correlation that makes §6's confounding question non-trivial (a
        naive latency curve partly reflects *who* is on bad networks).
        """
        if is_mobile and rng.random() < self.mobile_tier_affinity:
            tier = str(rng.choice(["mobile_lte", "weak_mobile"]))
            base = sample_link_profile(rng, tier=tier)
        else:
            base = sample_link_profile(rng)
        latency = base.base_latency_ms
        loss = base.loss_rate
        jitter = base.jitter_ms
        bandwidth = base.bandwidth_mbps
        if rng.random() < self.decorrelate:
            latency = _log_uniform(rng, *_LATENCY_RANGE_MS)
        if rng.random() < self.decorrelate:
            loss = _log_uniform(rng, *_LOSS_RANGE)
        if rng.random() < self.decorrelate:
            jitter = _log_uniform(rng, *_JITTER_RANGE_MS)
        if rng.random() < self.decorrelate:
            bandwidth = _log_uniform(rng, *_BANDWIDTH_RANGE_MBPS)
        return LinkProfile(
            base_latency_ms=latency,
            loss_rate=loss,
            jitter_ms=jitter,
            bandwidth_mbps=bandwidth,
            burstiness=base.burstiness,
        )

"""In-memory call dataset with filtering and (de)serialisation.

:class:`CallDataset` is what the generator produces and what every §3
analysis consumes.  It deliberately mirrors how one would query the real
telemetry store: iterate calls, iterate participant sessions, filter by
call-level and participant-level predicates.
"""

from __future__ import annotations

import datetime as dt
import json
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Union

from repro.errors import SchemaError
from repro.telemetry.schema import CallRecord, ParticipantRecord


class CallDataset:
    """An ordered collection of :class:`CallRecord`."""

    def __init__(self, calls: Iterable[CallRecord] = ()) -> None:
        self._calls: List[CallRecord] = list(calls)

    def __len__(self) -> int:
        return len(self._calls)

    def __iter__(self) -> Iterator[CallRecord]:
        return iter(self._calls)

    def __getitem__(self, i: int) -> CallRecord:
        return self._calls[i]

    def append(self, call: CallRecord) -> None:
        if not isinstance(call, CallRecord):
            raise SchemaError(f"expected CallRecord, got {type(call).__name__}")
        self._calls.append(call)
        # Columns built by repro.perf.columnar are memoized here; a
        # mutation must drop them so the next query rebuilds.
        self.__dict__.pop("_columnar_cache", None)

    def participants(self) -> Iterator[ParticipantRecord]:
        """All participant sessions across all calls."""
        for call in self._calls:
            yield from call.participants

    @property
    def n_participants(self) -> int:
        return sum(call.size for call in self._calls)

    def filter_calls(self, predicate: Callable[[CallRecord], bool]) -> "CallDataset":
        return CallDataset(call for call in self._calls if predicate(call))

    def rated_participants(self) -> List[ParticipantRecord]:
        """Sessions that carry explicit feedback (the MOS subset)."""
        return [p for p in self.participants() if p.rating is not None]

    # --- persistence ---------------------------------------------------

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write one JSON object per call (atomically: tmp + replace).

        An interrupted export can never leave a truncated file that
        later fails :meth:`from_jsonl` — the destination only appears
        once every record is on disk.
        """
        from repro.io.jsonl import atomic_writer

        with atomic_writer(path) as f:
            for call in self._calls:
                f.write(json.dumps(_call_to_dict(call)) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "CallDataset":
        calls = []
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    calls.append(_call_from_dict(json.loads(line)))
                except (ValueError, KeyError) as exc:
                    raise SchemaError(f"{path}:{line_no}: bad record: {exc}") from exc
        return cls(calls)


def _call_to_dict(call: CallRecord) -> dict:
    return {
        "call_id": call.call_id,
        "start": call.start.isoformat(),
        "scheduled_duration_s": call.scheduled_duration_s,
        "is_enterprise": call.is_enterprise,
        "participants": [
            {
                "call_id": p.call_id,
                "user_id": p.user_id,
                "platform": p.platform,
                "country": p.country,
                "session_duration_s": p.session_duration_s,
                "presence_pct": p.presence_pct,
                "cam_on_pct": p.cam_on_pct,
                "mic_on_pct": p.mic_on_pct,
                "dropped_early": p.dropped_early,
                "network": p.network,
                "rating": p.rating,
                "conditioning": p.conditioning,
            }
            for p in call.participants
        ],
    }


def _call_from_dict(data: dict) -> CallRecord:
    participants = [
        ParticipantRecord(
            call_id=pd["call_id"],
            user_id=pd["user_id"],
            platform=pd["platform"],
            country=pd["country"],
            session_duration_s=pd["session_duration_s"],
            presence_pct=pd["presence_pct"],
            cam_on_pct=pd["cam_on_pct"],
            mic_on_pct=pd["mic_on_pct"],
            dropped_early=pd["dropped_early"],
            network=pd["network"],
            rating=pd["rating"],
            conditioning=pd.get("conditioning", 0.5),
        )
        for pd in data["participants"]
    ]
    return CallRecord(
        call_id=data["call_id"],
        start=dt.datetime.fromisoformat(data["start"]),
        scheduled_duration_s=data["scheduled_duration_s"],
        is_enterprise=data["is_enterprise"],
        participants=participants,
    )


#: Public record codec for one call — the checkpoint layer persists
#: per-shard progress in exactly the serialisation `to_jsonl` uses, so a
#: resumed shard is byte-identical to a regenerated one.
call_to_record = _call_to_dict
call_from_record = _call_from_dict

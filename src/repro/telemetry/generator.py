"""End-to-end call-dataset generation.

Pipeline per call:

1. :class:`~repro.telemetry.meetings.MeetingScheduler` draws when the
   meeting happens, how long it is booked for and who attends.
2. For every participant, :class:`~repro.telemetry.network_profiles.ProfileSampler`
   draws a network path and :func:`~repro.netsim.trace.generate_condition_arrays`
   produces the five-second condition stream.
3. The platform's mitigation stack and the QoE model turn conditions into
   experienced quality (vectorised).
4. :class:`~repro.telemetry.behavior.BehaviorModel` runs the user agent,
   yielding attendance, mic and camera behaviour.
5. The client computes its end-of-session aggregates over the *attended*
   prefix of the trace — exactly the telemetry §3.1 describes — and
   :class:`~repro.telemetry.feedback.FeedbackModel` occasionally collects
   a star rating.
6. Presence is computed per call (duration relative to the call's median
   participant duration, capped at 100).
"""

from __future__ import annotations

import datetime as dt
import re
from dataclasses import dataclass, field, replace
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.netsim.link import LinkProfile
from repro.netsim.qoe import QoeModel
from repro.netsim.trace import SAMPLE_INTERVAL_S, generate_condition_arrays
from repro.netsim.vectorized import mitigate_arrays, qoe_arrays
from repro.rng import DEFAULT_SEED, derive
from repro.telemetry.behavior import BehaviorModel, BehaviorParams
from repro.telemetry.feedback import FeedbackModel
from repro.telemetry.meetings import Meeting, MeetingScheduler
from repro.telemetry.network_profiles import ProfileSampler
from repro.telemetry.platforms import PLATFORMS, Platform
from repro.telemetry.schema import CallRecord, ParticipantRecord
from repro.telemetry.store import CallDataset

if TYPE_CHECKING:
    from repro.perf.cache import ArtifactCache
    from repro.perf.checkpoint import CheckpointStore
    from repro.perf.parallel import ExecutionPolicy, ExecutionReport
    from repro.resilience.faults import ShardFaultInjector


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the dataset generator.

    Attributes:
        n_calls: number of meetings to simulate.
        seed: root seed; every run with the same config is identical.
        decorrelate: metric independence of the network population
            (see :class:`ProfileSampler`).
        mos_sample_rate: fraction of sessions prompted for a rating.
        mitigation_enabled: the DESIGN.md ablation switch — when False
            every platform runs with the safeguards disabled and the
            Fig. 1 loss panel steepens.
        behavior: behaviour-engine coefficients.
        qoe: quality model.
        outage_days: optional map of calendar day → severity in (0, 1];
            every participant's path is degraded on those days (loss and
            latency scale with severity).  This is how the §5
            "corroboration" scenario injects a network incident whose
            implicit-signal signature USaaS can match against social
            chatter.
        workers: processes used for generation (1 = in-process serial,
            0 = one per CPU).  Every call draws from its own RNG
            substream (``derive(seed, "call", call_id)``), so serial and
            parallel runs produce byte-identical datasets; ``workers``
            is an execution knob, never part of the artifact identity.
        persistent_users: draw meeting participants from a fixed
            :class:`~repro.telemetry.users.UserPopulation` whose
            conditioning *evolves* with experienced quality (§6's dynamic
            long-term conditioning); user ids are then stable across
            calls.  Off by default (the cross-sectional analyses don't
            need identity, and calls must be ordered in time for
            conditioning evolution to mean anything).
        population_size: size of the persistent population.
    """

    n_calls: int = 2000
    seed: int = DEFAULT_SEED
    decorrelate: float = 0.5
    mos_sample_rate: float = 0.005
    mitigation_enabled: bool = True
    behavior: BehaviorParams = field(default_factory=BehaviorParams)
    qoe: QoeModel = field(default_factory=QoeModel)
    outage_days: Mapping[dt.date, float] = field(default_factory=dict)
    persistent_users: bool = False
    population_size: int = 2000
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_calls < 0:
            raise ConfigError("n_calls must be non-negative")
        if self.workers < 0:
            raise ConfigError("workers must be >= 0 (0 = one per CPU)")
        if not 0 <= self.mos_sample_rate <= 1:
            raise ConfigError("mos_sample_rate must be in [0, 1]")
        for day, severity in self.outage_days.items():
            if not 0 < severity <= 1:
                raise ConfigError(
                    f"outage severity for {day} must be in (0, 1], "
                    f"got {severity}"
                )


class CallDatasetGenerator:
    """Generates a :class:`CallDataset` from a :class:`GeneratorConfig`."""

    def __init__(
        self,
        config: GeneratorConfig = GeneratorConfig(),
        scheduler: Optional[MeetingScheduler] = None,
        profiles: Optional[ProfileSampler] = None,
    ) -> None:
        self._config = config
        self._scheduler = scheduler or MeetingScheduler()
        self._profiles = profiles or ProfileSampler(decorrelate=config.decorrelate)
        self._behavior = BehaviorModel(config.behavior)
        self._feedback = FeedbackModel(sample_rate=config.mos_sample_rate)
        self._platform_keys = list(PLATFORMS)
        weights = np.array(
            [PLATFORMS[k].population_share for k in self._platform_keys]
        )
        self._platform_probs = weights / weights.sum()
        from repro.netsim.mitigation import MitigationStack

        if config.mitigation_enabled:
            self._stacks = {
                key: plat.mitigation_stack() for key, plat in PLATFORMS.items()
            }
        else:
            disabled = MitigationStack.disabled()
            self._stacks = {key: disabled for key in PLATFORMS}
        #: ExecutionReport / CheckpointStore of the last generate() call
        #: (None until a run executes, and on cache hits).
        self.last_execution: Optional["ExecutionReport"] = None
        self.last_checkpoint: Optional["CheckpointStore"] = None

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    def _sample_platform(self, rng: np.random.Generator) -> Platform:
        return PLATFORMS[
            str(rng.choice(self._platform_keys, p=self._platform_probs))
        ]

    def _simulate_participant(
        self,
        rng: np.random.Generator,
        meeting: Meeting,
        index: int,
        forced_profile: Optional[LinkProfile] = None,
        forced_platform: Optional[Platform] = None,
        user: Optional["User"] = None,
    ) -> Dict:
        if user is not None:
            platform = user.platform
            profile = user.home_profile
        else:
            platform = forced_platform or self._sample_platform(rng)
            profile = forced_profile or self._profiles.sample(
                rng, is_mobile=platform.is_mobile
            )
        severity = self._config.outage_days.get(meeting.start.date(), 0.0)
        if severity > 0:
            # A network incident degrades every path that day: loss from
            # failed re-routes, latency from recovery detours.
            profile = LinkProfile(
                base_latency_ms=profile.base_latency_ms * (1 + severity),
                loss_rate=min(0.2, profile.loss_rate + 0.05 * severity),
                jitter_ms=profile.jitter_ms * (1 + severity),
                bandwidth_mbps=profile.bandwidth_mbps,
                burstiness=min(1.0, profile.burstiness + 0.3 * severity),
            )
        if user is not None:
            conditioning = user.conditioning
        else:
            conditioning = float(np.clip(rng.beta(4, 2), 0, 1))

        n_intervals = max(2, int(round(meeting.scheduled_duration_s / SAMPLE_INTERVAL_S)))
        # Most users join on time; some a little late.
        if rng.random() < 0.25:
            late = int(rng.integers(1, max(2, n_intervals // 6)))
            n_intervals = max(2, n_intervals - late)

        conditions = generate_condition_arrays(profile, rng, n_intervals)
        effective = mitigate_arrays(
            self._stacks[platform.key],
            conditions["latency_ms"],
            conditions["loss_pct"],
            conditions["jitter_ms"],
            conditions["bandwidth_mbps"],
            profile.burstiness,
        )
        quality = qoe_arrays(self._config.qoe, effective)
        outcome = self._behavior.simulate_session(
            rng, quality, effective, platform, meeting.size, conditioning
        )
        a = outcome.attended_intervals

        network = {
            metric: {
                "mean": float(values[:a].mean()),
                "median": float(np.median(values[:a])),
                "p95": float(np.percentile(values[:a], 95)),
            }
            for metric, values in conditions.items()
        }
        experienced_mos = float(np.clip(quality.overall_mos[:a].mean(), 1.0, 5.0))
        rating = self._feedback.maybe_rating(rng, experienced_mos, outcome.dropped_early)
        if user is not None:
            user.record_session(experienced_mos)
        return {
            "user_id": (
                user.user_id if user is not None
                else f"{meeting.call_id}-u{index:03d}"
            ),
            "platform": platform.key,
            "country": meeting.countries[index],
            "duration_s": a * SAMPLE_INTERVAL_S,
            "mic_on_frac": outcome.mic_on_frac,
            "cam_on_frac": outcome.cam_on_frac,
            "dropped_early": outcome.dropped_early,
            "network": network,
            "rating": rating,
            "conditioning": conditioning,
        }

    def _build_call(
        self,
        rng: np.random.Generator,
        meeting: Meeting,
        forced_profile: Optional[LinkProfile] = None,
        forced_platform: Optional[Platform] = None,
        focal_only: bool = False,
        users: Optional[List["User"]] = None,
    ) -> CallRecord:
        raw = [
            self._simulate_participant(
                rng, meeting, i,
                forced_profile=forced_profile if (not focal_only or i == 0) else None,
                forced_platform=forced_platform if (not focal_only or i == 0) else None,
                user=users[i] if users is not None else None,
            )
            for i in range(meeting.size)
        ]
        durations = np.array([r["duration_s"] for r in raw])
        median_duration = float(np.median(durations))
        participants: List[ParticipantRecord] = []
        for r in raw:
            presence = 100.0 if median_duration <= 0 else min(
                100.0, 100.0 * r["duration_s"] / median_duration
            )
            participants.append(
                ParticipantRecord(
                    call_id=meeting.call_id,
                    user_id=r["user_id"],
                    platform=r["platform"],
                    country=r["country"],
                    session_duration_s=r["duration_s"],
                    presence_pct=presence,
                    cam_on_pct=100.0 * r["cam_on_frac"],
                    mic_on_pct=100.0 * r["mic_on_frac"],
                    dropped_early=r["dropped_early"],
                    network=r["network"],
                    rating=r["rating"],
                    conditioning=r["conditioning"],
                )
            )
        return CallRecord(
            call_id=meeting.call_id,
            start=meeting.start,
            scheduled_duration_s=meeting.scheduled_duration_s,
            is_enterprise=meeting.is_enterprise,
            participants=participants,
        )

    def _call_rng(self, call_id: str) -> np.random.Generator:
        """The per-call RNG substream (the parallelism contract).

        Every call is simulated from ``derive(seed, "call", call_id)``,
        so its draws do not depend on how many other calls exist or in
        what order (or on which worker) they are computed.
        """
        return derive(self._config.seed, "call", call_id)

    def _build_call_shard(self, meetings: List[Meeting]) -> List[CallRecord]:
        """Simulate one shard of independent calls (pool worker body)."""
        return [
            self._build_call(self._call_rng(m.call_id), m) for m in meetings
        ]

    def generate(
        self,
        cache: Optional["ArtifactCache"] = None,
        execution: Optional["ExecutionPolicy"] = None,
        checkpoint_dir: Optional[str] = None,
        chaos: Optional["ShardFaultInjector"] = None,
    ) -> CallDataset:
        """Simulate the full dataset (deterministic in the config).

        Meetings are scheduled from one stream, then every call is
        simulated independently on its own substream — sharded across
        ``config.workers`` processes when asked, with byte-identical
        output either way.

        With ``persistent_users``, meetings are processed sequentially in
        time order (conditioning evolution is causal, so this mode never
        parallelises) and the resulting population is kept on
        :attr:`population` for post-hoc inspection.

        With ``cache``, the dataset is loaded from (or persisted to) the
        content-addressed artifact cache instead of resimulating.

        ``execution`` tunes the fault-tolerance layer (shard retries,
        watchdog timeout, in-process fallback); ``checkpoint_dir``
        enables checkpointed resume, keyed by this config's fingerprint;
        ``chaos`` injects deterministic worker faults (tests only).
        After a run, :attr:`last_execution` holds the
        :class:`~repro.perf.parallel.ExecutionReport` and
        :attr:`last_checkpoint` the store (both None on a cache hit).
        """
        self.last_execution: Optional["ExecutionReport"] = None
        self.last_checkpoint: Optional["CheckpointStore"] = None
        build = partial(
            self._generate,
            execution=execution, checkpoint_dir=checkpoint_dir, chaos=chaos,
        )
        if cache is not None:
            return cache.load_or_build(
                "calls",
                self._config,
                build=build,
                load=CallDataset.from_jsonl,
                dump=lambda dataset, path: dataset.to_jsonl(path),
            )
        return build()

    def _generate(
        self,
        execution: Optional["ExecutionPolicy"] = None,
        checkpoint_dir: Optional[str] = None,
        chaos: Optional["ShardFaultInjector"] = None,
    ) -> CallDataset:
        schedule_rng = derive(self._config.seed, "telemetry", "calls")
        meetings = self._scheduler.sample_many(schedule_rng, self._config.n_calls)
        if self._config.persistent_users:
            from repro.telemetry.users import UserPopulation

            self.population = UserPopulation(
                size=self._config.population_size,
                seed=self._config.seed,
                profiles=self._profiles,
            )
            dataset = CallDataset()
            for meeting in sorted(meetings, key=lambda m: m.start):
                rng = self._call_rng(meeting.call_id)
                users = self.population.sample(rng, meeting.size)
                dataset.append(self._build_call(rng, meeting, users=users))
            return dataset
        from repro.perf.parallel import ParallelMap

        store: Optional["CheckpointStore"] = None
        if checkpoint_dir is not None:
            from repro.perf.cache import config_fingerprint
            from repro.perf.checkpoint import CheckpointStore
            from repro.telemetry.store import call_from_record, call_to_record

            store = CheckpointStore(
                checkpoint_dir,
                run_key=config_fingerprint("calls", self._config),
                encode=call_to_record,
                decode=call_from_record,
            )
        pm = ParallelMap(self._config.workers, policy=execution, chaos=chaos)
        calls = pm.map_shards(self._build_call_shard, meetings, checkpoint=store)
        self.last_execution = pm.last_report
        self.last_checkpoint = store
        return CallDataset(calls)

    def generate_columns(
        self, cache: Optional["ArtifactCache"] = None
    ):
        """Generate the dataset as columns via the vectorized engine.

        Simulates whole calls at once (see
        :mod:`repro.telemetry.vectorized`) and returns
        :class:`~repro.perf.columnar.ParticipantColumns` directly — the
        10×+ path for analyses that never need record objects.  Output
        is statistically equivalent to :meth:`generate` (same
        population model, same per-call substreams, different
        documented draw order) and byte-identical across worker counts
        and cache round-trips.  ``persistent_users`` requires the
        sequential record path and raises ``ConfigError`` here.
        """
        from repro.telemetry.vectorized import VectorizedCallEngine

        engine = VectorizedCallEngine(
            self._config,
            scheduler=self._scheduler,
            profiles=self._profiles,
        )
        return engine.generate_columns(cache=cache)

    def generate_sweep(
        self,
        base_profile: LinkProfile,
        sweep_metric: str,
        sweep_values: List[float],
        calls_per_value: int,
        platform_key: Optional[str] = None,
        focal_only: bool = True,
    ) -> CallDataset:
        """Generate a controlled sweep: one metric varies, others pinned.

        This mirrors the paper's conditioning windows directly and is used
        by figure benchmarks that need dense support along one axis.
        ``sweep_metric`` is one of ``latency``, ``loss``, ``jitter``,
        ``bandwidth``.

        With ``focal_only`` (the default), the forced profile applies only
        to participant 0 of each call — the *focal* user — while everyone
        else gets an ordinary draw.  This matters for Presence: the metric
        is relative to the call's median participant duration, so if every
        participant suffered the degraded profile the baseline itself
        would shrink.  Focal sessions carry user ids ending in ``-u000``
        (see :func:`focal_participants`).
        """
        field_names = {
            "latency": "base_latency_ms",
            "loss": "loss_rate",
            "jitter": "jitter_ms",
            "bandwidth": "bandwidth_mbps",
        }
        if sweep_metric not in field_names:
            raise ConfigError(f"unknown sweep metric {sweep_metric!r}")
        if calls_per_value < 1:
            raise ConfigError("calls_per_value must be >= 1")
        platform = PLATFORMS[platform_key] if platform_key else None

        work: List[Tuple[Meeting, float]] = []
        for value in sweep_values:
            schedule_rng = derive(
                self._config.seed, "telemetry", "sweep", sweep_metric,
                f"{value:g}",
            )
            meetings = self._scheduler.sample_many(
                schedule_rng, calls_per_value,
                id_prefix=f"sweep-{sweep_metric}-{value:g}",
            )
            work.extend((meeting, value) for meeting in meetings)

        from repro.perf.parallel import ParallelMap

        shard_fn = partial(
            self._build_sweep_shard,
            field_names[sweep_metric], base_profile, platform, focal_only,
        )
        calls = ParallelMap(self._config.workers).map_shards(shard_fn, work)
        return CallDataset(calls)

    def _build_sweep_shard(
        self,
        field_name: str,
        base_profile: LinkProfile,
        platform: Optional[Platform],
        focal_only: bool,
        items: List[Tuple[Meeting, float]],
    ) -> List[CallRecord]:
        """Simulate one shard of sweep calls (pool worker body)."""
        calls = []
        for meeting, value in items:
            profile = replace(base_profile, **{field_name: value})
            calls.append(
                self._build_call(
                    self._call_rng(meeting.call_id), meeting,
                    forced_profile=profile, forced_platform=platform,
                    focal_only=focal_only,
                )
            )
        return calls


def focal_participants(dataset: CallDataset) -> List[ParticipantRecord]:
    """The participant-0 sessions of a ``generate_sweep`` dataset."""
    return [p for p in dataset.participants() if p.user_id.endswith("-u000")]


_SWEEP_ID_RE = re.compile(
    # sweep-<metric>-<value>-<index>; the value itself may contain '-'
    # (scientific notation like 1e-05) so it is matched greedily up to
    # the trailing call index.
    r"^sweep-[a-z]+-(?P<value>.+)-(?P<index>\d{8})$"
)


def sweep_value_of(call: CallRecord) -> float:
    """Recover the swept metric value encoded in a sweep call id.

    Handles every float format ``{value:g}`` can emit, including
    scientific notation with a negative exponent (``1e-05``), whose
    embedded ``-`` used to truncate the parse.
    """
    match = _SWEEP_ID_RE.match(call.call_id)
    if match is not None:
        try:
            return float(match.group("value"))
        except ValueError:
            pass
    raise ConfigError(
        f"call {call.call_id!r} does not look like a sweep call"
    )

"""Block-vectorized call generation — sessions born columnar.

The record path (:class:`~repro.telemetry.generator.CallDatasetGenerator`)
simulates one participant at a time: ~15 small RNG calls and a Python
loop body per session, then a record object, then (for analysis) a
record→column conversion.  At ROADMAP target scale the loop body *is*
the cost.  This module simulates **whole calls at once** and emits
:class:`~repro.perf.columnar.ParticipantColumns` directly — no record
objects, no conversion pass.

Two-stage design
----------------

**Stage 1 — per-call draws.**  Every call keeps its own substream
(``derive(seed, "call", call_id)``), exactly like the record path, so
shard plans, worker counts and resumes can never change the output.
All random draws for a call happen here, in a fixed documented order,
with every array shape a pure function of ``(meeting.size, width)`` —
never of drawn values — which makes the stream consumption
deterministic:

(a) platform uniforms · (b) mobile-tier gate · (c) mobile-tier pick ·
(d) tier uniforms · (e) anchor jiggle normals ``(size, 4)`` ·
(f) burstiness normal · (g) decorrelation gates ``(size, 4)`` ·
(h) decorrelation redraws ``(size, 4)`` · (i) conditioning betas ·
(j) late-join gate · (k) late-join amount ·
(l–r) the condition block (:func:`~repro.netsim.vectorized.condition_blocks`
at the *planned* width) · (s) leave-hazard uniforms · (t) planned-early
gate · (u) planned-early fraction · (v) mic uniforms · (w) cam
uniforms · (x) feedback prompt gate · (y) feedback answer gate ·
(z) feedback bias normals · (aa) feedback noise normals.

**Stage 2 — width-bucketed compute.**  All remaining work is
deterministic arithmetic, so calls are grouped by planned width
(meeting durations are drawn from four choices, so there are at most
four widths) and every model — mitigation, QoE, the behaviour state
machine, feedback, the per-session network aggregates — runs as a
handful of ``(rows, width)`` array passes.  Per-row reductions along
axis 1 do not depend on which rows share a bucket, so the grouping is
a pure performance choice, invisible in the output.

Equivalence contract
--------------------

The vectorized path consumes each call's substream in its own
documented order (above), not the record path's per-participant order,
so outputs are **statistically equivalent** to the record path — same
processes, same parameters, same per-unit substreams — but not
byte-identical to it.  Within the vectorized path, output is
byte-identical across worker counts, shard plans and cache round-trips
(pinned by tests).  Differences from the record path, all documented:

* condition arrays are drawn at the planned width and masked to the
  attended prefix (the record path draws post-late-join width);
* Gilbert–Elliott loss uses the compound-Poisson block form
  (:func:`~repro.netsim.vectorized.loss_pct_block`): exact stationary
  mean, no cross-interval run straddling;
* categorical draws use inverse-CDF uniforms instead of ``rng.choice``.

``persistent_users`` is inherently sequential (conditioning evolves
call to call) and is rejected here — the record path remains the
reference implementation and the only engine for that mode, for
sweeps, and for any consumer that needs record objects.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.netsim.link import NETWORK_TIERS
from repro.netsim.trace import SAMPLE_INTERVAL_S
from repro.netsim.vectorized import (
    ConditionDraws,
    LinkProfileArrays,
    MitigationParamArrays,
    condition_blocks_from_draws,
    condition_draws,
    mitigate_arrays,
    qoe_arrays,
)
from repro.perf.columnar import ParticipantColumns
from repro.rng import derive
from repro.telemetry.feedback import FeedbackModel
from repro.telemetry.generator import GeneratorConfig
from repro.telemetry.meetings import Meeting, MeetingScheduler
from repro.telemetry.network_profiles import DECORRELATE_RANGES, ProfileSampler
from repro.telemetry.platforms import PLATFORMS
from repro.telemetry.schema import AGGREGATES, NETWORK_METRICS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.cache import ArtifactCache

#: Per-metric log-normal jiggle scales (latency, loss, jitter, bandwidth)
#: mirroring :func:`repro.netsim.link.sample_link_profile`.
_JIG_SCALES = np.array([0.35, 0.6, 0.35, 0.25])

#: Mitigation-stack attributes carried per platform into stage 2.
_STACK_FIELDS = (
    "fec_budget_pct", "fec_efficiency", "burst_penalty", "jitter_buffer_ms",
    "audio_concealment", "video_concealment", "video_target_mbps",
    "audio_target_mbps",
)


@dataclass
class _CallDraws:
    """Stage-1 output for one call: all randomness, no model evaluation."""

    meeting: Meeting
    row_start: int
    width: int
    n_attend_max: np.ndarray
    platform_idx: np.ndarray
    burstiness: np.ndarray
    conditioning: np.ndarray
    conditions: ConditionDraws
    hazard_u: np.ndarray
    early_gate_u: np.ndarray
    early_frac: np.ndarray
    mic_u: np.ndarray
    cam_u: np.ndarray
    fb_prompt_u: np.ndarray
    fb_answer_u: np.ndarray
    fb_bias: np.ndarray
    fb_noise: np.ndarray


class VectorizedCallEngine:
    """Batch engine producing :class:`ParticipantColumns` from a config.

    Mirrors :class:`CallDatasetGenerator`'s population model — same
    meetings, same platform/tier mixes, same behaviour and feedback
    parameters, same per-call substreams — with the block draw order
    documented in the module docstring.
    """

    def __init__(
        self,
        config: GeneratorConfig = GeneratorConfig(),
        scheduler: Optional[MeetingScheduler] = None,
        profiles: Optional[ProfileSampler] = None,
    ) -> None:
        if config.persistent_users:
            raise ConfigError(
                "persistent_users evolves conditioning call to call and "
                "cannot be block-simulated; use the record path"
            )
        self._config = config
        self._scheduler = scheduler or MeetingScheduler()
        sampler = profiles or ProfileSampler(decorrelate=config.decorrelate)
        self._decorrelate = sampler.decorrelate
        self._mobile_affinity = sampler.mobile_tier_affinity
        self._feedback = FeedbackModel(sample_rate=config.mos_sample_rate)

        keys = list(PLATFORMS)
        self._platform_keys = keys
        shares = np.array([PLATFORMS[k].population_share for k in keys])
        self._platform_cdf = np.cumsum(shares / shares.sum())
        self._platform_mobile = np.array(
            [PLATFORMS[k].is_mobile for k in keys]
        )
        self._base_mic = np.array([PLATFORMS[k].base_mic_rate for k in keys])
        self._base_cam = np.array([PLATFORMS[k].base_cam_rate for k in keys])
        self._drop_sens = np.array(
            [PLATFORMS[k].drop_sensitivity for k in keys]
        )
        self._eng_sens = np.array(
            [PLATFORMS[k].engagement_sensitivity for k in keys]
        )
        from repro.netsim.mitigation import MitigationStack

        if config.mitigation_enabled:
            stacks = [PLATFORMS[k].mitigation_stack() for k in keys]
        else:
            stacks = [MitigationStack.disabled() for _ in keys]
        self._stack_params = {
            name: np.array([getattr(s, name) for s in stacks], dtype=float)
            for name in _STACK_FIELDS
        }

        tiers = list(NETWORK_TIERS)
        weights = np.array([NETWORK_TIERS[t][1] for t in tiers])
        self._tier_cdf = np.cumsum(weights / weights.sum())
        anchors = [NETWORK_TIERS[t][0] for t in tiers]
        # Anchor metrics as one (n_tiers, 4) matrix in DECORRELATE_RANGES
        # order, so the per-call jiggle is a single (size, 4) exp pass.
        self._anchor_mat = np.column_stack(
            [
                [a.base_latency_ms for a in anchors],
                [a.loss_rate for a in anchors],
                [a.jitter_ms for a in anchors],
                [a.bandwidth_mbps for a in anchors],
            ]
        )
        self._tier_burstiness = np.array([a.burstiness for a in anchors])
        self._mobile_tiers = np.array(
            [tiers.index("mobile_lte"), tiers.index("weak_mobile")]
        )
        self._deco_log_low = np.array(
            [np.log(low) for low, _ in DECORRELATE_RANGES]
        )
        self._deco_log_span = np.array(
            [np.log(high) - np.log(low) for low, high in DECORRELATE_RANGES]
        )

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    # -- entry point -----------------------------------------------------

    def generate_columns(
        self, cache: Optional["ArtifactCache"] = None
    ) -> ParticipantColumns:
        """Build (or load) the full dataset as one columns block.

        With ``cache``, the block persists under kind
        ``participant-columns-vec`` — distinct from the record-derived
        ``participant-columns`` kind, because the two paths are
        statistically, not byte, equivalent.
        """
        if cache is not None:
            return cache.load_or_build(
                "participant-columns-vec",
                self._config,
                build=self._build,
                load=ParticipantColumns.from_jsonl,
                dump=lambda cols, path: cols.to_jsonl(path),
            )
        return self._build()

    def generate_with_ground_truth(
        self,
    ) -> Tuple[ParticipantColumns, np.ndarray]:
        """The columns block plus each session's *experienced* QoE.

        The ground truth is the attended-interval mean of the QoE
        model's per-interval overall MOS, minus the drop penalty when
        the session was cut short, clipped to [1, 5] — i.e. the
        noiseless centre of the rating distribution.  Being driven out
        early is part of the experience, so it belongs in the truth;
        per-user leniency, response noise and rounding are measurement
        distortion, so they do not.  The simulator already computes
        every term on the way to ``rating``, so capturing truth adds no
        RNG draws and the block stays byte-identical to
        :meth:`generate_columns`.  Serial only: truth is an evaluation
        aid, not a cached artifact.
        """
        schedule_rng = derive(self._config.seed, "telemetry", "calls")
        meetings = self._scheduler.sample_many(
            schedule_rng, self._config.n_calls
        )
        return self._simulate_block(meetings, with_truth=True)

    def _build(self) -> ParticipantColumns:
        from repro.perf.parallel import ParallelMap

        schedule_rng = derive(self._config.seed, "telemetry", "calls")
        meetings = self._scheduler.sample_many(
            schedule_rng, self._config.n_calls
        )
        if self._config.workers <= 1:
            # Serial: one block, no shard/merge overhead.  Identical
            # output — per-call substreams make sharding invisible.
            return self._simulate_block(meetings)
        pm = ParallelMap(self._config.workers)
        chunks = pm.map_shards(self._columns_shard, meetings)
        return ParticipantColumns.concat(chunks)

    def _columns_shard(
        self, meetings: List[Meeting]
    ) -> List[ParticipantColumns]:
        """Pool worker body: one shard of calls → one columns chunk.

        Returned as a one-element list so :meth:`ParallelMap.map_shards`
        merges chunks in shard order — concatenation then reproduces
        dataset row order exactly.
        """
        return [self._simulate_block(meetings)]

    # -- stage 1: per-call draws ----------------------------------------

    def _draw_call(self, meeting: Meeting, row_start: int) -> _CallDraws:
        rng = derive(self._config.seed, "call", meeting.call_id)
        size = meeting.size
        width = max(
            2, int(round(meeting.scheduled_duration_s / SAMPLE_INTERVAL_S))
        )
        # (a)-(d): platform, then network tier (inverse-CDF picks).
        platform_u = rng.random(size)
        mobile_gate_u = rng.random(size)
        mobile_pick_u = rng.random(size)
        tier_u = rng.random(size)
        # (e)-(f): log-normal jiggle around the tier anchors.
        jig_z = rng.standard_normal((size, 4))
        burst_z = rng.standard_normal(size)
        # (g)-(h): per-metric decorrelation gates and redraws.
        deco_gate_u = rng.random((size, 4))
        redraw_u = rng.random((size, 4))
        # (i)-(k): conditioning and late join.
        conditioning = rng.beta(4.0, 2.0, size)  # support is already [0, 1]
        late_gate_u = rng.random(size)
        late_u = rng.random(size)

        n_platforms = len(self._platform_keys)
        platform_idx = np.minimum(
            self._platform_cdf.searchsorted(platform_u, side="right"),
            n_platforms - 1,
        )
        mobile = self._platform_mobile[platform_idx] & (
            mobile_gate_u < self._mobile_affinity
        )
        tier_idx = np.minimum(
            self._tier_cdf.searchsorted(tier_u, side="right"),
            len(self._tier_cdf) - 1,
        )
        tier_idx = np.where(
            mobile,
            self._mobile_tiers[(mobile_pick_u >= 0.5).astype(np.int64)],
            tier_idx,
        )
        # All four metrics jiggle, cap and decorrelate in (size, 4) passes.
        vals = self._anchor_mat[tier_idx] * np.exp(_JIG_SCALES * jig_z)
        vals[:, 1] = np.minimum(0.20, vals[:, 1])
        vals[:, 3] = np.maximum(0.2, vals[:, 3])
        burstiness = np.minimum(
            1.0,
            np.maximum(0.0, self._tier_burstiness[tier_idx] + 0.1 * burst_z),
        )
        redraws = np.exp(self._deco_log_low + redraw_u * self._deco_log_span)
        vals = np.where(deco_gate_u < self._decorrelate, redraws, vals)
        latency, loss, jitter, bandwidth = vals.T
        severity = self._config.outage_days.get(meeting.start.date(), 0.0)
        if severity > 0:
            latency = latency * (1 + severity)
            loss = np.minimum(0.2, loss + 0.05 * severity)
            jitter = jitter * (1 + severity)
            burstiness = np.minimum(1.0, burstiness + 0.3 * severity)
        profiles = LinkProfileArrays(
            base_latency_ms=latency,
            loss_rate=loss,
            jitter_ms=jitter,
            bandwidth_mbps=bandwidth,
            burstiness=burstiness,
        )
        # Late join: same distribution as the record path's
        # ``integers(1, max(2, width // 6))`` on a quarter of sessions.
        high = max(2, width // 6)
        late = 1 + np.floor(late_u * (high - 1)).astype(np.int64)
        n_attend_max = np.where(
            late_gate_u < 0.25, np.maximum(2, width - late), width
        )
        # (l)-(r): the condition block's draws at the planned width; the
        # arithmetic runs batched per width bucket in stage 2.
        conditions = condition_draws(rng, profiles, width)
        # (s)-(u): leave process.
        hazard_u = rng.random((size, width))
        early_gate_u = rng.random(size)
        early_frac = rng.uniform(0.3, 0.95, size)
        # (v)-(w): channel states.
        mic_u = rng.random((size, width))
        cam_u = rng.random((size, width))
        # (x)-(aa): feedback.
        fb_prompt_u = rng.random(size)
        fb_answer_u = rng.random(size)
        fb_bias = rng.normal(0.0, self._feedback.bias_sd, size)
        fb_noise = rng.normal(0.0, self._feedback.noise_sd, size)
        return _CallDraws(
            meeting=meeting,
            row_start=row_start,
            width=width,
            n_attend_max=n_attend_max,
            platform_idx=platform_idx,
            burstiness=burstiness,
            conditioning=conditioning,
            conditions=conditions,
            hazard_u=hazard_u,
            early_gate_u=early_gate_u,
            early_frac=early_frac,
            mic_u=mic_u,
            cam_u=cam_u,
            fb_prompt_u=fb_prompt_u,
            fb_answer_u=fb_answer_u,
            fb_bias=fb_bias,
            fb_noise=fb_noise,
        )

    # -- stage 2: width-bucketed model evaluation ------------------------

    def _simulate_block(
        self, meetings: List[Meeting], with_truth: bool = False
    ) -> "ParticipantColumns | Tuple[ParticipantColumns, np.ndarray]":
        draws: List[_CallDraws] = []
        row_start = 0
        for meeting in meetings:
            draws.append(self._draw_call(meeting, row_start))
            row_start += meeting.size
        total = row_start

        truth = np.empty(total) if with_truth else None
        duration_s = np.empty(total)
        mic_frac = np.empty(total)
        cam_frac = np.empty(total)
        dropped = np.zeros(total, dtype=bool)
        rating = np.empty(total)
        conditioning = np.empty(total)
        network = {
            m: {s: np.empty(total) for s in AGGREGATES}
            for m in NETWORK_METRICS
        }

        by_width: Dict[int, List[_CallDraws]] = {}
        for d in draws:
            by_width.setdefault(d.width, []).append(d)
        for width, group in by_width.items():
            rows = np.concatenate(
                [
                    np.arange(
                        d.row_start, d.row_start + d.meeting.size,
                        dtype=np.int64,
                    )
                    for d in group
                ]
            )
            out = self._evaluate_bucket(width, group)
            duration_s[rows] = out["duration_s"]
            mic_frac[rows] = out["mic_frac"]
            cam_frac[rows] = out["cam_frac"]
            dropped[rows] = out["dropped"]
            rating[rows] = out["rating"]
            conditioning[rows] = out["conditioning"]
            if truth is not None:
                truth[rows] = np.clip(
                    out["mos"]
                    - self._feedback.drop_penalty * out["dropped"],
                    1.0, 5.0,
                )
            for m in NETWORK_METRICS:
                for s in AGGREGATES:
                    network[m][s][rows] = out["network"][m][s]

        # Presence is relative to the call's median attended duration,
        # so it only exists once every bucket has reported back.
        presence = np.empty(total)
        call_id: List[str] = []
        user_id: List[str] = []
        platform: List[str] = []
        country: List[str] = []
        call_start: List[Optional[dt.datetime]] = []
        for d in draws:
            meeting = d.meeting
            lo, hi = d.row_start, d.row_start + meeting.size
            median = float(np.median(duration_s[lo:hi]))
            if median <= 0:
                presence[lo:hi] = 100.0
            else:
                presence[lo:hi] = np.minimum(
                    100.0, 100.0 * duration_s[lo:hi] / median
                )
            call_id.extend([meeting.call_id] * meeting.size)
            user_id.extend(
                f"{meeting.call_id}-u{i:03d}" for i in range(meeting.size)
            )
            platform.extend(
                self._platform_keys[i] for i in d.platform_idx.tolist()
            )
            country.extend(meeting.countries)
            call_start.extend([meeting.start] * meeting.size)

        cols = ParticipantColumns(
            call_id=call_id,
            user_id=user_id,
            platform=platform,
            country=country,
            call_start=call_start,
            session_duration_s=duration_s,
            presence_pct=presence,
            cam_on_pct=100.0 * cam_frac,
            mic_on_pct=100.0 * mic_frac,
            conditioning=conditioning,
            dropped_early=dropped,
            rating=rating,
            network=network,
        )
        if truth is not None:
            return cols, truth
        return cols

    def _evaluate_bucket(
        self, width: int, group: List[_CallDraws]
    ) -> Dict[str, object]:
        """All model arithmetic for one width bucket — no RNG in here."""

        def rows1(attr: str) -> np.ndarray:
            return np.concatenate([getattr(d, attr) for d in group])

        def rows2(attr: str) -> np.ndarray:
            return np.vstack([getattr(d, attr) for d in group])

        platform_idx = rows1("platform_idx")
        burstiness = rows1("burstiness")
        conditioning = rows1("conditioning")
        n_attend_max = rows1("n_attend_max")
        conditions = condition_blocks_from_draws(
            [d.conditions for d in group]
        )
        sizes = np.concatenate(
            [np.full(d.meeting.size, d.meeting.size, dtype=float)
             for d in group]
        )

        params = MitigationParamArrays(
            **{
                name: self._stack_params[name][platform_idx][:, None]
                for name in _STACK_FIELDS
            }
        )
        effective = mitigate_arrays(
            params,
            conditions["latency_ms"],
            conditions["loss_pct"],
            conditions["jitter_ms"],
            conditions["bandwidth_mbps"],
            burstiness[:, None],
        )
        quality = qoe_arrays(self._config.qoe, effective)

        p = self._config.behavior
        cols = np.arange(width)
        reaction = (
            1 - p.conditioning_damping * (1 - conditioning)
        ) * self._eng_sens[platform_idx]
        audio_gap = effective.residual_audio_loss_pct
        qoe_deficit = np.clip(
            (3.9 - quality.overall_mos) / 2.9, 0.0, 1.0
        )
        lo_inter = 1 - quality.interactivity
        frustration = lo_inter * lo_inter * lo_inter
        hazard = p.base_leave_hazard + (
            self._drop_sens[platform_idx] * reaction
        )[:, None] * (
            p.audio_gap_leave_gain * audio_gap * np.sqrt(audio_gap)
            + p.inter_leave_gain * frustration
            + p.qoe_leave_gain * qoe_deficit * qoe_deficit
        )
        hazard = np.clip(hazard, 0.0, 0.5)
        triggered = (rows2("hazard_u") < hazard) & (
            cols[None, :] < n_attend_max[:, None]
        )
        leave_at = np.where(
            triggered.any(axis=1), triggered.argmax(axis=1) + 1, n_attend_max
        )
        planned = np.where(
            rows1("early_gate_u") < p.early_leave_share,
            np.maximum(
                1,
                np.ceil(n_attend_max * rows1("early_frac")).astype(np.int64),
            ),
            n_attend_max,
        )
        attended = np.maximum(1, np.minimum(leave_at, planned))
        dropped = leave_at < planned
        attended_f = attended.astype(float)
        attended_mask = cols[None, :] < attended[:, None]

        inter = quality.interactivity
        video_q = (quality.video_mos - 1.0) / 4.0
        mic_response = p.mic_floor + (1 - p.mic_floor) * inter
        mic_response = 1 - reaction[:, None] * (1 - mic_response)
        size_penalty = p.meeting_size_mute_gain * np.maximum(
            0.0, np.log2(sizes / 3.0)
        )
        p_mic = self._base_mic[platform_idx][:, None] * np.clip(
            mic_response - size_penalty[:, None], 0.0, 1.0
        )
        mic_frac = (
            ((rows2("mic_u") < p_mic) & attended_mask).sum(axis=1)
            / attended_f
        )
        cam_response = (
            p.cam_floor
            + p.cam_video_weight * video_q
            + p.cam_inter_weight * inter
        ) / (p.cam_floor + p.cam_video_weight + p.cam_inter_weight)
        cam_response = 1 - reaction[:, None] * np.clip(
            1 - cam_response, 0.0, 1.0
        )
        p_cam = self._base_cam[platform_idx][:, None] * np.clip(
            cam_response, 0.0, 1.0
        )
        cam_frac = (
            ((rows2("cam_u") < p_cam) & attended_mask).sum(axis=1)
            / attended_f
        )

        mos = np.clip(
            np.where(attended_mask, quality.overall_mos, 0.0).sum(axis=1)
            / attended_f,
            1.0, 5.0,
        )
        fb = self._feedback
        raw = (
            mos + rows1("fb_bias") + rows1("fb_noise")
            - fb.drop_penalty * dropped
        )
        rating = np.where(
            (rows1("fb_prompt_u") < fb.sample_rate)
            & (rows1("fb_answer_u") < fb.response_rate),
            np.clip(np.round(raw), 1.0, 5.0),
            np.nan,
        )

        network = {
            m: dict(
                zip(
                    AGGREGATES,
                    _masked_stats(conditions[m], attended, attended_mask),
                )
            )
            for m in NETWORK_METRICS
        }
        return {
            "duration_s": attended_f * SAMPLE_INTERVAL_S,
            "mic_frac": mic_frac,
            "cam_frac": cam_frac,
            "dropped": dropped,
            "rating": rating,
            "conditioning": conditioning,
            "network": network,
            "mos": mos,
        }


def _masked_stats(
    values: np.ndarray, attended: np.ndarray, mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row (mean, median, p95) over each row's attended prefix.

    Matches ``np.median`` / ``np.percentile(..., 95)`` (linear
    interpolation) on the prefix: invalid entries sort to the top as
    ``+inf`` and order statistics index only the first ``attended``
    slots.
    """
    attended_f = attended.astype(float)
    mean = np.where(mask, values, 0.0).sum(axis=1) / attended_f
    ordered = np.where(mask, values, np.inf)
    ordered.sort(axis=1)

    def pick(idx: np.ndarray) -> np.ndarray:
        return np.take_along_axis(ordered, idx[:, None], axis=1)[:, 0]

    median = 0.5 * (pick((attended - 1) // 2) + pick(attended // 2))
    pos = 0.95 * (attended_f - 1.0)
    low = np.floor(pos).astype(np.int64)
    frac = pos - low
    v_low = pick(low)
    v_high = pick(np.minimum(low + 1, attended - 1))
    p95 = v_low + (v_high - v_low) * frac
    return mean, median, p95


def generate_participant_columns(
    config: GeneratorConfig = GeneratorConfig(),
    cache: Optional["ArtifactCache"] = None,
    scheduler: Optional[MeetingScheduler] = None,
    profiles: Optional[ProfileSampler] = None,
) -> ParticipantColumns:
    """Convenience wrapper: config → columns via the block engine."""
    engine = VectorizedCallEngine(
        config, scheduler=scheduler, profiles=profiles
    )
    return engine.generate_columns(cache=cache)

"""Synthetic MS Teams-like call telemetry (the §3 substrate).

The paper analyses ~150–200 million proprietary enterprise call records.
This package generates a statistically comparable (if much smaller)
dataset *mechanistically*: simulated meetings are populated with agents
whose in-call actions — muting, turning the camera off, leaving — are
decisions driven by the quality they experience on their simulated network
path.  The engagement curves of Figs. 1–4 are therefore emergent, and the
§3 analysis pipeline (:mod:`repro.engagement`) runs on these records the
same way it would on the real thing.

Entry point: :class:`CallDatasetGenerator` →
:class:`~repro.telemetry.store.CallDataset`.
"""

from repro.telemetry.behavior import BehaviorModel, BehaviorParams, SessionOutcome
from repro.telemetry.feedback import FeedbackModel
from repro.telemetry.generator import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.meetings import Meeting, MeetingScheduler
from repro.telemetry.network_profiles import ProfileSampler
from repro.telemetry.platforms import PLATFORMS, Platform
from repro.telemetry.schema import CallRecord, ParticipantRecord
from repro.telemetry.store import CallDataset
from repro.telemetry.users import User, UserPopulation

__all__ = [
    "BehaviorModel",
    "BehaviorParams",
    "CallDataset",
    "CallDatasetGenerator",
    "CallRecord",
    "FeedbackModel",
    "GeneratorConfig",
    "Meeting",
    "MeetingScheduler",
    "PLATFORMS",
    "ParticipantRecord",
    "Platform",
    "ProfileSampler",
    "SessionOutcome",
    "User",
    "UserPopulation",
]

"""Platform catalog and per-platform behaviour modifiers.

Fig. 3 of the paper shows that the *same* network conditions produce
different engagement responses on different platforms: mobile users drop
off sooner, and sensitivity varies with operating system.  The paper
attributes this to differing user expectations (mobile joiners are less
committed) and to differing application-level optimisation headroom
(CPU-constrained devices run lighter mitigation).

Both mechanisms are modelled here: each :class:`Platform` carries
engagement baselines, a drop-hazard multiplier, and a mitigation-strength
factor that scales the FEC/concealment stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.netsim.mitigation import MitigationStack


@dataclass(frozen=True)
class Platform:
    """Behavioural and technical profile of a client platform.

    Attributes:
        key: stable identifier used in records.
        is_mobile: phone/tablet vs desktop.
        base_cam_rate: propensity to keep the camera on under perfect
            conditions, in [0, 1].
        base_mic_rate: same for the microphone.
        drop_sensitivity: multiplier on the leave hazard under degraded
            conditions (>1 → leaves sooner, the mobile pattern).
        engagement_sensitivity: multiplier on how strongly QoE degradation
            translates into mute/cam-off decisions.
        mitigation_strength: scales FEC efficiency and concealment; <1
            models CPU-constrained clients running lighter safeguards.
        population_share: sampling weight in the call population.
    """

    key: str
    is_mobile: bool
    base_cam_rate: float
    base_mic_rate: float
    drop_sensitivity: float
    engagement_sensitivity: float
    mitigation_strength: float
    population_share: float

    def __post_init__(self) -> None:
        for name in ("base_cam_rate", "base_mic_rate"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        for name in ("drop_sensitivity", "engagement_sensitivity",
                     "mitigation_strength", "population_share"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.mitigation_strength > 1:
            raise ConfigError("mitigation_strength must be <= 1")

    def mitigation_stack(self, base: MitigationStack = MitigationStack()) -> MitigationStack:
        """The client's safeguard stack, scaled by available headroom."""
        s = self.mitigation_strength
        return MitigationStack(
            fec_budget_pct=base.fec_budget_pct,
            fec_efficiency=base.fec_efficiency * s,
            burst_penalty=base.burst_penalty,
            jitter_buffer_ms=base.jitter_buffer_ms,
            audio_concealment=base.audio_concealment * s,
            video_concealment=base.video_concealment * s,
            video_target_mbps=base.video_target_mbps,
            audio_target_mbps=base.audio_target_mbps,
        )


PLATFORMS: Dict[str, Platform] = {
    "windows_pc": Platform(
        key="windows_pc", is_mobile=False,
        base_cam_rate=0.62, base_mic_rate=0.55,
        drop_sensitivity=1.0, engagement_sensitivity=1.0,
        mitigation_strength=1.0, population_share=0.55,
    ),
    "mac_pc": Platform(
        key="mac_pc", is_mobile=False,
        base_cam_rate=0.66, base_mic_rate=0.56,
        drop_sensitivity=0.95, engagement_sensitivity=0.95,
        mitigation_strength=1.0, population_share=0.20,
    ),
    "ios_mobile": Platform(
        key="ios_mobile", is_mobile=True,
        base_cam_rate=0.45, base_mic_rate=0.48,
        drop_sensitivity=1.7, engagement_sensitivity=1.35,
        mitigation_strength=0.8, population_share=0.15,
    ),
    "android_mobile": Platform(
        key="android_mobile", is_mobile=True,
        base_cam_rate=0.42, base_mic_rate=0.46,
        drop_sensitivity=2.0, engagement_sensitivity=1.5,
        mitigation_strength=0.7, population_share=0.10,
    ),
}


def platform_for(key: str) -> Platform:
    """Look up a platform by key, raising a library error if unknown."""
    try:
        return PLATFORMS[key]
    except KeyError:
        raise ConfigError(f"unknown platform {key!r}") from None

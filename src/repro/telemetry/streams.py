"""Call telemetry → stream records (the live-ingestion boundary).

The batch pipeline exports whole :class:`~repro.telemetry.store.CallDataset`
snapshots; a deployment would instead *stream* each session's
measurements as calls end.  This adapter performs the one conversion the
streaming layer needs — ``datetime`` stamps onto the float event-time
axis (seconds since the dataset's first call) — and emits, per
participant: the four network aggregates as ``network``-role records
plus the 1–5 rating (when sampled) as an ``experience``-role record.

Output is sorted into strict event-time order, so feeding it straight to
:meth:`~repro.resilience.faults.FaultPlan.stream_faults` models exactly
what the paper warns about: the *transport*, not the source, disorders
the data.
"""

from __future__ import annotations

import datetime as dt
from typing import List, Optional

from repro.core.usaas.privacy import scrub_author
from repro.streaming.records import StreamRecord
from repro.telemetry.schema import NETWORK_METRICS
from repro.telemetry.store import CallDataset


def telemetry_stream(
    dataset: CallDataset,
    epoch: Optional[dt.datetime] = None,
) -> List[StreamRecord]:
    """Flatten a call dataset into event-time-ordered stream records.

    Args:
        epoch: the stream's t=0; defaults to the earliest call start so
            event times begin near zero.  Calls before an explicit
            epoch would produce negative event times and are refused by
            the record schema — pass an epoch no later than the data.
    """
    calls = list(dataset)
    if not calls:
        return []
    if epoch is None:
        epoch = min(call.start for call in calls)
    records: List[StreamRecord] = []
    for call in calls:
        t = (call.start - epoch).total_seconds()
        for p in call.participants:
            key = scrub_author(p.user_id)
            for metric in NETWORK_METRICS:
                records.append(StreamRecord(
                    event_time_s=t,
                    source="telemetry",
                    metric=metric,
                    value=float(p.metric(metric)),
                    key=key,
                    role="network",
                ))
            if p.rating is not None:
                records.append(StreamRecord(
                    event_time_s=t,
                    source="telemetry",
                    metric="rating",
                    value=float(p.rating),
                    key=key,
                    role="experience",
                ))
    records.sort(key=lambda r: (r.event_time_s, r.metric, r.key))
    return records

"""Social corpus → stream records (the live-ingestion boundary).

The §4 batch analyses score a finished corpus; a deployment would score
posts as they are published.  This adapter emits, per post, the
sentiment polarity as an ``experience``-role record and — for the posts
that carry one — the user-reported speed test as a ``network``-role
record, both stamped on the float event-time axis (seconds since the
corpus's first post, or an explicit epoch).

Authors are scrubbed at this boundary with the same
:func:`~repro.core.usaas.privacy.scrub_author` scheme the batch
adapters use: raw handles never reach the streaming layer.
"""

from __future__ import annotations

import datetime as dt
from typing import List, Optional

from repro.core.usaas.privacy import scrub_author
from repro.nlp.sentiment import SentimentAnalyzer
from repro.social.corpus import RedditCorpus
from repro.streaming.records import StreamRecord


def social_stream(
    corpus: RedditCorpus,
    epoch: Optional[dt.datetime] = None,
    analyzer: Optional[SentimentAnalyzer] = None,
) -> List[StreamRecord]:
    """Flatten a social corpus into event-time-ordered stream records."""
    posts = list(corpus)
    if not posts:
        return []
    if epoch is None:
        epoch = min(post.created for post in posts)
    analyzer = analyzer or SentimentAnalyzer()
    records: List[StreamRecord] = []
    for post in posts:
        t = (post.created - epoch).total_seconds()
        key = scrub_author(post.author)
        records.append(StreamRecord(
            event_time_s=t,
            source="social",
            metric="sentiment_polarity",
            value=float(analyzer.score(post.full_text).polarity),
            key=key,
            role="experience",
        ))
        if post.speed_test is not None:
            records.append(StreamRecord(
                event_time_s=t,
                source="social",
                metric="reported_downlink_mbps",
                value=float(post.speed_test.download_mbps),
                key=key,
                role="network",
            ))
    records.sort(key=lambda r: (r.event_time_s, r.metric, r.key))
    return records

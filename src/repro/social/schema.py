"""Post and speed-test-share records."""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SchemaError

TOPICS = (
    "experience_report",
    "speed_test_share",
    "outage_report",
    "question",
    "setup_story",
    "event_reaction",
    "roaming",
)

PROVIDERS = ("ookla", "fast", "starlink_app", "other")


@dataclass(frozen=True)
class SpeedTestShare:
    """Ground truth behind one shared speed-test screenshot.

    The OCR pipeline renders this into a synthetic screenshot and then
    extracts the numbers back out; analysis code must only ever consume
    the *extracted* values, as the paper's did.
    """

    provider: str
    download_mbps: float
    upload_mbps: float
    latency_ms: float

    def __post_init__(self) -> None:
        if self.provider not in PROVIDERS:
            raise SchemaError(f"unknown provider {self.provider!r}")
        if self.download_mbps <= 0 or self.upload_mbps <= 0:
            raise SchemaError("speeds must be positive")
        if self.latency_ms <= 0:
            raise SchemaError("latency must be positive")


@dataclass(frozen=True)
class Post:
    """One r/Starlink submission (with optional thread comments).

    Attributes:
        post_id: opaque identifier.
        created: submission timestamp.
        author: author handle.
        title / text: content (sentiment analysis runs over both).
        upvotes / n_comments: popularity counters (§4.1 mines "popular
            discussions" by these numbers).
        topic: generator-side category tag — analysis code must not use
            it (it stands in for information a real pipeline would not
            have), except as ground truth in tests.
        speed_test: attached speed-test share, if any.
        comment_texts: sampled comment bodies for busy threads; always
            ``len(comment_texts) <= n_comments``.
    """

    post_id: str
    created: dt.datetime
    author: str
    title: str
    text: str
    upvotes: int
    n_comments: int
    topic: str
    speed_test: Optional[SpeedTestShare] = None
    comment_texts: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.topic not in TOPICS:
            raise SchemaError(f"unknown topic {self.topic!r}")
        if self.upvotes < 0 or self.n_comments < 0:
            raise SchemaError("popularity counters must be non-negative")
        if len(self.comment_texts) > self.n_comments:
            raise SchemaError("more comment texts than comments")
        if not self.title and not self.text:
            raise SchemaError("post needs a title or text")

    @property
    def date(self) -> dt.date:
        return self.created.date()

    @property
    def popularity(self) -> float:
        """The trend miner's weight: upvotes plus comments."""
        return float(self.upvotes + self.n_comments)

    @property
    def full_text(self) -> str:
        """Title and body joined — what sentiment scoring consumes."""
        return f"{self.title}. {self.text}" if self.title else self.text

    @property
    def thread_text(self) -> str:
        """Post plus sampled comments — what keyword counting consumes."""
        parts = [self.full_text]
        parts.extend(self.comment_texts)
        return "\n".join(parts)


def post_to_record(post: Post) -> dict:
    """The canonical JSONL record for one post.

    Shared by :meth:`RedditCorpus.to_jsonl` and the checkpoint layer, so
    a resumed shard serialises byte-identically to a regenerated one.
    """
    return {
        "post_id": post.post_id,
        "created": post.created.isoformat(),
        "author": post.author,
        "title": post.title,
        "text": post.text,
        "upvotes": post.upvotes,
        "n_comments": post.n_comments,
        "topic": post.topic,
        "comment_texts": list(post.comment_texts),
        "speed_test": None if post.speed_test is None else {
            "provider": post.speed_test.provider,
            "download_mbps": post.speed_test.download_mbps,
            "upload_mbps": post.speed_test.upload_mbps,
            "latency_ms": post.speed_test.latency_ms,
        },
    }


def post_from_record(record: dict) -> Post:
    """Inverse of :func:`post_to_record`."""
    share = record.get("speed_test")
    return Post(
        post_id=record["post_id"],
        created=dt.datetime.fromisoformat(record["created"]),
        author=record["author"],
        title=record["title"],
        text=record["text"],
        upvotes=record["upvotes"],
        n_comments=record["n_comments"],
        topic=record["topic"],
        comment_texts=tuple(record.get("comment_texts", ())),
        speed_test=None if share is None else SpeedTestShare(
            provider=share["provider"],
            download_mbps=share["download_mbps"],
            upload_mbps=share["upload_mbps"],
            latency_ms=share["latency_ms"],
        ),
    )

"""The corpus generator: two years of r/Starlink, day by day.

For each day the generator:

1. computes the post volume — a base rate that grows with the subscriber
   curve, times the event calendar's multiplier, times transient-outage
   boosts;
2. samples posting authors (verbosity-weighted, §6 bias built in);
3. assigns each post a topic from a day-dependent mix (outage days tilt
   toward outage reports, event windows toward reactions, the roaming
   discovery opens the roaming topic);
4. targets each post's sentiment from the world state (monthly
   conditioned satisfaction, event polarity, personal optimism) and
   renders it through the template engine;
5. draws popularity (upvotes / comments) with heavy tails, boosted for
   strong feelings and big days — which is what makes the §4.1 trend
   miner's popularity weighting meaningful.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.timeline import DailySeries, MonthlySeries, month_of
from repro.errors import ConfigError
from repro.rng import DEFAULT_SEED, derive
from repro.social.authors import Author, AuthorPool
from repro.social.events import Event, EventCalendar
from repro.social.reports import sample_speed_test, share_sentiment
from repro.social.schema import Post, SpeedTestShare
from repro.social.textgen import TextGenerator, outage_comment
from repro.starlink.capacity import CapacityModel
from repro.starlink.coverage import Outage, OutageProcess
from repro.starlink.footprint import DEFAULT_FOOTPRINT, Footprint
from repro.starlink.perception import PerceptionModel
from repro.starlink.subscribers import SubscriberModel

if TYPE_CHECKING:
    from repro.perf.cache import ArtifactCache
    from repro.perf.checkpoint import CheckpointStore
    from repro.perf.columnar import CorpusColumns
    from repro.perf.parallel import ExecutionPolicy, ExecutionReport
    from repro.resilience.faults import ShardFaultInjector

#: A corpus day renders in well under a millisecond, so a shard needs
#: a few hundred of them before pool dispatch + pickling pays for
#: itself; smaller plans collapse to one in-process shard
#: (``last_execution.mode == "auto-serial"``), which is byte-identical
#: to the pool path by the substream contract.
MIN_DAYS_PER_SHARD = 200


@dataclass(frozen=True)
class CorpusConfig:
    """Corpus generation knobs (defaults match the paper's §4.1 stats).

    ``workers`` shards the day loop across processes (1 = serial,
    0 = one per CPU).  Every day draws from its own RNG substream
    (``derive(seed, "day", iso_date)``), so serial and parallel runs
    produce byte-identical corpora; workers never changes the artifact.
    """

    seed: int = DEFAULT_SEED
    span_start: dt.date = dt.date(2021, 1, 1)
    span_end: dt.date = dt.date(2022, 12, 31)
    posts_per_week: float = 372.0
    upvotes_per_post: float = 22.0
    comments_per_post: float = 15.3
    speed_share_count: int = 1750
    author_pool_size: int = 4000
    conditioning_mode: str = "cohort"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigError("workers must be >= 0 (0 = one per CPU)")
        if self.conditioning_mode not in ("cohort", "single"):
            raise ConfigError(
                f"conditioning_mode must be 'cohort' or 'single', "
                f"got {self.conditioning_mode!r}"
            )
        if self.span_end < self.span_start:
            raise ConfigError("span_end precedes span_start")
        if self.posts_per_week <= 0:
            raise ConfigError("posts_per_week must be positive")
        if self.upvotes_per_post <= 0 or self.comments_per_post <= 0:
            raise ConfigError("popularity targets must be positive")
        if self.speed_share_count < 0:
            raise ConfigError("speed_share_count must be >= 0")


class RedditCorpus:
    """The generated corpus with the query surface the analyses need."""

    def __init__(self, posts: List[Post], config: CorpusConfig) -> None:
        self._posts = sorted(posts, key=lambda p: p.created)
        self._config = config

    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    @property
    def config(self) -> CorpusConfig:
        return self._config

    def posts(self) -> List[Post]:
        return list(self._posts)

    def _query_index(
        self,
    ) -> Tuple[Dict[dt.date, List[Post]], List[Post]]:
        """Lazily built (by-day, speed-share) index over the posts.

        Memoized with the same token discipline as the columnar layer's
        per-object memo (``repro.perf.columnar``): the cached index is
        keyed by ``len(self._posts)``, so any hypothetical change in the
        post list invalidates both memos consistently.
        """
        token = len(self._posts)
        memo = self.__dict__.get("_query_index_cache")
        if memo is not None and memo[0] == token:
            return memo[1]
        by_day: Dict[dt.date, List[Post]] = {}
        speed: List[Post] = []
        for post in self._posts:
            by_day.setdefault(post.date, []).append(post)
            if post.speed_test is not None:
                speed.append(post)
        index = (by_day, speed)
        self.__dict__["_query_index_cache"] = (token, index)
        return index

    def posts_on(self, day: dt.date) -> List[Post]:
        return list(self._query_index()[0].get(day, []))

    def speed_shares(self) -> List[Post]:
        return list(self._query_index()[1])

    def weekly_stats(self) -> Dict[str, float]:
        """Average posts / upvotes / comments per week (§4.1 numbers)."""
        n_weeks = ((self._config.span_end - self._config.span_start).days + 1) / 7
        return {
            "posts_per_week": len(self._posts) / n_weeks,
            "upvotes_per_week": sum(p.upvotes for p in self._posts) / n_weeks,
            "comments_per_week": sum(p.n_comments for p in self._posts) / n_weeks,
        }

    def daily_counts(self) -> DailySeries:
        series = DailySeries.zeros(self._config.span_start, self._config.span_end)
        for post in self._posts:
            series.add(post.date)
        return series

    # --- persistence ---------------------------------------------------

    def to_jsonl(self, path) -> None:
        """Write one JSON object per post (plus a header with the config).

        The write is atomic (tmp sibling + ``os.replace``), so a crashed
        export cannot leave a truncated corpus behind.
        """
        import json

        from repro.io.jsonl import atomic_writer

        from repro.social.schema import post_to_record

        with atomic_writer(path) as f:
            f.write(json.dumps({
                "_header": True,
                "seed": self._config.seed,
                "span_start": self._config.span_start.isoformat(),
                "span_end": self._config.span_end.isoformat(),
            }) + "\n")
            for p in self._posts:
                f.write(json.dumps(post_to_record(p)) + "\n")

    @classmethod
    def from_jsonl(cls, path) -> "RedditCorpus":
        import json

        from repro.errors import SchemaError
        from repro.social.schema import post_from_record

        posts: List[Post] = []
        config: Optional[CorpusConfig] = None
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise SchemaError(f"{path}:{line_no}: bad JSON: {exc}") from exc
                if record.get("_header"):
                    config = CorpusConfig(
                        seed=record["seed"],
                        span_start=dt.date.fromisoformat(record["span_start"]),
                        span_end=dt.date.fromisoformat(record["span_end"]),
                    )
                    continue
                try:
                    posts.append(post_from_record(record))
                except (KeyError, ValueError, SchemaError) as exc:
                    raise SchemaError(
                        f"{path}:{line_no}: bad record: {exc}"
                    ) from exc
        if config is None:
            raise SchemaError(f"{path}: missing corpus header line")
        return cls(posts, config)


# Topic mix before day-dependent tilts (outages, events, roaming).
# Hoisted to module level so the day loop copies instead of rebuilding.
_BASE_TOPIC_WEIGHTS: Dict[str, float] = {
    "experience_report": 0.20,
    "speed_test_share": 0.0,  # injected separately, see generate()
    "outage_report": 0.02,
    "question": 0.38,
    "setup_story": 0.14,
    "event_reaction": 0.0,
    "roaming": 0.0,
}
_TOPIC_NAMES: Tuple[str, ...] = tuple(_BASE_TOPIC_WEIGHTS)


class CorpusGenerator:
    """Deterministic corpus generation from a :class:`CorpusConfig`."""

    def __init__(
        self,
        config: CorpusConfig = CorpusConfig(),
        capacity: Optional[CapacityModel] = None,
        perception: Optional[PerceptionModel] = None,
        calendar: Optional[EventCalendar] = None,
        outage_process: Optional[OutageProcess] = None,
        footprint: Optional[Footprint] = None,
    ) -> None:
        self._config = config
        self._capacity = capacity or CapacityModel()
        self._perception = perception or PerceptionModel()
        self._calendar = calendar or EventCalendar()
        self._footprint = footprint or DEFAULT_FOOTPRINT
        self._outages = outage_process or OutageProcess(
            span_start=config.span_start,
            span_end=config.span_end,
            seed=config.seed,
        )
        self._textgen = TextGenerator()
        self._speeds: MonthlySeries = self._capacity.median_downlink_mbps()
        self._subscribers = SubscriberModel.reported().monthly()
        # Adoption-weighted ("wheel of time") satisfaction: the community
        # mood each month is the cohort mix's mood, not one shared track.
        # ``conditioning_mode="single"`` is the DESIGN.md ablation: one
        # shared expectation track for everyone, which loses the 2022 Pos
        # recovery (new adopters are what pull sentiment back up).
        if config.conditioning_mode == "cohort":
            self._satisfaction: MonthlySeries = (
                self._perception.cohort_satisfaction(
                    self._speeds, self._subscribers
                )
            )
        else:
            self._satisfaction = self._perception.satisfaction(self._speeds)
        # Per-day-independent ingredients, hoisted out of the day loop:
        # the author pool, the outage pool (indexed by day instead of
        # scanned per day), the base volume curve and the speed-share
        # rate are all deterministic in the config alone.
        self._pool = AuthorPool(
            size=config.author_pool_size,
            seed=config.seed,
            span_start=config.span_start,
            span_end=config.span_end,
        )
        self._outages_by_day: Dict[dt.date, List[Outage]] = {}
        for outage in self._outages.generate():
            self._outages_by_day.setdefault(outage.date, []).append(outage)
        self._base_volume = self._base_daily_volume()
        n_days = len(self._base_volume)
        self._share_rate = config.speed_share_count / max(
            1.0, config.posts_per_week * n_days / 7.0
        )
        #: ExecutionReport / CheckpointStore of the last generate() call
        #: (None until a run executes, and on cache hits).
        self.last_execution: Optional["ExecutionReport"] = None
        self.last_checkpoint: Optional["CheckpointStore"] = None

    # -- day-level ingredients -------------------------------------------

    def _volume_shape(self, day: dt.date) -> float:
        """Unnormalised base-volume shape.

        The subreddit grows with the service, but far sub-linearly — the
        early community was already large relative to the tiny subscriber
        base (enthusiasts without hardware).  A 60/40 constant/sqrt blend
        gives roughly 1.6x growth over the span.
        """
        month = month_of(day)
        subs = self._subscribers.get(month)
        if subs is None:
            subs = min(self._subscribers.values())
        max_subs = max(self._subscribers.values())
        return 0.6 + 0.4 * float(np.sqrt(subs / max_subs))

    def _base_daily_volume(self) -> Dict[dt.date, float]:
        """Per-day base post counts normalised to the weekly target."""
        days = []
        current = self._config.span_start
        one = dt.timedelta(days=1)
        while current <= self._config.span_end:
            days.append(current)
            current += one
        shape = np.array([self._volume_shape(d) for d in days])
        target_total = self._config.posts_per_week * len(days) / 7.0
        scale = target_total / shape.sum()
        return {d: float(s * scale) for d, s in zip(days, shape)}

    def _topic_weights(
        self,
        day: dt.date,
        events: List[Event],
        outages: List[Outage],
    ) -> Dict[str, float]:
        weights = dict(_BASE_TOPIC_WEIGHTS)
        for event in events:
            intensity = event.intensity_on(day)
            if event.kind == "outage":
                weights["outage_report"] += 2.2 * intensity
            elif event.key.startswith(("roaming", "portability")):
                weights["roaming"] += 0.9 * intensity
            else:
                weights["event_reaction"] += 2.5 * intensity
        for outage in outages:
            if not outage.is_headline:
                weights["outage_report"] += 2.5 * outage.severity
        return weights

    def _sentiment_target(
        self,
        rng: np.random.Generator,
        author: Author,
        topic: str,
        day: dt.date,
        events: List[Event],
        outages: List[Outage],
    ) -> float:
        month = month_of(day)
        sat = self._satisfaction[month] if month in self._satisfaction.months() else 0.5
        if np.isnan(sat):
            sat = 0.5
        community = 1.6 * (sat - 0.5)
        personal = 0.35 * author.optimism
        noise = float(rng.normal(0, 0.22))
        if topic == "outage_report":
            severity = max((o.severity for o in outages), default=0.05)
            base = -0.45 - 0.5 * min(1.0, severity * 1.2)
            return float(np.clip(base + 0.15 * author.optimism + noise * 0.5, -1, 1))
        if topic == "event_reaction":
            reacting_to = _strongest_event(day, events)
            base = reacting_to.sentiment if reacting_to else 0.0
            if reacting_to and reacting_to.key == "delivery_delay_email":
                # Waiting customers take it personally.
                if author.waiting_preorder:
                    base -= 0.25
            return float(np.clip(base + personal + noise * 0.6, -1, 1))
        if topic == "roaming":
            return float(np.clip(0.55 + personal + noise, -1, 1))
        if topic in ("question", "setup_story"):
            return float(np.clip(0.05 + 0.3 * personal + noise * 0.5, -1, 1))
        # experience_report
        raw = community + personal + noise
        # §6 bias: extreme-poster personalities amplify their feelings.
        raw *= 1.0 + 0.6 * author.extremity
        return float(np.clip(raw, -1, 1))

    def _popularity(
        self,
        rng: np.random.Generator,
        sentiment: float,
        day_multiplier: float,
    ) -> Tuple[int, int]:
        heat = 1.0 + 0.8 * abs(sentiment) + 0.25 * (day_multiplier - 1.0)
        upvotes = int(
            rng.lognormal(np.log(self._config.upvotes_per_post * heat) - 0.5, 1.0)
        )
        comments = int(
            rng.lognormal(np.log(self._config.comments_per_post * heat) - 0.6, 1.1)
        )
        return max(0, upvotes), max(0, comments)

    # -- main loop ---------------------------------------------------------

    def generate(
        self,
        cache: Optional["ArtifactCache"] = None,
        execution: Optional["ExecutionPolicy"] = None,
        checkpoint_dir: Optional[str] = None,
        chaos: Optional["ShardFaultInjector"] = None,
    ) -> RedditCorpus:
        """Generate the full corpus (deterministic in the config).

        Each day is rendered independently on its own RNG substream —
        sharded across ``config.workers`` processes when asked, with
        byte-identical output either way.  With ``cache``, the corpus is
        loaded from (or persisted to) the content-addressed artifact
        cache instead of resimulating.

        ``execution`` tunes the fault-tolerance layer (shard retries,
        watchdog timeout, in-process fallback); ``checkpoint_dir``
        enables checkpointed resume, keyed by this config's fingerprint;
        ``chaos`` injects deterministic worker faults (tests only).
        After a run, :attr:`last_execution` holds the
        :class:`~repro.perf.parallel.ExecutionReport` and
        :attr:`last_checkpoint` the store (both None on a cache hit).
        """
        from functools import partial

        self.last_execution = None
        self.last_checkpoint = None
        build = partial(
            self._generate,
            execution=execution, checkpoint_dir=checkpoint_dir, chaos=chaos,
        )
        if cache is not None:
            return cache.load_or_build(
                "corpus",
                self._config,
                build=build,
                # The JSONL header only carries seed + span, so re-attach
                # the full config the caller actually asked for.
                load=lambda path: RedditCorpus(
                    RedditCorpus.from_jsonl(path).posts(), self._config
                ),
                dump=lambda corpus, path: corpus.to_jsonl(path),
            )
        return build()

    def generate_columns(
        self, cache: Optional["ArtifactCache"] = None
    ) -> "CorpusColumns":
        """Columnar fast path: whole days rendered as array blocks.

        Delegates to :class:`repro.social.vectorized.VectorizedCorpusEngine`
        built on *this* generator's world model (author pool, outage
        index, volume curve), so the two paths share every ingredient.
        Statistically — not byte — equivalent to :meth:`generate`; daily
        post counts and the initial author samples match it
        draw-for-draw.  With
        ``cache``, persists under the distinct ``corpus-columns-vec``
        kind.  The returned columns carry ``posts=None``.
        """
        from repro.social.vectorized import VectorizedCorpusEngine

        engine = VectorizedCorpusEngine(self._config, generator=self)
        return engine.generate_columns(cache=cache)

    def _generate(
        self,
        execution: Optional["ExecutionPolicy"] = None,
        checkpoint_dir: Optional[str] = None,
        chaos: Optional["ShardFaultInjector"] = None,
    ) -> RedditCorpus:
        from repro.perf.parallel import ParallelMap

        store = None
        if checkpoint_dir is not None:
            from repro.perf.cache import config_fingerprint
            from repro.perf.checkpoint import CheckpointStore
            from repro.social.schema import post_from_record, post_to_record

            store = CheckpointStore(
                checkpoint_dir,
                run_key=config_fingerprint("corpus", self._config),
                encode=post_to_record,
                decode=post_from_record,
            )
        days = list(self._base_volume.items())
        pm = ParallelMap(
            self._config.workers,
            policy=execution,
            chaos=chaos,
            min_items_per_shard=MIN_DAYS_PER_SHARD,
        )
        posts = pm.map_shards(self._generate_day_shard, days, checkpoint=store)
        self.last_execution = pm.last_report
        self.last_checkpoint = store
        return RedditCorpus(posts, self._config)

    def _generate_day_shard(
        self, items: List[Tuple[dt.date, float]]
    ) -> List[Post]:
        """Render one shard of independent days (pool worker body)."""
        posts: List[Post] = []
        for day, base in items:
            posts.extend(self._generate_day(day, base))
        return posts

    def _generate_day(self, day: dt.date, base: float) -> List[Post]:
        """Render one day of the corpus on its own RNG substream.

        Post ids are day-scoped (``t3_<yyyymmdd>-<n>``) so that a day's
        output — ids included — never depends on any other day's volume.
        """
        rng = derive(self._config.seed, "day", day.isoformat())
        events = self._calendar.active_on(day)
        outages_today = self._outages_by_day.get(day, [])
        multiplier = self._calendar.volume_multiplier(day)
        for outage in outages_today:
            if not outage.is_headline:
                multiplier += 2.0 * outage.severity
        n_posts = int(rng.poisson(base * multiplier))
        if n_posts == 0:
            return []
        authors = self._pool.sample(rng, day, n_posts)
        weights = self._topic_weights(day, events, outages_today)
        weights["speed_test_share"] = self._share_rate * sum(
            v for k, v in weights.items() if k != "speed_test_share"
        ) / max(1e-9, (1 - self._share_rate))
        topic_p = np.array([weights[t] for t in _TOPIC_NAMES])
        topic_p = topic_p / topic_p.sum()

        def served(author: Author) -> bool:
            return self._footprint.is_available(author.country, day)

        posts: List[Post] = []
        for index, author in enumerate(authors, 1):
            topic = str(rng.choice(_TOPIC_NAMES, p=topic_p))
            first_hand = author.is_subscriber and served(author)
            if topic == "speed_test_share" and not first_hand:
                # Only hardware owners in served countries can run a
                # speed test; swap in one so share volume stays on
                # target.
                author = self._pool.sample_subscriber(rng, day, predicate=served)
            if topic == "outage_report" and not first_hand:
                # You can't report an outage you aren't experiencing.
                author = self._pool.sample_subscriber(rng, day, predicate=served)
            if topic == "experience_report" and not first_hand:
                topic = "question"
            posts.append(
                self._make_post(
                    rng, f"t3_{day:%Y%m%d}-{index:05d}", day, author, topic,
                    events, outages_today, multiplier,
                )
            )
        return posts

    def _make_post(
        self,
        rng: np.random.Generator,
        post_id: str,
        day: dt.date,
        author: Author,
        topic: str,
        events: List[Event],
        outages_today: List[Outage],
        multiplier: float,
    ) -> Post:
        sentiment = self._sentiment_target(
            rng, author, topic, day, events, outages_today
        )
        month = month_of(day)
        context: Dict[str, object] = {"country": author.country}
        speed_test: Optional[SpeedTestShare] = None

        if topic == "speed_test_share":
            median = self._speeds[month] if month in self._speeds.months() else 60.0
            speed_test = sample_speed_test(rng, median)
            sat = self._satisfaction[month]
            if np.isnan(sat):
                sat = 0.5
            sentiment = share_sentiment(
                speed_test.download_mbps, median, float(sat)
            ) + 0.25 * author.optimism + float(rng.normal(0, 0.28))
            sentiment = float(np.clip(sentiment, -1, 1))
            context.update(
                dl=speed_test.download_mbps,
                ul=speed_test.upload_mbps,
                lat=int(speed_test.latency_ms),
                provider=speed_test.provider.replace("_", " ").title(),
            )

        vocabulary: Tuple[str, ...] = ()
        if topic in ("event_reaction", "roaming"):
            reacting_to = _strongest_event(day, events)
            if reacting_to is not None:
                vocabulary = reacting_to.vocabulary

        title, text = self._textgen.generate(
            rng, topic, sentiment, vocabulary=vocabulary, context=context
        )
        upvotes, n_comments = self._popularity(rng, sentiment, multiplier)

        comment_texts: Tuple[str, ...] = ()
        if topic == "outage_report" and outages_today:
            outage = max(outages_today, key=lambda o: o.severity)
            # Big outages draw a flood of me-too confirmations whose
            # volume grows super-linearly with duration (people keep
            # checking back and re-reporting while it stays down).
            expected = outage.severity * outage.duration_h**2.0 * 1.2
            n_confirm = int(rng.poisson(expected))
            countries = _confirmation_countries(rng, outage, self._footprint)
            comment_texts = tuple(
                outage_comment(rng, countries[int(rng.integers(0, len(countries)))])
                for _ in range(n_confirm)
            )
            n_comments = max(n_comments, len(comment_texts))

        return Post(
            post_id=post_id,
            created=dt.datetime.combine(
                day, dt.time(int(rng.integers(0, 24)), int(rng.integers(0, 60)))
            ),
            author=author.handle,
            title=title,
            text=text,
            upvotes=upvotes,
            n_comments=n_comments,
            topic=topic,
            speed_test=speed_test,
            comment_texts=comment_texts,
        )


def _strongest_event(day: dt.date, events: List[Event]) -> Optional[Event]:
    best, best_weight = None, 0.0
    for event in events:
        weight = event.volume_boost * event.intensity_on(day)
        if weight > best_weight:
            best, best_weight = event, weight
    return best


def _confirmation_countries(
    rng: np.random.Generator,
    outage: Outage,
    footprint: Footprint,
) -> List[str]:
    """Countries able to confirm an outage: served ones on that day."""
    served = footprint.available_countries(outage.date)
    n = min(len(served), outage.countries_affected)
    picked = list(rng.choice(served, size=n, replace=False)) if n else ["US"]
    # US reports dominate (the paper counts ~190 from the US alone).
    return ["US"] * max(1, n // 2) + [str(c) for c in picked]

"""Synthetic r/Starlink corpus (the §4 substrate).

The paper mines two years of real Reddit posts; offline we generate a
corpus whose *content is caused by the simulated world*: authors adopt
Starlink as the subscriber base grows, experience the speeds produced by
:mod:`repro.starlink.capacity`, live through the outages of
:mod:`repro.starlink.coverage`, react to the real event calendar
(pre-orders, the delivery-delay email, the roaming discovery), and write
posts whose wording carries their satisfaction.  The §4 analysis
pipelines then recover the world from the text alone.

Volume statistics are calibrated to §4.1: 372 posts, 8 190 upvotes and
5 702 comments per average week, and ~1 750 shared speed-test reports
across Jan '21 – Dec '22.
"""

from repro.social.authors import Author, AuthorPool
from repro.social.corpus import CorpusConfig, CorpusGenerator, RedditCorpus
from repro.social.events import Event, EventCalendar, build_news_index
from repro.social.reports import SpeedTestShare
from repro.social.schema import Post
from repro.social.textgen import TextGenerator
from repro.social.threads import ThreadExpander, thread_polarity

__all__ = [
    "Author",
    "AuthorPool",
    "CorpusConfig",
    "CorpusGenerator",
    "Event",
    "EventCalendar",
    "Post",
    "RedditCorpus",
    "SpeedTestShare",
    "TextGenerator",
    "ThreadExpander",
    "build_news_index",
    "thread_polarity",
]

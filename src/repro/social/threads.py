"""Comment-thread expansion: giving busy posts a voice of their own.

§4.1 treats *threads* (posts plus comments) as the unit for keyword
counting and measures community activity in comments per week; the base
generator only writes comment text for outage posts (the me-too
confirmations).  :class:`ThreadExpander` fills in the rest: popular posts
of any topic receive comment bodies whose sentiment clusters around the
post's own (agreement dominates on Reddit threads) with a contrarian
minority.

Expansion is a *post-processing* step, so corpora stay cheap by default
and analyses that need full threads opt in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nlp.sentiment import SentimentAnalyzer
from repro.rng import derive
from repro.social.corpus import RedditCorpus
from repro.social.schema import Post

_AGREE_POS = (
    "Same here, it's been great for us too.",
    "Agreed, couldn't be happier with it.",
    "This matches our experience exactly. Fantastic service.",
    "Yep, works perfectly here as well.",
)
_AGREE_NEG = (
    "Same problems here, really frustrating.",
    "Agreed, it's been terrible for weeks.",
    "We see the same constant disconnects. Awful.",
    "Yep, unusable in the evenings here too.",
)
_CONTRARIAN_POS = (
    "Strange, ours has been rock solid. Maybe check your obstructions?",
    "No issues here at all, works great.",
)
_CONTRARIAN_NEG = (
    "Honestly ours has been pretty bad, not the experience you describe.",
    "Lucky you. Constant dropouts on our end.",
)
_NEUTRAL = (
    "Which hardware revision do you have?",
    "What part of the country are you in?",
    "Did you go through the app or the website?",
    "How long did shipping take?",
)


@dataclass(frozen=True)
class ThreadExpander:
    """Expansion policy.

    Attributes:
        min_comments: only posts with at least this many (counted)
            comments get text bodies.
        max_bodies: cap on generated bodies per post (threads keep their
            original ``n_comments`` count regardless).
        agreement: probability a sentiment-bearing comment agrees with
            the post's polarity.
        neutral_share: share of comments that are neutral logistics.
        seed: determinism root.
    """

    min_comments: int = 10
    max_bodies: int = 8
    agreement: float = 0.75
    neutral_share: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_comments < 1:
            raise ConfigError("min_comments must be >= 1")
        if self.max_bodies < 1:
            raise ConfigError("max_bodies must be >= 1")
        if not 0 <= self.agreement <= 1:
            raise ConfigError("agreement must be in [0, 1]")
        if not 0 <= self.neutral_share <= 1:
            raise ConfigError("neutral_share must be in [0, 1]")

    def _bodies_for(self, rng: np.random.Generator, polarity: float,
                    n: int) -> Tuple[str, ...]:
        def pick(options: Sequence[str]) -> str:
            return options[int(rng.integers(0, len(options)))]

        bodies: List[str] = []
        for _ in range(n):
            if rng.random() < self.neutral_share or abs(polarity) < 0.05:
                bodies.append(pick(_NEUTRAL))
                continue
            agrees = rng.random() < self.agreement
            positive_voice = (polarity > 0) == agrees
            if positive_voice:
                bodies.append(pick(_AGREE_POS if agrees else _CONTRARIAN_POS))
            else:
                bodies.append(pick(_AGREE_NEG if agrees else _CONTRARIAN_NEG))
        return tuple(bodies)

    def expand(
        self,
        corpus: RedditCorpus,
        analyzer: Optional[SentimentAnalyzer] = None,
    ) -> RedditCorpus:
        """Return a new corpus with comment bodies on busy threads.

        Posts that already carry comment texts (outage confirmations)
        are left untouched — their bodies are load-bearing for Fig. 6.
        """
        analyzer = analyzer or SentimentAnalyzer()
        rng = derive(self.seed, "social", "threads")
        expanded: List[Post] = []
        for post in corpus:
            if post.comment_texts or post.n_comments < self.min_comments:
                expanded.append(post)
                continue
            polarity = analyzer.score(post.full_text).polarity
            n_bodies = min(self.max_bodies, post.n_comments)
            bodies = self._bodies_for(rng, polarity, n_bodies)
            expanded.append(Post(
                post_id=post.post_id,
                created=post.created,
                author=post.author,
                title=post.title,
                text=post.text,
                upvotes=post.upvotes,
                n_comments=post.n_comments,
                topic=post.topic,
                speed_test=post.speed_test,
                comment_texts=bodies,
            ))
        return RedditCorpus(expanded, corpus.config)


def thread_polarity(post: Post,
                    analyzer: Optional[SentimentAnalyzer] = None) -> float:
    """Polarity of the whole thread (post + comments, post double-weighted).

    An analysis-unit alternative to post-only scoring: threads where the
    crowd disagrees with the poster pull toward the crowd.
    """
    analyzer = analyzer or SentimentAnalyzer()
    scores = [analyzer.score(post.full_text).polarity] * 2
    scores.extend(
        analyzer.score(comment).polarity for comment in post.comment_texts
    )
    return float(np.mean(scores))

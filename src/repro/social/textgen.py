"""Template-based post text generation.

Every post is written at a *target sentiment* — the author's actual
feeling, produced by the world simulation — and the wording carries it:
strong feelings pick emphatic templates and vocabulary, mild ones hedge,
neutral posts are questions and logistics.  The sentiment analyzer then
has to recover the feeling from the words alone, the same inverse problem
the paper solves on real posts.

Templates deliberately include noise the analyzer must survive: negated
praise in complaints, mixed clauses, and posts whose topic vocabulary
("outage") appears in non-negative contexts.
"""

from __future__ import annotations

import string
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

_PLACES = ("Montana", "rural Ohio", "northern Michigan", "Saskatchewan",
           "the Scottish highlands", "Alberta", "east Texas", "Maine",
           "rural Oregon", "the Ozarks")

_STRONG_POS = ("amazing", "fantastic", "incredible", "excellent", "flawless")
_MILD_POS = ("solid", "decent", "reliable", "smooth", "consistent")
_STRONG_NEG = ("terrible", "horrible", "unusable", "awful", "pathetic")
_MILD_NEG = ("spotty", "inconsistent", "sluggish", "unreliable", "choppy")
_NEG_FEEL = ("frustrated", "disappointed", "annoyed", "upset")
_NEG_NOUN = ("disconnects", "dropouts", "interruptions", "slowdowns")

# (title_template, body_template) per band. Slots: {place} {pos} {mpos}
# {neg} {mneg} {feel} {noun} {vocab} {country} {dl} {ul} {lat} {provider}
_TEMPLATES: Dict[str, Dict[str, List[Tuple[str, str]]]] = {
    "experience_report": {
        "strong_pos": [
            ("Starlink has been {pos}",
             "Been on Starlink for a few months in {place} and it has been "
             "absolutely {pos}. Speeds are {pos2} and video calls are "
             "perfectly stable. Love it."),
            ("So impressed with this service",
             "Coming from DSL this is {pos}. Everything is fast, streaming "
             "works perfectly, zero complaints. Best decision this year."),
        ],
        "mild_pos": [
            ("Pretty happy so far",
             "Service in {place} has been {mpos} overall. The occasional "
             "blip but mostly it just works. Happy with it."),
            ("A month in - {mpos} experience",
             "Speeds are {mpos} and latency is fine for remote work. "
             "Worth it for us."),
        ],
        "neutral": [
            ("Monthly check-in from {place}",
             "Still on the standard plan. Weather has been mixed, speeds "
             "vary by time of day. Curious what others see."),
            ("Two months with the dish",
             "Mounted on a pole past the tree line. Usage is mostly "
             "streaming and email. It does what it says."),
        ],
        "mild_neg": [
            ("Service getting {mneg}",
             "The last couple of weeks have been {mneg} in the evenings. "
             "More {noun} than before, a bit {feel} honestly."),
            ("Evening slowdowns",
             "Not terrible but definitely {mneg} at peak hours now. "
             "{noun} during video calls are getting annoying."),
        ],
        "strong_neg": [
            ("This is getting {neg}",
             "Service has become {neg} here. Constant {noun}, completely "
             "{neg2} during peak hours. Really {feel} with it."),
            ("Done with the {noun}",
             "I am so {feel}. {noun} every single evening, the connection "
             "is {neg}. Not what we paid for."),
        ],
    },
    "speed_test_share": {
        "strong_pos": [
            ("Speed test: {dl} Mbps down!",
             "Ran {provider} just now: {dl} Mbps down, {ul} up, {lat} ms "
             "ping. These speeds are {pos}, truly {pos2}! So happy, love "
             "this service!"),
            ("{dl} Mbps - {pos}!",
             "{provider}: {dl} down / {ul} up / {lat} ms. {pos}, "
             "absolutely {pos2} numbers! Best speeds yet, so excited!"),
        ],
        "mild_pos": [
            ("{dl} Mbps this morning",
             "{provider} result: {dl} down / {ul} up, {lat} ms ping. "
             "{mpos} numbers for where we live."),
        ],
        "neutral": [
            ("Speed test result",
             "{provider}: {dl} Mbps down, {ul} Mbps up, ping {lat} ms. "
             "Taken around noon, clear sky."),
        ],
        "mild_neg": [
            ("Speeds down to {dl}",
             "{provider} says {dl} down / {ul} up, {lat} ms. Used to get "
             "much better, feels {mneg} lately."),
        ],
        "strong_neg": [
            ("{dl} Mbps... seriously?",
             "Just ran {provider}: {dl} down, {ul} up, {lat} ms. This is "
             "{neg} for the price, {neg2} really. So {feel} and angry "
             "with these {noun}."),
            ("Speeds have become {neg}",
             "{provider}: {dl} down / {ul} up / {lat} ms. {neg}, honestly "
             "{neg2}. Paying premium for this is ridiculous, very "
             "{feel}."),
        ],
    },
    "outage_report": {
        "strong_neg": [
            ("Starlink down in {country}?",
             "Is Starlink down for anyone else? Completely offline here "
             "in {country}, dish says no signal. Total outage, really "
             "{feel}."),
            ("Outage right now",
             "Service just went down, no internet at all. Obstruction map "
             "clear, router fine - looks like an outage. {neg} timing."),
        ],
        "mild_neg": [
            ("Short outage tonight",
             "Went offline for about twenty minutes in {country}, back "
             "now. Second small outage this week, slightly {feel}."),
            ("Brief disconnects this evening",
             "Anyone else seeing short dropouts tonight? Mine "
             "disconnected twice in {country}. Came back on its own."),
        ],
        "neutral": [
            ("Was there an outage last night?",
             "Noticed the connection dropped around 2am for a few "
             "minutes. Checking whether it was an outage or just my "
             "setup."),
        ],
    },
    "question": {
        "neutral": [
            ("Question about mounting",
             "Thinking about a roof mount versus a pole in the yard. Any "
             "advice on clearing a tree line to the north?"),
            ("Which router do people use?",
             "Does bypassing the stock router change anything for "
             "gaming? Looking at options."),
            ("Shipping to {country}?",
             "Anyone in {country} get a shipping notice recently? Trying "
             "to estimate the wait."),
        ],
    },
    "setup_story": {
        "mild_pos": [
            ("Setup day!",
             "Dishy arrived and setup took fifteen minutes. First tests "
             "look {mpos}. Nice packaging, easy app flow."),
        ],
        "neutral": [
            ("Install notes",
             "Mounted on the chimney with the long cable. Routed through "
             "the attic. Will report speeds after a week."),
        ],
    },
    "event_reaction": {
        "strong_pos": [
            ("{vocab} news - this is {pos}!",
             "This is {pos} news, absolutely {pos2}! So excited and so "
             "happy right now. Ordered immediately, best day in years!"),
            ("{pos} news today!",
             "Did everyone see the {vocab} news? {pos}, truly {pos2}! "
             "So happy and excited, this is wonderful for all of us!"),
        ],
        "mild_pos": [
            ("{vocab} update",
             "The {vocab} news looks {mpos}. Cautiously optimistic about "
             "what it means for coverage here."),
        ],
        "neutral": [
            ("{vocab} - details?",
             "Saw the {vocab} announcement. Anyone have details on "
             "timelines or pricing?"),
        ],
        "mild_neg": [
            ("Not thrilled about the {vocab} news",
             "The {vocab} announcement feels {mneg}. More waiting, I "
             "guess. A bit {feel}."),
        ],
        "strong_neg": [
            ("{vocab} email... {neg}",
             "Got the {vocab} email today. Delivery delayed again, "
             "months more waiting. Absolutely {feel}, this is {neg} "
             "communication."),
            ("Seriously {feel} about the {vocab}",
             "Another {vocab} pushback. We put the deposit down a year "
             "ago. {neg} way to treat customers."),
        ],
    },
    "roaming": {
        "strong_pos": [
            ("Roaming is working!",
             "Took the dish {vocab} two counties over and roaming is "
             "working perfectly. This is {pos}! Roaming enabled without "
             "any address change."),
            ("Roaming enabled?!",
             "Tested roaming on a {vocab} trip - it works! Full speeds "
             "away from the service address. {pos}!"),
        ],
        "mild_pos": [
            ("Roaming experiment",
             "Tried the dish at a {vocab} spot 100 miles out. Roaming "
             "worked, speeds were {mpos}. Promising."),
        ],
        "neutral": [
            ("Does roaming work across borders?",
             "Has anyone tried roaming into another state or {country}? "
             "Wondering where the limit is."),
        ],
    },
}

_BANDS = ("strong_neg", "mild_neg", "neutral", "mild_pos", "strong_pos")

#: Compiled template: ((literal, field-or-None), ...) in source order.
CompiledTemplate = Tuple[Tuple[str, Optional[str]], ...]

_FORMATTER = string.Formatter()


def compile_template(template: str) -> CompiledTemplate:
    """Pre-parse a ``str.format`` template into literal/field parts.

    Rendering a compiled template with :func:`render_template` is
    byte-identical to ``template.format(**slots)`` for the plain
    ``{field}`` slots these templates use (no format specs, no
    conversions) — and roughly 4x faster, which matters because the
    corpus renders every post through two templates.
    """
    parts = []
    for literal, field, spec, conversion in _FORMATTER.parse(template):
        if spec or conversion:
            raise ConfigError(
                f"templates use plain {{field}} slots only, got {template!r}"
            )
        parts.append((literal, field))
    return tuple(parts)


def render_template(parts: CompiledTemplate, slots: Dict[str, object]) -> str:
    """Render a compiled template against a slot mapping."""
    out: List[str] = []
    for literal, field in parts:
        if literal:
            out.append(literal)
        if field is not None:
            out.append(str(slots[field]))
    return "".join(out)


def band_for(sentiment: float) -> str:
    """Map a target sentiment in [-1, 1] to a template band."""
    if not -1 <= sentiment <= 1:
        raise ConfigError(f"sentiment must be in [-1, 1], got {sentiment}")
    if sentiment <= -0.45:
        return "strong_neg"
    if sentiment <= -0.15:
        return "mild_neg"
    if sentiment < 0.15:
        return "neutral"
    if sentiment < 0.45:
        return "mild_pos"
    return "strong_pos"


class TextGenerator:
    """Template filler with templates compiled once per instance.

    The random draw sequence (template pick, then the fixed slot order
    in :meth:`_slots`) is part of the determinism contract and does not
    change with compilation — only the final ``str.format`` call is
    replaced by pre-parsed part joins, byte-identical on these
    templates (pinned by tests).
    """

    def __init__(self) -> None:
        self._compiled: Dict[
            str, Dict[str, List[Tuple[CompiledTemplate, CompiledTemplate]]]
        ] = {
            topic: {
                band: [
                    (compile_template(title), compile_template(body))
                    for title, body in templates
                ]
                for band, templates in bands.items()
            }
            for topic, bands in _TEMPLATES.items()
        }

    def generate(
        self,
        rng: np.random.Generator,
        topic: str,
        sentiment: float,
        vocabulary: Sequence[str] = (),
        context: Optional[Dict[str, object]] = None,
    ) -> Tuple[str, str]:
        """Produce (title, body) for a post.

        Falls back to the nearest available band when a topic lacks
        templates at the requested intensity (e.g. there are no positive
        outage reports).
        """
        if topic not in self._compiled:
            raise ConfigError(f"unknown topic {topic!r}")
        bands = self._compiled[topic]
        band = band_for(sentiment)
        if band not in bands:
            band = _nearest_band(band, bands)
        title_t, body_t = bands[band][int(rng.integers(0, len(bands[band])))]
        slots = self._slots(rng, vocabulary, context or {})
        return render_template(title_t, slots), render_template(body_t, slots)

    def _slots(
        self,
        rng: np.random.Generator,
        vocabulary: Sequence[str],
        context: Dict[str, object],
    ) -> Dict[str, object]:
        def pick(options: Sequence[str]) -> str:
            return str(options[int(rng.integers(0, len(options)))])

        if vocabulary:
            # Lead with the event's primary term most of the time so the
            # day's word cloud is dominated by it, with spillover variety.
            if rng.random() < 0.6:
                vocab = str(vocabulary[0])
            else:
                vocab = pick(list(vocabulary))
        else:
            vocab = "update"
        slots: Dict[str, object] = {
            "place": pick(_PLACES),
            "pos": pick(_STRONG_POS),
            "pos2": pick(_STRONG_POS),
            "mpos": pick(_MILD_POS),
            "neg": pick(_STRONG_NEG),
            "neg2": pick(_STRONG_NEG),
            "mneg": pick(_MILD_NEG),
            "feel": pick(_NEG_FEEL),
            "noun": pick(_NEG_NOUN),
            "vocab": vocab,
            "country": context.get("country", "US"),
            "dl": context.get("dl", 80),
            "ul": context.get("ul", 12),
            "lat": context.get("lat", 40),
            "provider": context.get("provider", "Speedtest"),
        }
        return slots


def _nearest_band(band: str, available: Dict[str, List]) -> str:
    order = _BANDS.index(band)
    best = None
    best_distance = len(_BANDS)
    for candidate in available:
        distance = abs(_BANDS.index(candidate) - order)
        if distance < best_distance:
            best, best_distance = candidate, distance
    if best is None:
        raise ConfigError("topic has no templates at all")
    return best


OUTAGE_COMMENTS = (
    "Down here too in {country}.",
    "Same outage in {country}, no service since this morning.",
    "Offline here as well, dish shows disconnected.",
    "Dead in {country} too. No internet at all.",
    "Confirmed down in {country}. Came back after an hour.",
    "Service down here, totally offline.",
    "Getting nothing here either, complete outage.",
)


def outage_comment(rng: np.random.Generator, country: str) -> str:
    """A me-too confirmation comment for an outage thread."""
    template = OUTAGE_COMMENTS[int(rng.integers(0, len(OUTAGE_COMMENTS)))]
    return template.format(country=country)

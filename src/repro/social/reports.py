"""Speed-test sharing behaviour.

§4.2 identifies ~1750 Starlink speed-test screenshots shared on
r/Starlink over Jan '21 – Dec '22, across providers (Ookla, Fast,
Starlink's own app, others).  This module samples the *measurement* a
user would share: their personal draw around the month's true median,
plus realistic uplink and latency values.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.social.schema import SpeedTestShare

# Provider market share among shared screenshots.
_PROVIDER_WEIGHTS = (
    ("ookla", 0.50),
    ("fast", 0.18),
    ("starlink_app", 0.25),
    ("other", 0.07),
)

# Person-to-person spread of measured speed around the network median
# (cell load, obstructions, time of day).
_SPREAD_SIGMA = 0.32


def sample_provider(rng: np.random.Generator) -> str:
    names = [n for n, _ in _PROVIDER_WEIGHTS]
    weights = np.array([w for _, w in _PROVIDER_WEIGHTS])
    return str(rng.choice(names, p=weights / weights.sum()))


def sample_speed_test(
    rng: np.random.Generator,
    median_download_mbps: float,
) -> SpeedTestShare:
    """Draw one user's speed-test result given the network-wide median."""
    if median_download_mbps <= 0:
        raise ConfigError("median_download_mbps must be positive")
    download = float(
        median_download_mbps * np.exp(rng.normal(0.0, _SPREAD_SIGMA))
    )
    download = max(1.0, min(350.0, download))
    upload = max(0.5, download * float(rng.uniform(0.08, 0.2)))
    latency = float(np.clip(rng.lognormal(np.log(38), 0.3), 18, 150))
    return SpeedTestShare(
        provider=sample_provider(rng),
        download_mbps=round(download, 1),
        upload_mbps=round(upload, 1),
        latency_ms=round(latency),
    )


def share_sentiment(
    measured_mbps: float,
    network_median_mbps: float,
    monthly_satisfaction: float,
    gain: float = 3.0,
    pivot: float = 0.52,
) -> float:
    """Target sentiment of a speed-share post.

    Combines the community's conditioned satisfaction (the Fig. 7 green
    line driver) with the personal result: someone measuring far above
    the median brags, someone far below vents.  The ``pivot`` sits just
    above neutral satisfaction — people need clear positive surprise to
    post praise, while mild disappointment already vents (social-media
    negativity bias, §6).
    """
    if measured_mbps <= 0 or network_median_mbps <= 0:
        raise ConfigError("speeds must be positive")
    if not 0 <= monthly_satisfaction <= 1:
        raise ConfigError("monthly_satisfaction must be in [0, 1]")
    community = gain * (monthly_satisfaction - pivot)
    personal = 0.55 * float(np.log(measured_mbps / network_median_mbps))
    return float(np.clip(community + personal, -1.0, 1.0))

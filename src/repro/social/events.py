"""The real-world event calendar and the derived news index.

These are the public events the paper ties its Fig. 5a peaks to, plus the
roaming timeline behind the §4.1 early-detection result.  Each event
declares how the community reacts (volume multiplier, sentiment
direction, vocabulary) and whether the press covered it — the 22 Apr '22
outage famously was *not* covered, which is exactly why the paper's news
annotation comes back empty for its third-highest peak.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.nlp.news import NewsArticle, NewsIndex
from repro.starlink.coverage import HEADLINE_OUTAGES, Outage


@dataclass(frozen=True)
class Event:
    """One community-moving event.

    Attributes:
        date: event day.
        key: stable identifier.
        kind: ``announcement`` / ``outage`` / ``discovery``.
        sentiment: expected community reaction in [-1, 1].
        volume_boost: multiplier on that day's post volume.
        decay_days: how many days the reaction takes to fade.
        vocabulary: words the reaction posts lean on (drives word clouds).
        in_news: whether the press covered it.
        headline: the article headline if covered.
    """

    date: dt.date
    key: str
    kind: str
    sentiment: float
    volume_boost: float
    decay_days: int
    vocabulary: Tuple[str, ...]
    in_news: bool
    headline: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("announcement", "outage", "discovery"):
            raise ConfigError(f"unknown event kind {self.kind!r}")
        if not -1 <= self.sentiment <= 1:
            raise ConfigError("sentiment must be in [-1, 1]")
        if self.volume_boost < 1:
            raise ConfigError("volume_boost must be >= 1")
        if self.decay_days < 0:
            raise ConfigError("decay_days must be >= 0")
        if self.in_news and not self.headline:
            raise ConfigError(f"event {self.key}: in_news requires a headline")

    def intensity_on(self, day: dt.date) -> float:
        """Reaction intensity in [0, 1].

        Announcements and outages spike on the day and decay
        geometrically; discoveries (like roaming) simmer at a sustained
        level while enthusiasts keep experimenting and posting.
        """
        offset = (day - self.date).days
        if offset < 0 or offset > self.decay_days:
            return 0.0
        if self.kind == "discovery":
            return 0.35
        return 0.5**offset


# --- the calendar ---------------------------------------------------------

PREORDER_EVENT = Event(
    date=dt.date(2021, 2, 9),
    key="preorders_open",
    kind="announcement",
    sentiment=0.85,
    volume_boost=8.0,
    decay_days=3,
    vocabulary=("preorder", "deposit", "ordered", "order", "excited",
                "finally", "available", "canada", "uk"),
    in_news=True,
    headline="SpaceX begins accepting $99 preorders for Starlink internet",
)

DELAY_EVENT = Event(
    date=dt.date(2021, 11, 24),
    key="delivery_delay_email",
    kind="announcement",
    sentiment=-0.8,
    volume_boost=7.0,
    decay_days=3,
    vocabulary=("email", "delayed", "delay", "delivery", "pushback",
                "waiting", "deposit", "refund", "months"),
    in_news=True,
    headline="Starlink disappoints preorder customers by pushing back delivery",
)

ROAMING_DISCOVERY = Event(
    date=dt.date(2022, 2, 14),
    key="roaming_discovery",
    kind="discovery",
    sentiment=0.7,
    volume_boost=1.8,
    decay_days=16,
    vocabulary=("roaming", "roaming enabled", "moved", "camping",
                "travel", "address", "portable", "working"),
    in_news=False,
)

ROAMING_ANNOUNCEMENT = Event(
    date=dt.date(2022, 3, 4),
    key="roaming_announced",
    kind="announcement",
    sentiment=0.75,
    volume_boost=2.5,
    decay_days=3,
    vocabulary=("roaming", "mobile", "enabled", "announced", "tweet"),
    in_news=True,
    headline="Musk says Starlink mobile roaming enabled",
)

PORTABILITY_NOTICE = Event(
    date=dt.date(2022, 5, 3),
    key="portability_notice",
    kind="announcement",
    sentiment=0.6,
    volume_boost=1.8,
    decay_days=2,
    vocabulary=("portability", "roaming", "official", "feature", "move"),
    in_news=True,
    headline="Starlink becomes movable with new Portability option",
)


def outage_event(
    outage: Outage,
    severity_boost: float = 4.0,
    covered_damping: float = 0.5,
    uncovered_amplifier: float = 1.5,
) -> Event:
    """Derive an Event from an outage.

    An uncovered outage drives *more* Reddit discussion than a covered
    one of the same size: with no press confirmation, Reddit is where
    users go to find out whether it's just them (the paper counted ~190
    US reports for the unreported 22 Apr '22 event).  Conversely, press
    coverage satisfies the "is it just me?" urge and damps the flood.
    """
    base_boost = 1.0 + severity_boost * outage.severity
    if outage.is_headline:
        if outage.in_news:
            base_boost = 1.0 + (base_boost - 1.0) * covered_damping
        else:
            base_boost = 1.0 + (base_boost - 1.0) * uncovered_amplifier
    return Event(
        date=outage.date,
        key=f"outage_{outage.date.isoformat()}",
        kind="outage",
        sentiment=-0.85,
        volume_boost=base_boost,
        decay_days=1 if outage.is_headline else 0,
        vocabulary=("outage", "down", "offline", "disconnected",
                    "no service", "dead", "anyone else"),
        in_news=outage.in_news,
        headline=(
            f"Starlink suffers {outage.cause}" if outage.in_news else None
        ),
    )


@dataclass(frozen=True)
class EventCalendar:
    """All scheduled events plus outage-derived ones."""

    scheduled: Tuple[Event, ...] = (
        PREORDER_EVENT,
        DELAY_EVENT,
        ROAMING_DISCOVERY,
        ROAMING_ANNOUNCEMENT,
        PORTABILITY_NOTICE,
    )
    outages: Tuple[Outage, ...] = tuple(HEADLINE_OUTAGES)

    def events(self) -> List[Event]:
        out = list(self.scheduled)
        out.extend(outage_event(o) for o in self.outages)
        return sorted(out, key=lambda e: e.date)

    def active_on(self, day: dt.date) -> List[Event]:
        return [e for e in self.events() if e.intensity_on(day) > 0]

    def volume_multiplier(self, day: dt.date) -> float:
        """Combined post-volume multiplier for a day."""
        multiplier = 1.0
        for event in self.events():
            intensity = event.intensity_on(day)
            if intensity > 0:
                multiplier += (event.volume_boost - 1.0) * intensity
        return multiplier


def build_news_index(
    calendar: EventCalendar,
    launches_as_news: bool = True,
) -> NewsIndex:
    """The simulated press corpus: covered events (+ launch wire copy).

    Launch articles give the index realistic background mass so that a
    search for generic terms doesn't trivially return empty.
    """
    index = NewsIndex()
    for event in calendar.events():
        if event.in_news and event.headline:
            body_terms = " ".join(event.vocabulary)
            index.add(
                NewsArticle(
                    date=event.date,
                    headline=event.headline,
                    body=f"Starlink {body_terms}.",
                    source="tech-press",
                )
            )
    if launches_as_news:
        from repro.starlink.launches import LAUNCH_CATALOG

        for (year, month), (count, per_launch) in sorted(
            LAUNCH_CATALOG.monthly.items()
        ):
            if count == 0:
                continue
            index.add(
                NewsArticle(
                    date=dt.date(year, month, 15),
                    headline=(
                        f"SpaceX launches {count * per_launch} more "
                        f"Starlink satellites"
                    ),
                    body="Falcon 9 launch batch satellites orbit deployment.",
                    source="wire",
                )
            )
    return index

"""The posting population: who is on r/Starlink and how they differ.

The §6 "social network bias" discussion motivates modelling authors
explicitly: social media over-represents extremes (delighted early
adopters and burned customers both post more than the satisfied middle),
and the population's composition shifts over time as the service grows
from enthusiasts toward ordinary subscribers.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.rng import derive

COUNTRIES = (
    "US", "US", "US", "US", "US", "US", "US", "US", "CA", "CA",
    "UK", "AU", "DE", "FR", "NZ", "MX", "IT", "ES", "PT", "BR",
    "CL", "IE", "BE", "NL",
)


@dataclass(frozen=True)
class Author:
    """One community member.

    Attributes:
        handle: username.
        joined: first day active on the subreddit.
        is_subscriber: has the hardware (non-subscribers post questions
            and event reactions, not experience reports).
        optimism: personal sentiment offset in [-1, 1].
        extremity: tendency to post only when feelings are strong, [0, 1]
            (the §6 bias knob).
        verbosity: relative posting rate.
        country: where they are (used for the multi-country outage
            confirmation detail).
        waiting_preorder: ordered but not yet delivered — this cohort is
            the one the 24 Nov '21 delay email enrages.
    """

    handle: str
    joined: dt.date
    is_subscriber: bool
    optimism: float
    extremity: float
    verbosity: float
    country: str
    waiting_preorder: bool

    def __post_init__(self) -> None:
        if not -1 <= self.optimism <= 1:
            raise ConfigError("optimism must be in [-1, 1]")
        if not 0 <= self.extremity <= 1:
            raise ConfigError("extremity must be in [0, 1]")
        if self.verbosity <= 0:
            raise ConfigError("verbosity must be positive")


class AuthorPool:
    """A population that grows over the corpus span.

    Growth tracks the subscriber curve loosely (the subreddit grew with
    the service), and the subscriber share among authors rises over time
    as hardware actually ships.
    """

    def __init__(self, size: int = 4000, seed: int = 0,
                 span_start: dt.date = dt.date(2021, 1, 1),
                 span_end: dt.date = dt.date(2022, 12, 31)) -> None:
        if size < 10:
            raise ConfigError("author pool needs at least 10 members")
        if span_end < span_start:
            raise ConfigError("span_end precedes span_start")
        rng = derive(seed, "social", "authors")
        span_days = (span_end - span_start).days
        self._authors: List[Author] = []
        for i in range(size):
            # A founding cohort predates the span (the subreddit already
            # existed); the rest skew early but keep arriving.
            if rng.random() < 0.15:
                join_frac = 0.0
            else:
                join_frac = float(rng.beta(1.2, 1.8))
            joined = span_start + dt.timedelta(days=int(join_frac * span_days))
            late = join_frac  # later joiners more likely to have hardware
            is_subscriber = bool(rng.random() < 0.25 + 0.55 * late)
            self._authors.append(
                Author(
                    handle=f"redditor_{i:05d}",
                    joined=joined,
                    is_subscriber=is_subscriber,
                    optimism=float(np.clip(rng.normal(0.1, 0.35), -1, 1)),
                    extremity=float(rng.beta(2, 3)),
                    verbosity=float(np.exp(rng.normal(0, 0.6))),
                    country=str(rng.choice(COUNTRIES)),
                    waiting_preorder=bool(
                        not is_subscriber and rng.random() < 0.5
                    ),
                )
            )

    def __len__(self) -> int:
        return len(self._authors)

    def active_on(self, day: dt.date) -> List[Author]:
        """Members who have joined by the given day."""
        return [a for a in self._authors if a.joined <= day]

    def sample(self, rng: np.random.Generator, day: dt.date, n: int) -> List[Author]:
        """Draw ``n`` posting authors for a day, verbosity-weighted."""
        active = self.active_on(day)
        if not active:
            raise ConfigError(f"no active authors on {day}")
        weights = np.array([a.verbosity for a in active])
        idx = rng.choice(len(active), size=n, p=weights / weights.sum())
        return [active[int(i)] for i in idx]

    def sample_subscriber(
        self,
        rng: np.random.Generator,
        day: dt.date,
        predicate=None,
    ) -> Author:
        """Draw one author who actually has the hardware.

        ``predicate`` optionally narrows further (e.g. to countries where
        the service is actually available); it falls back to the plain
        subscriber pool when nobody matches.
        """
        subscribers = [a for a in self.active_on(day) if a.is_subscriber]
        if not subscribers:
            raise ConfigError(f"no active subscribers on {day}")
        if predicate is not None:
            narrowed = [a for a in subscribers if predicate(a)]
            if narrowed:
                subscribers = narrowed
        weights = np.array([a.verbosity for a in subscribers])
        i = rng.choice(len(subscribers), p=weights / weights.sum())
        return subscribers[int(i)]

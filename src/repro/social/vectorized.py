"""Block-vectorized corpus generation — days born columnar.

The record path (:class:`~repro.social.corpus.CorpusGenerator`) renders
one post at a time: ~25 small RNG calls, a ``str.format`` pair and a
:class:`~repro.social.schema.Post` object per post.  This module renders
**whole days at once** and emits :class:`~repro.perf.columnar.CorpusColumns`
directly — per-day array draws, precompiled-template text, no record
objects.

Per-day draw order
------------------

Every day keeps its own substream (``derive(seed, "day", iso_date)``),
exactly like the record path, so shard plans and worker counts never
change the output.  The first two draws *byte-match* the record path —
the day's post count and its verbosity-weighted author sample are the
identical ``rng.poisson`` / ``rng.choice`` calls — after which draws
happen in documented block order:

1.  post count ``rng.poisson(base * multiplier)`` (identical to record);
2.  author sample ``rng.choice(len(active), n, p)`` (identical);
3.  topic uniforms ``rng.random(n)`` (inverse-CDF over the day's mix);
4.  replacement uniforms ``rng.random(k_swap)`` for speed/outage posts
    whose author lacks served hardware;
5.  sentiment noise ``rng.normal(0, 0.22, n)``;
6.  the speed-test block for the day's share posts: download normals,
    upload uniforms, latency normals, provider uniforms, share noise;
7.  popularity normals (upvotes, then comments);
8.  outage-confirmation counts ``rng.poisson(expected, k_outage)``;
9.  text draws: template uniforms, vocabulary gate + pick uniforms,
    then the nine slot index arrays in fixed order (place, pos, pos2,
    mpos, neg, neg2, mneg, feel, noun);
10. created times (hour, then minute integers).

Equivalence contract
--------------------

Outputs are **statistically equivalent** to the record path — same
processes, same parameters, same per-day substreams; daily post counts
and author identity match it exactly — but not byte-identical beyond
those first two draws (documented order above, inverse-CDF categorical
draws; subscriber swap-ins are re-drawn in block order, so a swapped
post's final author can differ).  Within the vectorized path, output is byte-identical across
worker counts, shard plans and cache round-trips (pinned by tests).
Two scope cuts, both documented: outage me-too *comment texts* are not
rendered (``full_text`` never includes comments; ``n_comments`` still
reflects the confirmation flood, so ``popularity`` matches the
process), and ``posts`` stays ``None`` — consumers that need record
objects (thread text, speed-share records) use the record path.
"""

from __future__ import annotations

import datetime as dt
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.timeline import month_of
from repro.perf.columnar import CorpusColumns
from repro.rng import derive
from repro.social.corpus import (
    MIN_DAYS_PER_SHARD,
    CorpusConfig,
    CorpusGenerator,
    _strongest_event,
    _TOPIC_NAMES,
)
from repro.social.reports import _PROVIDER_WEIGHTS, _SPREAD_SIGMA
from repro.social.textgen import (
    CompiledTemplate,
    _BANDS,
    _MILD_NEG,
    _MILD_POS,
    _NEG_FEEL,
    _NEG_NOUN,
    _PLACES,
    _STRONG_NEG,
    _STRONG_POS,
    _TEMPLATES,
    _nearest_band,
    compile_template,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.cache import ArtifactCache

_TOPIC_IDX = {name: i for i, name in enumerate(_TOPIC_NAMES)}
_EXPERIENCE = _TOPIC_IDX["experience_report"]
_SPEED = _TOPIC_IDX["speed_test_share"]
_OUTAGE = _TOPIC_IDX["outage_report"]
_QUESTION = _TOPIC_IDX["question"]
_SETUP = _TOPIC_IDX["setup_story"]
_EVENT = _TOPIC_IDX["event_reaction"]
_ROAMING = _TOPIC_IDX["roaming"]

#: The nine vocabulary slots drawn per post, in draw order.
_SLOT_VOCAB: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("place", _PLACES),
    ("pos", _STRONG_POS),
    ("pos2", _STRONG_POS),
    ("mpos", _MILD_POS),
    ("neg", _STRONG_NEG),
    ("neg2", _STRONG_NEG),
    ("mneg", _MILD_NEG),
    ("feel", _NEG_FEEL),
    ("noun", _NEG_NOUN),
)


def _render_cols(
    parts: CompiledTemplate, cols: Dict[str, List[str]], i: int
) -> str:
    """Render one compiled template row against per-day slot columns."""
    out: List[str] = []
    for literal, field in parts:
        if literal:
            out.append(literal)
        if field is not None:
            out.append(cols[field][i])
    return "".join(out)


class VectorizedCorpusEngine:
    """Batch engine producing :class:`CorpusColumns` from a corpus config.

    Mirrors :class:`CorpusGenerator`'s world model — it *reuses* the
    generator's hoisted ingredients (author pool, outage index, volume
    curve, satisfaction track) so the two paths can never drift apart —
    and replaces the per-post loop with the block draw order documented
    in the module docstring.
    """

    def __init__(
        self,
        config: CorpusConfig = CorpusConfig(),
        generator: Optional[CorpusGenerator] = None,
    ) -> None:
        self._gen = generator if generator is not None else CorpusGenerator(config)
        cfg = self._gen._config
        self._config = cfg
        span_start = cfg.span_start

        authors = self._gen._pool.active_on(cfg.span_end)
        self._handles = [a.handle for a in authors]
        self._countries = [a.country for a in authors]
        self._joined = np.array(
            [(a.joined - span_start).days for a in authors], dtype=np.int64
        )
        self._verbosity = np.array([a.verbosity for a in authors])
        self._optimism = np.array([a.optimism for a in authors])
        self._extremity = np.array([a.extremity for a in authors])
        self._is_subscriber = np.array(
            [a.is_subscriber for a in authors], dtype=bool
        )
        self._waiting = np.array(
            [a.waiting_preorder for a in authors], dtype=bool
        )
        # Per-author service-start day offset (beyond-span for countries
        # the footprint never serves) — `served` becomes one comparison.
        never = (cfg.span_end - span_start).days + 2
        service = self._gen._footprint.service_start
        self._serve_start = np.array(
            [
                (service[a.country] - span_start).days
                if a.country in service else never
                for a in authors
            ],
            dtype=np.int64,
        )

        # (topic, band) -> compiled template group, with the record
        # path's nearest-band fallback resolved once up front.
        self._templates: List[
            List[List[Tuple[CompiledTemplate, CompiledTemplate]]]
        ] = []
        for topic in _TOPIC_NAMES:
            bands = _TEMPLATES[topic]
            row = []
            for band in _BANDS:
                use = band if band in bands else _nearest_band(band, bands)
                row.append(
                    [
                        (compile_template(t), compile_template(b))
                        for t, b in bands[use]
                    ]
                )
            self._templates.append(row)

        weights = np.array([w for _, w in _PROVIDER_WEIGHTS])
        self._provider_cdf = np.cumsum(weights / weights.sum())
        self._provider_names = [
            n.replace("_", " ").title() for n, _ in _PROVIDER_WEIGHTS
        ]

    @property
    def config(self) -> CorpusConfig:
        return self._config

    # -- entry point -----------------------------------------------------

    def generate_columns(
        self, cache: Optional["ArtifactCache"] = None
    ) -> CorpusColumns:
        """Build (or load) the corpus as one columns block.

        With ``cache``, the block persists under kind
        ``corpus-columns-vec`` — distinct from the record-derived
        ``corpus-columns`` kind, because the two paths are
        statistically, not byte, equivalent.  ``posts`` is always
        ``None`` on this path.
        """
        if cache is not None:
            return cache.load_or_build(
                "corpus-columns-vec",
                self._config,
                build=self._build,
                load=CorpusColumns.from_jsonl,
                dump=lambda cols, path: cols.to_jsonl(path),
            )
        return self._build()

    def _build(self) -> CorpusColumns:
        from repro.perf.parallel import ParallelMap

        days = list(self._gen._base_volume.items())
        if self._config.workers <= 1:
            merged = self._simulate_days(days)
        else:
            pm = ParallelMap(
                self._config.workers,
                min_items_per_shard=MIN_DAYS_PER_SHARD,
            )
            chunks = pm.map_shards(self._days_shard, days)
            merged = CorpusColumns.concat(chunks)
        return _sorted_by_created(merged)

    def _days_shard(
        self, items: List[Tuple[dt.date, float]]
    ) -> List[CorpusColumns]:
        """Pool worker body: one shard of days → one columns chunk."""
        return [self._simulate_days(items)]

    def _simulate_days(
        self, items: Sequence[Tuple[dt.date, float]]
    ) -> CorpusColumns:
        post_id: List[str] = []
        author: List[str] = []
        topic: List[str] = []
        full_text: List[str] = []
        created: List[dt.datetime] = []
        month: List[Tuple[int, int]] = []
        day_chunks: List[np.ndarray] = []
        pop_chunks: List[np.ndarray] = []
        speed_chunks: List[np.ndarray] = []
        for day, base in items:
            piece = self._day_columns(day, base)
            if piece is None:
                continue
            post_id.extend(piece["post_id"])
            author.extend(piece["author"])
            topic.extend(piece["topic"])
            full_text.extend(piece["full_text"])
            created.extend(piece["created"])
            month.extend(piece["month"])
            day_chunks.append(piece["day_index"])
            pop_chunks.append(piece["popularity"])
            speed_chunks.append(piece["speed_mask"])
        if day_chunks:
            day_index = np.concatenate(day_chunks)
            popularity = np.concatenate(pop_chunks)
            speed_indices = np.flatnonzero(np.concatenate(speed_chunks))
        else:
            day_index = np.empty(0, dtype=np.int64)
            popularity = np.empty(0)
            speed_indices = np.empty(0, dtype=np.int64)
        return CorpusColumns(
            span_start=self._config.span_start,
            span_end=self._config.span_end,
            post_id=post_id,
            author=author,
            topic=topic,
            full_text=full_text,
            created=created,
            day_index=day_index,
            month=month,
            popularity=popularity,
            speed_indices=speed_indices,
            posts=None,
        )

    # -- one day ---------------------------------------------------------

    def _day_columns(
        self, day: dt.date, base: float
    ) -> Optional[Dict[str, object]]:
        cfg = self._config
        gen = self._gen
        rng = derive(cfg.seed, "day", day.isoformat())
        events = gen._calendar.active_on(day)
        outages_today = gen._outages_by_day.get(day, [])
        multiplier = gen._calendar.volume_multiplier(day)
        for outage in outages_today:
            if not outage.is_headline:
                multiplier += 2.0 * outage.severity

        # 1-2. Post count and author sample: identical record-path draws.
        n = int(rng.poisson(base * multiplier))
        if n == 0:
            return None
        day_off = (day - cfg.span_start).days
        active = np.flatnonzero(self._joined <= day_off)
        weights = self._verbosity[active]
        author_idx = active[
            rng.choice(len(active), size=n, p=weights / weights.sum())
        ]

        # 3. Topics (inverse CDF over the day's weighted mix).
        topic_weights = gen._topic_weights(day, events, outages_today)
        topic_weights["speed_test_share"] = gen._share_rate * sum(
            v for k, v in topic_weights.items() if k != "speed_test_share"
        ) / max(1e-9, (1 - gen._share_rate))
        topic_p = np.array([topic_weights[t] for t in _TOPIC_NAMES])
        topic_cdf = np.cumsum(topic_p / topic_p.sum())
        topic_idx = np.minimum(
            topic_cdf.searchsorted(rng.random(n), side="right"),
            len(_TOPIC_NAMES) - 1,
        )

        # 4. First-hand gating: swap in served subscribers for
        # speed/outage posts, downgrade unserved experience reports.
        served = self._serve_start[author_idx] <= day_off
        first_hand = self._is_subscriber[author_idx] & served
        need_sub = (
            (topic_idx == _SPEED) | (topic_idx == _OUTAGE)
        ) & ~first_hand
        k_swap = int(need_sub.sum())
        if k_swap:
            u = rng.random(k_swap)
            pool = np.flatnonzero(
                (self._joined <= day_off)
                & self._is_subscriber
                & (self._serve_start <= day_off)
            )
            if len(pool) == 0:
                pool = np.flatnonzero(
                    (self._joined <= day_off) & self._is_subscriber
                )
            cum = np.cumsum(self._verbosity[pool])
            author_idx[need_sub] = pool[
                np.minimum(
                    cum.searchsorted(u * cum[-1], side="right"),
                    len(pool) - 1,
                )
            ]
        topic_idx = np.where(
            (topic_idx == _EXPERIENCE) & ~first_hand, _QUESTION, topic_idx
        )

        # 5. Sentiment targets (record formulas, masked by topic).
        month = month_of(day)
        sat = (
            gen._satisfaction[month]
            if month in gen._satisfaction.months() else 0.5
        )
        if np.isnan(sat):
            sat = 0.5
        opt = self._optimism[author_idx]
        noise = rng.normal(0.0, 0.22, n)
        community = 1.6 * (float(sat) - 0.5)
        sentiment = (community + 0.35 * opt + noise) * (
            1.0 + 0.6 * self._extremity[author_idx]
        )
        qs = (topic_idx == _QUESTION) | (topic_idx == _SETUP)
        sentiment = np.where(qs, 0.05 + 0.105 * opt + 0.5 * noise, sentiment)
        sentiment = np.where(
            topic_idx == _ROAMING, 0.55 + 0.35 * opt + noise, sentiment
        )
        strongest = _strongest_event(day, events)
        event_base = strongest.sentiment if strongest is not None else 0.0
        event_shift = np.where(
            self._waiting[author_idx]
            & (strongest is not None and strongest.key == "delivery_delay_email"),
            event_base - 0.25,
            event_base,
        )
        sentiment = np.where(
            topic_idx == _EVENT, event_shift + 0.35 * opt + 0.6 * noise,
            sentiment,
        )
        out_mask = topic_idx == _OUTAGE
        severity = max((o.severity for o in outages_today), default=0.05)
        outage_base = -0.45 - 0.5 * min(1.0, severity * 1.2)
        sentiment = np.where(
            out_mask, outage_base + 0.15 * opt + 0.5 * noise, sentiment
        )
        sentiment = np.minimum(1.0, np.maximum(-1.0, sentiment))

        # 6. The day's speed tests (shared draws, sentiment overwrite).
        speed_mask = topic_idx == _SPEED
        speed_rows = np.flatnonzero(speed_mask)
        k_speed = len(speed_rows)
        dl_col = ["80"] * n
        ul_col = ["12"] * n
        lat_col = ["40"] * n
        provider_col = ["Speedtest"] * n
        if k_speed:
            median = (
                gen._speeds[month] if month in gen._speeds.months() else 60.0
            )
            dl = np.minimum(
                350.0,
                np.maximum(
                    1.0,
                    median * np.exp(rng.normal(0.0, _SPREAD_SIGMA, k_speed)),
                ),
            )
            ul = np.maximum(0.5, dl * rng.uniform(0.08, 0.2, k_speed))
            lat = np.round(
                np.minimum(
                    150.0,
                    np.maximum(
                        18.0,
                        np.exp(
                            np.log(38.0)
                            + 0.3 * rng.standard_normal(k_speed)
                        ),
                    ),
                )
            ).astype(np.int64)
            provider = np.minimum(
                self._provider_cdf.searchsorted(
                    rng.random(k_speed), side="right"
                ),
                len(self._provider_names) - 1,
            )
            dl_r = np.round(dl, 1)
            ul_r = np.round(ul, 1)
            share = np.minimum(
                1.0,
                np.maximum(
                    -1.0,
                    3.0 * (float(sat) - 0.52) + 0.55 * np.log(dl_r / median),
                ),
            )
            sentiment[speed_rows] = np.minimum(
                1.0,
                np.maximum(
                    -1.0,
                    share
                    + 0.25 * opt[speed_rows]
                    + rng.normal(0.0, 0.28, k_speed),
                ),
            )
            for j, row in enumerate(speed_rows.tolist()):
                dl_col[row] = str(float(dl_r[j]))
                ul_col[row] = str(float(ul_r[j]))
                lat_col[row] = str(int(lat[j]))
                provider_col[row] = self._provider_names[int(provider[j])]

        # 7. Popularity (lognormal via bulk standard normals).
        heat = 1.0 + 0.8 * np.abs(sentiment) + 0.25 * (multiplier - 1.0)
        upvotes = np.floor(
            np.exp(
                np.log(cfg.upvotes_per_post * heat)
                - 0.5
                + rng.standard_normal(n)
            )
        ).astype(np.int64)
        comments = np.floor(
            np.exp(
                np.log(cfg.comments_per_post * heat)
                - 0.6
                + 1.1 * rng.standard_normal(n)
            )
        ).astype(np.int64)

        # 8. Outage-confirmation floods raise comment counts (the
        # me-too texts themselves are a record-path-only detail).
        k_outage = int(out_mask.sum())
        if outages_today and k_outage:
            worst = max(outages_today, key=lambda o: o.severity)
            expected = worst.severity * worst.duration_h**2.0 * 1.2
            comments[out_mask] = np.maximum(
                comments[out_mask], rng.poisson(expected, k_outage)
            )

        # 9. Text: template picks, vocabulary, slot indices, then a
        # render pass over precompiled parts.
        band_idx = (
            (sentiment > -0.45).astype(np.int64)
            + (sentiment > -0.15)
            + (sentiment >= 0.15)
            + (sentiment >= 0.45)
        )
        template_u = rng.random(n)
        vocab_gate = rng.random(n)
        vocab_pick = rng.random(n)
        slot_cols: Dict[str, List[str]] = {}
        for name, vocab in _SLOT_VOCAB:
            idx = rng.integers(0, len(vocab), n)
            slot_cols[name] = [vocab[i] for i in idx.tolist()]

        vocabulary = (
            strongest.vocabulary
            if strongest is not None else ()
        )
        vocab_col = ["update"] * n
        if vocabulary:
            uses_vocab = (topic_idx == _EVENT) | (topic_idx == _ROAMING)
            for row in np.flatnonzero(uses_vocab).tolist():
                if vocab_gate[row] < 0.6:
                    vocab_col[row] = str(vocabulary[0])
                else:
                    vocab_col[row] = str(
                        vocabulary[int(vocab_pick[row] * len(vocabulary))]
                    )
        slot_cols["vocab"] = vocab_col
        slot_cols["country"] = [
            self._countries[a] for a in author_idx.tolist()
        ]
        slot_cols["dl"] = dl_col
        slot_cols["ul"] = ul_col
        slot_cols["lat"] = lat_col
        slot_cols["provider"] = provider_col

        full_text: List[str] = []
        topics = topic_idx.tolist()
        bands = band_idx.tolist()
        t_u = template_u.tolist()
        for i in range(n):
            options = self._templates[topics[i]][bands[i]]
            title_parts, body_parts = options[int(t_u[i] * len(options))]
            title = _render_cols(title_parts, slot_cols, i)
            body = _render_cols(body_parts, slot_cols, i)
            full_text.append(f"{title}. {body}")

        # 10. Created times.
        hours = rng.integers(0, 24, n).tolist()
        minutes = rng.integers(0, 60, n).tolist()
        created = [
            dt.datetime(day.year, day.month, day.day, h, m)
            for h, m in zip(hours, minutes)
        ]

        return {
            "post_id": [f"t3_{day:%Y%m%d}-{i:05d}" for i in range(1, n + 1)],
            "author": [self._handles[a] for a in author_idx.tolist()],
            "topic": [_TOPIC_NAMES[t] for t in topics],
            "full_text": full_text,
            "created": created,
            "month": [month] * n,
            "day_index": np.full(n, day_off, dtype=np.int64),
            "popularity": (upvotes + comments).astype(float),
            "speed_mask": speed_mask,
        }


def _sorted_by_created(cols: CorpusColumns) -> CorpusColumns:
    """Reorder a merged block into corpus order (stable by ``created``).

    The record path sorts posts by timestamp with Python's stable sort;
    same-minute ties keep day-generation order, which is exactly what a
    stable argsort over minute offsets reproduces.
    """
    n = len(cols)
    minutes = cols.day_index * 1440 + np.fromiter(
        ((c.hour * 60 + c.minute) for c in cols.created),
        dtype=np.int64,
        count=n,
    )
    order = np.argsort(minutes, kind="stable")
    if np.array_equal(order, np.arange(n)):
        return cols
    inverse = np.empty_like(order)
    inverse[order] = np.arange(n)
    picks = order.tolist()
    return CorpusColumns(
        span_start=cols.span_start,
        span_end=cols.span_end,
        post_id=[cols.post_id[i] for i in picks],
        author=[cols.author[i] for i in picks],
        topic=[cols.topic[i] for i in picks],
        full_text=[cols.full_text[i] for i in picks],
        created=[cols.created[i] for i in picks],
        day_index=cols.day_index[order],
        month=[cols.month[i] for i in picks],
        popularity=cols.popularity[order],
        speed_indices=np.sort(inverse[cols.speed_indices]),
        posts=None,
    )


def generate_corpus_columns(
    config: CorpusConfig = CorpusConfig(),
    cache: Optional["ArtifactCache"] = None,
    generator: Optional[CorpusGenerator] = None,
) -> CorpusColumns:
    """Convenience wrapper: config → columns via the block engine."""
    engine = VectorizedCorpusEngine(config, generator=generator)
    return engine.generate_columns(cache=cache)

"""Deterministic random-number utilities.

All stochastic components of the library draw from ``numpy.random.Generator``
instances derived from a single root seed, so every dataset, corpus and
simulation in this repository is exactly reproducible.  Components that need
independent streams derive them with :func:`derive` using stable string keys
— adding a new component never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20231128  # HotNets '23 opening day.


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create a root generator from an integer seed."""
    return np.random.default_rng(seed)


def derive(seed: int, *keys: str) -> np.random.Generator:
    """Derive an independent generator from a root seed and string keys.

    The keys are hashed (SHA-256) together with the seed, so streams for
    distinct keys are statistically independent and stable across runs and
    platforms.

    >>> a = derive(1, "telemetry")
    >>> b = derive(1, "telemetry")
    >>> float(a.random()) == float(b.random())
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("ascii"))
    for key in keys:
        digest.update(b"\x00")
        digest.update(key.encode("utf-8"))
    child_seed = int.from_bytes(digest.digest()[:8], "big")
    return np.random.default_rng(child_seed)


def spawn_child_seed(seed: int, *keys: str) -> int:
    """Return a deterministic integer child seed (for nested components)."""
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("ascii"))
    for key in keys:
        digest.update(b"\x00")
        digest.update(key.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")

"""Study-report generation: the analyses as a shareable document.

Turns a call dataset and/or a social corpus into a plain-text study
report covering the same ground as the paper's §3 and §4 — headline
numbers, per-figure sections, and the USaaS digest.  Used by the CLI
(``--report``) and the examples; also a convenient single entry point
for users who just want "run everything and show me".
"""

from __future__ import annotations

import datetime as dt
from typing import List, Optional

import numpy as np

from repro.errors import AnalysisError
from repro.io.tables import format_table


def _section(title: str) -> List[str]:
    return ["", title, "=" * len(title), ""]


def teams_report(dataset, min_bin_count: int = 8) -> str:
    """The §3 study over a call dataset, as text.

    Args:
        dataset: a :class:`~repro.telemetry.store.CallDataset`.
        min_bin_count: sparse-bin threshold for the curves.
    """
    from repro.engagement import CohortFilter, fig1_curves, mos_by_engagement
    from repro.engagement.compound import compound_presence_grid

    if len(dataset) == 0:
        raise AnalysisError("empty dataset")
    lines: List[str] = []
    lines += _section("Implicit user signals (paper §3)")
    cohort = CohortFilter().apply(dataset)
    pool = list(cohort.participants())
    lines.append(
        f"{len(dataset)} calls / {dataset.n_participants} sessions; "
        f"cohort filter keeps {len(cohort)} calls / {len(pool)} sessions."
    )

    lines += _section("Engagement vs network conditions (Fig. 1)")
    result = fig1_curves(pool, min_bin_count=min_bin_count)
    rows = []
    for metric in ("latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps"):
        row = [metric]
        for engagement in ("presence_pct", "cam_on_pct", "mic_on_pct"):
            try:
                row.append(result.relative_drop_pct(metric, engagement))
            except AnalysisError:
                row.append(float("nan"))
        rows.append(row)
    lines.append(format_table(
        ["condition", "presence drop %", "cam drop %", "mic drop %"], rows
    ))

    lines += _section("Compounding latency x loss (Fig. 2)")
    try:
        grid = compound_presence_grid(list(dataset.participants()))
        lines.append(
            f"Presence dips up to {grid.max_dip_pct():.0f}% in the worst "
            f"(latency, loss) cell relative to the best."
        )
    except AnalysisError as exc:
        lines.append(f"grid unavailable: {exc}")

    lines += _section("Engagement vs explicit MOS (Fig. 4)")
    try:
        mos = mos_by_engagement(dataset.participants())
        lines.append(format_table(
            ["engagement metric", "spearman r"],
            sorted(mos.correlations.items(), key=lambda kv: -kv[1]),
        ))
        lines.append(f"strongest correlate: {mos.strongest_metric()} "
                     f"over {mos.n_rated} rated sessions")
    except AnalysisError as exc:
        lines.append(f"MOS analysis unavailable: {exc}")
    return "\n".join(lines).strip() + "\n"


def starlink_report(corpus, n_peaks: int = 3) -> str:
    """The §4 study over a social corpus, as text."""
    from repro.analysis import (
        annotate_peak,
        outage_keyword_series,
        pos_vs_speed,
        sentiment_timeline,
        track_speeds,
    )
    from repro.social import EventCalendar, build_news_index

    if len(corpus) == 0:
        raise AnalysisError("empty corpus")
    lines: List[str] = []
    lines += _section("Explicit user signals (paper §4)")
    stats = corpus.weekly_stats()
    lines.append(
        f"{len(corpus)} posts; {stats['posts_per_week']:.0f} posts, "
        f"{stats['upvotes_per_week']:.0f} upvotes, "
        f"{stats['comments_per_week']:.0f} comments per week."
    )

    timeline = sentiment_timeline(corpus)
    index = build_news_index(EventCalendar())
    lines += _section(f"Top-{n_peaks} sentiment peaks (Fig. 5a)")
    rows = []
    for day, value in timeline.top_peaks(n_peaks):
        annotation = annotate_peak(corpus, index, day)
        rows.append([
            str(day), int(value), timeline.peak_polarity(day),
            annotation.headline or "(no news found)",
        ])
    lines.append(format_table(
        ["day", "strong posts", "polarity", "news"], rows
    ))

    lines += _section("Outage-keyword monitor (Fig. 6)")
    outages = outage_keyword_series(corpus, scores=timeline.scores)
    rows = [[str(d), int(v)] for d, v in outages.top_spike_days(3)]
    lines.append(format_table(["day", "keyword occurrences"], rows))

    shares = corpus.speed_shares()
    if shares:
        lines += _section("OCR'd downlink speeds (Fig. 7)")
        track = track_speeds(corpus)
        lines.append(
            f"{track.n_extracted}/{track.n_shared} screenshots extracted; "
            f"subsample deviation "
            f"{100 * track.max_subsample_deviation():.1f}%."
        )
        try:
            fulcrum = pos_vs_speed(corpus, track.median,
                                   scores=timeline.scores)
            lines.append(
                f"corr(Pos, speed) = {fulcrum.correlation():+.2f}"
            )
        except AnalysisError as exc:
            lines.append(f"fulcrum unavailable: {exc}")
    return "\n".join(lines).strip() + "\n"


def full_report(
    dataset=None,
    corpus=None,
    network: str = "starlink",
    service: Optional[str] = "teams",
) -> str:
    """§3 + §4 + the §5 USaaS digest, in one document."""
    if dataset is None and corpus is None:
        raise AnalysisError("need a dataset, a corpus, or both")
    parts: List[str] = [
        "USER-SIGNAL STUDY REPORT",
        f"generated {dt.date.today().isoformat()} — repro of "
        "'Don't Forget the User' (HotNets '23)",
    ]
    if dataset is not None:
        parts.append(teams_report(dataset))
    if corpus is not None:
        parts.append(starlink_report(corpus))
    if dataset is not None or corpus is not None:
        from repro.core.usaas import (
            UsaasQuery,
            UsaasService,
            social_signals,
            telemetry_signals,
        )

        service_obj = UsaasService()
        if dataset is not None:
            service_obj.register_source(
                "telemetry",
                lambda: telemetry_signals(dataset, network=network,
                                          service=service or "teams"),
            )
        if corpus is not None:
            service_obj.register_source(
                "social", lambda: social_signals(corpus, network=network)
            )
        parts += _section("USaaS digest (paper §5)")
        report = service_obj.answer(
            UsaasQuery(network=network, service=service)
        )
        parts.append(report.summary)
    return "\n".join(parts).strip() + "\n"

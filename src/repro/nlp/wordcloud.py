"""Word clouds: term frequencies over a set of texts.

§4.1 uses NLTK to build a word cloud per day and takes the *top three
unigrams* as search keywords for news annotation; the third most common
word on 22 Apr '22 was "outage".  :func:`build_wordcloud` reproduces
that: stopword-filtered unigram counts with an optional bigram layer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import ExtractionError
from repro.nlp.stopwords import STOPWORDS
from repro.nlp.tokenize import bigrams, words


@dataclass(frozen=True)
class WordCloud:
    """Frequency tables for a collection of texts."""

    unigram_counts: Dict[str, int]
    bigram_counts: Dict[str, int]
    n_texts: int

    def top_unigrams(self, k: int = 3) -> List[Tuple[str, int]]:
        """The k most frequent unigrams — the paper's news-search keys."""
        if k < 1:
            raise ExtractionError("k must be >= 1")
        return Counter(self.unigram_counts).most_common(k)

    def top_bigrams(self, k: int = 3) -> List[Tuple[str, int]]:
        if k < 1:
            raise ExtractionError("k must be >= 1")
        return Counter(self.bigram_counts).most_common(k)

    def rank_of(self, term: str) -> int:
        """1-based frequency rank of a unigram; raises if absent.

        Used to check claims like "the third most common word ... is
        outage".
        """
        ordered = Counter(self.unigram_counts).most_common()
        for rank, (word, _) in enumerate(ordered, start=1):
            if word == term.lower():
                return rank
        raise ExtractionError(f"term {term!r} not in cloud")

    def contains(self, term: str) -> bool:
        return term.lower() in self.unigram_counts


def build_wordcloud(
    texts: Iterable[str],
    min_word_length: int = 3,
    extra_stopwords: Iterable[str] = (),
) -> WordCloud:
    """Count stopword-filtered unigrams and bigrams across texts."""
    stop = set(STOPWORDS)
    stop.update(w.lower() for w in extra_stopwords)
    unigram_counts: Counter = Counter()
    bigram_counts: Counter = Counter()
    n_texts = 0
    for text in texts:
        n_texts += 1
        tokens = [
            w for w in words(text)
            if len(w) >= min_word_length and w not in stop
        ]
        unigram_counts.update(tokens)
        bigram_counts.update(bigrams(tokens))
    return WordCloud(
        unigram_counts=dict(unigram_counts),
        bigram_counts=dict(bigram_counts),
        n_texts=n_texts,
    )

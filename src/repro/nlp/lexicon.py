"""Sentiment lexicon: word → valence in [-1, 1].

A compact, hand-curated lexicon in the VADER tradition, weighted toward
the vocabulary of broadband/ISP discussion: service quality, speed,
reliability, support, pricing, and the emotional register of Reddit.
Values near ±1 are unambiguous ("fantastic", "garbage"); mild words sit
near ±0.3.
"""

from __future__ import annotations

from typing import Dict

POSITIVE: Dict[str, float] = {
    # general praise
    "good": 0.5, "great": 0.7, "awesome": 0.9, "amazing": 0.9,
    "fantastic": 0.9, "excellent": 0.85, "wonderful": 0.8, "perfect": 0.9,
    "love": 0.8, "loving": 0.8, "loved": 0.8, "best": 0.8, "better": 0.45,
    "nice": 0.5, "happy": 0.65, "glad": 0.55, "excited": 0.7,
    "impressed": 0.7, "impressive": 0.7, "incredible": 0.85,
    "solid": 0.5, "smooth": 0.5, "stable": 0.55, "reliable": 0.6,
    "flawless": 0.85, "thrilled": 0.85, "stoked": 0.8, "pleased": 0.6,
    "satisfied": 0.6, "win": 0.5, "winner": 0.6, "wow": 0.6,
    # service / network positives
    "fast": 0.6, "faster": 0.55, "blazing": 0.7, "speedy": 0.6,
    "consistent": 0.5, "improved": 0.55, "improvement": 0.55,
    "improving": 0.5, "upgrade": 0.4, "upgraded": 0.45,
    "works": 0.4, "working": 0.35, "worked": 0.3,
    "recommend": 0.6, "recommended": 0.6, "worth": 0.45,
    "gamechanger": 0.85, "lifesaver": 0.85, "finally": 0.3,
    "usable": 0.3, "playable": 0.4, "uninterrupted": 0.55,
    "perfectly": 0.8, "decent": 0.35, "fine": 0.3,
    "beautifully": 0.7, "superb": 0.85, "rocks": 0.7,
    # launch / expansion positives
    "launched": 0.3, "available": 0.35, "enabled": 0.4, "expanded": 0.4,
    "preorder": 0.25, "shipped": 0.45, "arrived": 0.5, "delivered": 0.45,
    # more service positives
    "snappy": 0.55, "responsive": 0.5, "seamless": 0.6, "crisp": 0.45,
    "rocksolid": 0.7, "dependable": 0.6, "painless": 0.5, "grateful": 0.6,
    "thankful": 0.55, "delighted": 0.8, "superior": 0.6, "blessing": 0.7,
    # emoji (kept as single tokens by the tokenizer)
    "🚀": 0.6, "🎉": 0.7, "❤": 0.7, "👍": 0.5, "😍": 0.8, "🙌": 0.6,
    "😊": 0.5, "🔥": 0.5, "✨": 0.4,
}

NEGATIVE: Dict[str, float] = {
    # general negatives
    "bad": -0.55, "terrible": -0.85, "horrible": -0.85, "awful": -0.85,
    "worst": -0.9, "worse": -0.5, "poor": -0.5, "garbage": -0.85,
    "trash": -0.8, "useless": -0.75, "unusable": -0.8, "pathetic": -0.8,
    "hate": -0.8, "angry": -0.7, "furious": -0.85, "annoyed": -0.55,
    "annoying": -0.55, "frustrated": -0.7, "frustrating": -0.7,
    "disappointed": -0.7, "disappointing": -0.65, "disappointment": -0.7,
    "unhappy": -0.65, "upset": -0.6, "sad": -0.5, "regret": -0.65,
    "ridiculous": -0.6, "unacceptable": -0.8, "joke": -0.5, "scam": -0.85,
    "fail": -0.6, "failed": -0.6, "failing": -0.6, "failure": -0.65,
    "broken": -0.65, "broke": -0.55, "problem": -0.45, "problems": -0.5,
    "issue": -0.35, "issues": -0.4, "complaint": -0.5, "complaints": -0.5,
    # network negatives
    "slow": -0.55, "slower": -0.5, "sluggish": -0.55, "lag": -0.5,
    "laggy": -0.6, "latency": -0.2, "buffering": -0.5, "choppy": -0.55,
    "unstable": -0.6, "unreliable": -0.65, "inconsistent": -0.5,
    "outage": -0.7, "outages": -0.7, "down": -0.45, "offline": -0.55,
    "disconnect": -0.55, "disconnects": -0.6, "disconnected": -0.55,
    "disconnecting": -0.6, "disconnection": -0.6, "disconnections": -0.6,
    "drop": -0.35, "drops": -0.45, "dropped": -0.45, "dropping": -0.5,
    "dropouts": -0.6, "dead": -0.6, "interruption": -0.55,
    "interruptions": -0.6, "interrupted": -0.5, "degraded": -0.55,
    "throttled": -0.6, "congested": -0.55, "congestion": -0.5,
    "obstruction": -0.4, "obstructions": -0.4, "timeout": -0.5,
    "timeouts": -0.55, "unreachable": -0.6, "nothing": -0.3,
    # delivery / business negatives
    "delay": -0.5, "delays": -0.5, "delayed": -0.55, "pushback": -0.4,
    "waiting": -0.3, "expensive": -0.45, "overpriced": -0.6,
    "refund": -0.45, "cancel": -0.5, "cancelled": -0.5, "cancelling": -0.55,
    # emoji
    "😡": -0.8, "😤": -0.6, "😞": -0.55, "😢": -0.55, "💀": -0.5,
    "👎": -0.5, "🤬": -0.9, "😠": -0.7,
}

INTENSIFIERS: Dict[str, float] = {
    "very": 0.3, "really": 0.3, "extremely": 0.5, "incredibly": 0.5,
    "absolutely": 0.45, "totally": 0.35, "completely": 0.4, "super": 0.35,
    "so": 0.25, "insanely": 0.5, "ridiculously": 0.4, "constantly": 0.35,
    "always": 0.25, "utterly": 0.45,
    # dampeners (negative boost)
    "slightly": -0.35, "somewhat": -0.3, "kinda": -0.3, "kind": -0.25,
    "barely": -0.35, "mildly": -0.35, "occasionally": -0.25,
}

NEGATORS = frozenset({
    "not", "no", "never", "none", "neither", "nor", "cannot",
    "isn't", "wasn't", "aren't", "weren't", "don't", "doesn't", "didn't",
    "won't", "wouldn't", "can't", "couldn't", "shouldn't", "ain't",
    "without", "hardly",
})


def _build_valences() -> Dict[str, float]:
    merged = dict(POSITIVE)
    overlap = set(merged) & set(NEGATIVE)
    if overlap:
        raise ValueError(f"lexicon words in both polarities: {sorted(overlap)}")
    merged.update(NEGATIVE)
    return merged


VALENCES: Dict[str, float] = _build_valences()

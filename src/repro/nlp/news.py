"""Simulated news index — the paper's "search online for the keywords".

§4.1 annotates sentiment peaks by searching the web for the top word-cloud
unigrams (plus "Starlink") around the peak date.  Offline we search a
deterministic index instead.  The crucial behaviour to preserve is the
*negative* result: the 22 Apr '22 outage has no article, so the search
returns nothing and the pipeline must report the peak as unexplained by
the press — exactly what pushed the authors toward the Fig. 6 analysis.

The index itself is built by :mod:`repro.social.events` from the event
calendar; this module provides the article type and the search engine.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import AnalysisError
from repro.nlp.tokenize import words


@dataclass(frozen=True)
class NewsArticle:
    """One published article."""

    date: dt.date
    headline: str
    body: str
    source: str = "wire"

    def terms(self) -> set:
        return set(words(self.headline)) | set(words(self.body))


class NewsIndex:
    """Keyword + date-window search over a fixed article collection."""

    def __init__(self, articles: Iterable[NewsArticle] = ()) -> None:
        self._articles: List[NewsArticle] = sorted(
            articles, key=lambda a: a.date
        )

    def __len__(self) -> int:
        return len(self._articles)

    def add(self, article: NewsArticle) -> None:
        self._articles.append(article)
        self._articles.sort(key=lambda a: a.date)

    def all_articles(self) -> List[NewsArticle]:
        return list(self._articles)

    def search(
        self,
        keywords: Sequence[str],
        date: dt.date,
        window_days: int = 3,
        require_all: bool = False,
    ) -> List[NewsArticle]:
        """Articles within ±window_days matching the keywords.

        ``require_all=False`` (the default) matches any keyword, which is
        how a web search behaves; the query the paper uses appends
        'Starlink', so callers typically include it.
        """
        if not keywords:
            raise AnalysisError("at least one keyword required")
        if window_days < 0:
            raise AnalysisError("window_days must be >= 0")
        keys = {k.lower() for k in keywords}
        window = dt.timedelta(days=window_days)
        hits = []
        for article in self._articles:
            if abs((article.date - date).days) > window.days:
                continue
            terms = article.terms()
            matched = keys & terms
            if (require_all and matched == keys) or (not require_all and matched):
                hits.append(article)
        return hits

"""Emerging-topic mining over popularity-weighted discussions.

§4.1: *"we were also able to detect Redditors discussing the roaming
feature of Starlink almost ~2 weeks before Elon Musk announced it on
Twitter ... using a systematic pipeline which mines popular discussions
(using upvotes and comment numbers)."*

:class:`TrendMiner` implements that pipeline over generic
``(date, text, popularity)`` records: terms are counted with popularity
weights in a sliding window, compared against their long-run baseline,
and flagged as *emerging* the first day their windowed weight exceeds
``ratio_threshold`` times the baseline (with an absolute floor so that a
single random post can't trigger).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.nlp.stopwords import STOPWORDS
from repro.nlp.tokenize import bigrams, words

Record = Tuple[dt.date, str, float]  # (day, text, popularity weight)


@dataclass(frozen=True)
class EmergingTopic:
    """A term that broke out of its baseline.

    Attributes:
        term: unigram or bigram.
        first_detected: first day the breakout criterion held.
        window_weight: popularity-weighted occurrences in the detection
            window.
        baseline_weight: long-run weighted occurrences per window of the
            same length before the breakout.
        ratio: window / baseline (capped for brand-new terms).
    """

    term: str
    first_detected: dt.date
    window_weight: float
    baseline_weight: float
    ratio: float


class TrendMiner:
    """Sliding-window breakout detector over weighted term counts."""

    def __init__(
        self,
        window_days: int = 7,
        ratio_threshold: float = 4.0,
        min_window_weight: float = 30.0,
        min_word_length: int = 4,
        include_bigrams: bool = True,
    ) -> None:
        if window_days < 1:
            raise AnalysisError("window_days must be >= 1")
        if ratio_threshold <= 1:
            raise AnalysisError("ratio_threshold must be > 1")
        if min_window_weight <= 0:
            raise AnalysisError("min_window_weight must be positive")
        self._window_days = window_days
        self._ratio_threshold = ratio_threshold
        self._min_window_weight = min_window_weight
        self._min_word_length = min_word_length
        self._include_bigrams = include_bigrams

    def _terms_of(self, text: str) -> List[str]:
        tokens = [
            w for w in words(text)
            if len(w) >= self._min_word_length and w not in STOPWORDS
        ]
        terms = list(tokens)
        if self._include_bigrams:
            terms.extend(bigrams(tokens))
        return terms

    def mine(
        self,
        records: Iterable[Record],
        terms_of_interest: Optional[Sequence[str]] = None,
    ) -> List[EmergingTopic]:
        """Detect breakouts across the record stream.

        Args:
            records: (date, text, popularity) tuples; popularity is
                typically ``upvotes + comments``.
            terms_of_interest: restrict detection to these terms (faster
                and less noisy when validating a known topic); None scans
                everything.
        """
        pool = sorted(records, key=lambda r: r[0])
        if not pool:
            raise AnalysisError("no records to mine")
        interest = (
            {t.lower() for t in terms_of_interest} if terms_of_interest else None
        )

        # daily_weight[term][date] = popularity-weighted occurrences
        daily_weight: Dict[str, Dict[dt.date, float]] = {}
        for day, text, weight in pool:
            if weight < 0:
                raise AnalysisError(f"negative popularity weight on {day}")
            for term in self._terms_of(text):
                if interest is not None and term not in interest:
                    continue
                per_day = daily_weight.setdefault(term, {})
                per_day[day] = per_day.get(day, 0.0) + weight

        first_day, last_day = pool[0][0], pool[-1][0]
        topics: List[EmergingTopic] = []
        window = dt.timedelta(days=self._window_days - 1)
        for term, per_day in daily_weight.items():
            detected = self._first_breakout(per_day, first_day, last_day, window)
            if detected is not None:
                topics.append(detected._replace_term(term))
        return sorted(topics, key=lambda t: (t.first_detected, -t.ratio))

    def _first_breakout(
        self,
        per_day: Dict[dt.date, float],
        first_day: dt.date,
        last_day: dt.date,
        window: dt.timedelta,
    ) -> Optional["_Breakout"]:
        day = first_day + window
        one = dt.timedelta(days=1)
        while day <= last_day:
            window_start = day - window
            window_weight = sum(
                w for d, w in per_day.items() if window_start <= d <= day
            )
            history_days = (window_start - first_day).days
            history_weight = sum(
                w for d, w in per_day.items() if d < window_start
            )
            if history_days >= self._window_days:
                n_windows = history_days / self._window_days
                baseline = history_weight / n_windows
            else:
                baseline = 0.0
            ratio = (
                window_weight / baseline if baseline > 0
                else float(window_weight)
            )
            if (
                window_weight >= self._min_window_weight
                and ratio >= self._ratio_threshold
            ):
                return _Breakout(
                    first_detected=day,
                    window_weight=window_weight,
                    baseline_weight=baseline,
                    ratio=min(ratio, 1000.0),
                )
            day += one
        return None


@dataclass(frozen=True)
class _Breakout:
    first_detected: dt.date
    window_weight: float
    baseline_weight: float
    ratio: float

    def _replace_term(self, term: str) -> EmergingTopic:
        return EmergingTopic(
            term=term,
            first_detected=self.first_detected,
            window_weight=self.window_weight,
            baseline_weight=self.baseline_weight,
            ratio=self.ratio,
        )

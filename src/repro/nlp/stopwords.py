"""English stopword list for word-cloud construction.

A compact list in the spirit of NLTK's, extended with conversational
Reddit filler and with the domain words that appear in virtually every
r/Starlink post and would otherwise dominate every cloud (``starlink``
itself, ``internet``, ``service``).  Keeping domain words out of clouds is
what lets event-specific terms like *outage* or *roaming* surface.
"""

from __future__ import annotations

from typing import FrozenSet

_CORE = """
a about above after again against all am an and any are aren't as at be
because been before being below between both but by can can't cannot could
couldn't did didn't do does doesn't doing don't down during each few for
from further had hadn't has hasn't have haven't having he he'd he'll he's
her here here's hers herself him himself his how how's i i'd i'll i'm i've
if in into is isn't it it's its itself let's me more most mustn't my myself
no nor not of off on once only or other ought our ours ourselves out over
own same shan't she she'd she'll she's should shouldn't so some such than
that that's the their theirs them themselves then there there's these they
they'd they'll they're they've this those through to too under until up
very was wasn't we we'd we'll we're we've were weren't what what's when
when's where where's which while who who's whom why why's with won't would
wouldn't you you'd you'll you're you've your yours yourself yourselves
"""

_REDDIT_FILLER = """
just like get got really also still even one two will today yesterday
week month day time now anyone else thing things lol edit update post
thread guys folks hey yeah ok okay right know think thought see seen
say said going go went come came back new old much many bit lot pretty
"""

_DOMAIN = """
starlink internet service dish dishy spacex network connection isp
"""


def _build() -> FrozenSet[str]:
    items = set()
    for blob in (_CORE, _REDDIT_FILLER, _DOMAIN):
        items.update(blob.split())
    return frozenset(items)


STOPWORDS: FrozenSet[str] = _build()


def is_stopword(token: str) -> bool:
    """Case-insensitive stopword check."""
    return token.lower() in STOPWORDS

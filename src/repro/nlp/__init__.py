"""Offline text-analysis stack (the paper's Azure/NLTK substitute).

§4 of the paper runs Reddit posts through Azure Cognitive Services for
sentiment, NLTK for word clouds, a hand-built keyword dictionary for
outage detection, and web search for news annotation.  None of those are
available offline, so this package implements functional equivalents:

* :mod:`repro.nlp.tokenize` / :mod:`repro.nlp.stopwords` — text basics.
* :mod:`repro.nlp.sentiment` — a lexicon + valence-shifter scorer that
  emits the same contract as the cloud service: (positive, negative,
  neutral) scores summing to 1, with ``>= 0.7`` counting as *strong*.
* :mod:`repro.nlp.wordcloud` — term frequencies and top-k unigrams.
* :mod:`repro.nlp.keywords` — the outage dictionary and matcher (Fig. 6).
* :mod:`repro.nlp.trends` — the popularity-weighted emerging-topic miner
  that detected "roaming" two weeks before the CEO announcement.
* :mod:`repro.nlp.news` — a searchable simulated news index used to
  annotate sentiment peaks (Fig. 5a).
"""

from repro.nlp.keywords import OUTAGE_KEYWORDS, KeywordDictionary
from repro.nlp.news import NewsArticle, NewsIndex
from repro.nlp.sentiment import SentimentAnalyzer, SentimentScores
from repro.nlp.stopwords import STOPWORDS
from repro.nlp.tokenize import sentences, tokenize
from repro.nlp.trends import EmergingTopic, TrendMiner
from repro.nlp.wordcloud import WordCloud, build_wordcloud

__all__ = [
    "EmergingTopic",
    "KeywordDictionary",
    "NewsArticle",
    "NewsIndex",
    "OUTAGE_KEYWORDS",
    "STOPWORDS",
    "SentimentAnalyzer",
    "SentimentScores",
    "TrendMiner",
    "WordCloud",
    "build_wordcloud",
    "sentences",
    "tokenize",
]

"""Tokenisation for social-media text.

Handles the quirks that matter for sentiment scoring on Reddit posts:
contractions are kept together (``isn't``), emphasis is preserved for the
scorer (ALL-CAPS tokens keep their case), and URLs / user mentions are
dropped rather than polluting word clouds.
"""

from __future__ import annotations

import re
from typing import List

_URL_RE = re.compile(r"https?://\S+|www\.\S+")
_MENTION_RE = re.compile(r"/?u/[A-Za-z0-9_-]+|/?r/[A-Za-z0-9_]+")
# Words, numbers, punctuation bursts, and emoji (kept as single tokens —
# Reddit sentiment often lives in them).
_TOKEN_RE = re.compile(
    r"[A-Za-z]+(?:'[A-Za-z]+)?|\d+(?:\.\d+)?|[!?]+"
    r"|[\U0001F300-\U0001FAFF☀-➿]"
)
_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?])\s+")


def tokenize(text: str, lowercase: bool = False) -> List[str]:
    """Split text into word / number / punctuation-burst tokens.

    >>> tokenize("Starlink isn't working!!! 50 Mbps down")
    ["Starlink", "isn't", 'working', '!!!', '50', 'Mbps', 'down']
    """
    if not isinstance(text, str):
        raise TypeError(f"expected str, got {type(text).__name__}")
    cleaned = _URL_RE.sub(" ", text)
    cleaned = _MENTION_RE.sub(" ", cleaned)
    tokens = _TOKEN_RE.findall(cleaned)
    if lowercase:
        return [t.lower() for t in tokens]
    return tokens


def words(text: str) -> List[str]:
    """Lowercased alphabetic tokens only (word-cloud input)."""
    return [t.lower() for t in tokenize(text) if t[0].isalpha()]


def sentences(text: str) -> List[str]:
    """Naive sentence split on terminal punctuation."""
    if not isinstance(text, str):
        raise TypeError(f"expected str, got {type(text).__name__}")
    parts = _SENTENCE_SPLIT_RE.split(text.strip())
    return [p for p in (part.strip() for part in parts) if p]


def bigrams(tokens: List[str]) -> List[str]:
    """Adjacent token pairs joined by a space ("roaming enabled")."""
    return [f"{a} {b}" for a, b in zip(tokens, tokens[1:])]

"""Keyword dictionaries and matching — the Fig. 6 outage detector.

§4.1: *"we first built a dictionary (a manual tedious process at the
moment, scanning such posts and online articles on network outages) with
keywords related to outages and filtered the Reddit threads containing
them."*  ``OUTAGE_KEYWORDS`` is that dictionary; the matcher counts
keyword occurrences per text, supporting both unigrams and phrases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.errors import ExtractionError
from repro.nlp.tokenize import bigrams, words

OUTAGE_TERMS: Tuple[str, ...] = (
    "outage", "outages", "down", "offline", "dead",
    "disconnect", "disconnects", "disconnected", "disconnecting",
    "disconnection", "disconnections", "dropouts", "unreachable",
    "interruption", "interruptions", "blackout",
    "no service", "no signal", "no internet", "lost connection",
    "connection lost", "went down", "is down", "service down",
    "total outage", "global outage", "completely down", "kept dropping",
)


@dataclass(frozen=True)
class KeywordDictionary:
    """A set of unigram and phrase keywords with a matcher.

    Matching is case-insensitive and token-based: unigrams match single
    tokens, phrases match adjacent token pairs, so "breakdown" does not
    fire the "down" keyword.
    """

    name: str
    terms: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ExtractionError(f"dictionary {self.name!r} has no terms")
        for term in self.terms:
            n_tokens = len(term.split())
            if n_tokens not in (1, 2):
                raise ExtractionError(
                    f"dictionary {self.name!r}: term {term!r} must be a "
                    f"unigram or bigram"
                )

    @classmethod
    def from_terms(cls, name: str, terms: Iterable[str]) -> "KeywordDictionary":
        return cls(name=name, terms=frozenset(t.lower() for t in terms))

    @property
    def unigrams(self) -> FrozenSet[str]:
        return frozenset(t for t in self.terms if " " not in t)

    @property
    def phrases(self) -> FrozenSet[str]:
        return frozenset(t for t in self.terms if " " in t)

    def count_matches(self, text: str) -> int:
        """Total keyword occurrences in the text.

        Phrase matches consume their tokens: "total outage" counts once
        as a phrase, and "outage" is not additionally counted for the
        same position (otherwise every phrase hit would double-count).
        """
        tokens = words(text)
        consumed = [False] * len(tokens)
        count = 0
        phrase_set = self.phrases
        for i, pair in enumerate(bigrams(tokens)):
            if pair in phrase_set:
                count += 1
                consumed[i] = consumed[i + 1] = True
        unigram_set = self.unigrams
        for i, token in enumerate(tokens):
            if not consumed[i] and token in unigram_set:
                count += 1
        return count

    def matches(self, text: str) -> bool:
        return self.count_matches(text) > 0

    def matched_terms(self, text: str) -> Dict[str, int]:
        """Per-term occurrence counts (for reporting)."""
        tokens = words(text)
        out: Dict[str, int] = {}
        for pair in bigrams(tokens):
            if pair in self.phrases:
                out[pair] = out.get(pair, 0) + 1
        for token in tokens:
            if token in self.unigrams:
                out[token] = out.get(token, 0) + 1
        return out


OUTAGE_KEYWORDS = KeywordDictionary.from_terms("outage", OUTAGE_TERMS)

"""Lexicon-based sentiment scoring with valence shifters.

Output contract mirrors the cloud service the paper used: each text gets
``(positive, negative, neutral)`` scores that sum to 1, and the paper's
*strong* threshold (``>= 0.7``) applies to the positive/negative scores.

The scorer walks the token stream and, for every lexicon hit, applies:

* **negation** — a negator within the three preceding tokens flips and
  damps the valence ("not great" ≈ mildly negative);
* **intensification** — boosters within the two preceding tokens scale
  it ("extremely slow" < "slow");
* **emphasis** — ALL-CAPS lexicon words and trailing exclamation bursts
  amplify.

Scores are then normalised against the token count so that a single mild
word in a long neutral post stays neutral, while a short "this is
garbage!!" scores strongly negative.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import ExtractionError
from repro.nlp.lexicon import INTENSIFIERS, NEGATORS, VALENCES
from repro.nlp.tokenize import tokenize

STRONG_THRESHOLD = 0.7

_NEGATION_WINDOW = 2
_INTENSIFIER_WINDOW = 2
_NEGATION_DAMP = 0.65  # "not great" is weaker than "bad"
_CAPS_BOOST = 1.35
_EXCLAIM_BOOST = 0.18  # per '!' up to 3
_DOMINANCE_GAIN = 0.8  # amplification of an unambiguous polarity


@dataclass(frozen=True)
class SentimentScores:
    """(positive, negative, neutral) scores summing to 1."""

    positive: float
    negative: float
    neutral: float

    def __post_init__(self) -> None:
        total = self.positive + self.negative + self.neutral
        if not 0.999 <= total <= 1.001:
            raise ExtractionError(f"scores must sum to 1, got {total}")
        for name in ("positive", "negative", "neutral"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ExtractionError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_strong_positive(self) -> bool:
        return self.positive >= STRONG_THRESHOLD

    @property
    def is_strong_negative(self) -> bool:
        return self.negative >= STRONG_THRESHOLD

    @property
    def polarity(self) -> float:
        """Signed single-number summary in [-1, 1]."""
        return self.positive - self.negative


class SentimentAnalyzer:
    """Reusable scorer; scoring is stateless, the memo is bounded state."""

    def __init__(
        self, neutral_weight: float = 0.5, memo_cap: int = 4096
    ) -> None:
        """``neutral_weight`` scales how much plain text dilutes valence.

        Higher values make the analyzer more conservative (more texts
        classified neutral).  ``memo_cap`` bounds the batch-scoring
        memo (distinct texts retained, LRU eviction): an adversarial
        flood of unique texts — exactly what a spam brigade produces —
        can no longer grow the memo without bound.  The cap changes
        memory behaviour only; scores are byte-identical at any cap.
        """
        if neutral_weight <= 0:
            raise ExtractionError("neutral_weight must be positive")
        if memo_cap < 1:
            raise ExtractionError("memo_cap must be >= 1")
        self._neutral_weight = neutral_weight
        self._memo_cap = int(memo_cap)
        self._memo: "OrderedDict[str, SentimentScores]" = OrderedDict()

    @property
    def memo_cap(self) -> int:
        return self._memo_cap

    @property
    def memo_size(self) -> int:
        """Distinct texts currently memoised (always <= ``memo_cap``)."""
        return len(self._memo)

    def score(self, text: str) -> SentimentScores:
        """Score one piece of text."""
        tokens = tokenize(text)
        if not tokens:
            return SentimentScores(positive=0.0, negative=0.0, neutral=1.0)

        # Single normalisation pass: the window scans below index into
        # this list instead of re-lowercasing neighbours per lexicon hit.
        lowered = [t.lower() for t in tokens]

        pos_mass = 0.0
        neg_mass = 0.0
        word_count = 0
        n_hits = 0
        for i, token in enumerate(tokens):
            is_exclaim = token[0] in "!?"
            if not is_exclaim:
                word_count += 1
            valence = VALENCES.get(lowered[i])
            if valence is None:
                continue
            n_hits += 1

            # Intensifiers immediately before the hit.
            boost = 1.0
            for j in range(max(0, i - _INTENSIFIER_WINDOW), i):
                boost += INTENSIFIERS.get(lowered[j], 0.0)
            boost = max(0.3, boost)

            # Negation within the window flips and damps.
            negated = any(
                lowered[j] in NEGATORS
                for j in range(max(0, i - _NEGATION_WINDOW), i)
            )

            # Emphasis: ALL-CAPS hit, trailing exclamations.
            if token.isupper() and len(token) > 2:
                boost *= _CAPS_BOOST
            if i + 1 < len(tokens) and tokens[i + 1][0] == "!":
                boost *= 1.0 + _EXCLAIM_BOOST * min(3, len(tokens[i + 1]))

            signed = valence * boost
            if negated:
                signed = -signed * _NEGATION_DAMP
            if signed >= 0:
                pos_mass += signed
            else:
                neg_mass += -signed

        # A text where one polarity clearly dominates across several hits
        # reads unambiguously no matter how long it is — amplify the
        # dominant mass so long rants still register as strong.
        if pos_mass + neg_mass > 0 and n_hits >= 2:
            dominance = abs(pos_mass - neg_mass) / (pos_mass + neg_mass)
            amplifier = 1.0 + _DOMINANCE_GAIN * dominance * min(n_hits, 6) / 3.0
            if pos_mass >= neg_mass:
                pos_mass *= amplifier
            else:
                neg_mass *= amplifier

        # Dilute by text length: valence mass competes with neutral mass.
        neutral_mass = self._neutral_weight * max(
            1.0, (word_count - n_hits) ** 0.5
        )
        total = pos_mass + neg_mass + neutral_mass
        return SentimentScores(
            positive=pos_mass / total,
            negative=neg_mass / total,
            neutral=neutral_mass / total,
        )

    def score_many(self, texts: Iterable[str]) -> List[SentimentScores]:
        """Score a batch of texts — the bulk entry point.

        Scoring is deterministic, so identical texts get identical
        scores; the batch path memoises on the text and scores each
        distinct string once.  Generated corpora are heavily templated
        (most posts share a text with an earlier one), which makes this
        much faster than per-text :meth:`score` calls while returning
        exactly the same scores.

        The memo lives on the analyzer (so repeated batches share it)
        and is LRU-bounded at ``memo_cap`` distinct texts — a cache
        miss past the cap evicts the least recently used entry and
        rescores on the next occurrence, changing timing, never values.
        """
        memo = self._memo
        cap = self._memo_cap
        score = self.score
        out: List[SentimentScores] = []
        for text in texts:
            scores = memo.get(text)
            if scores is None:
                scores = score(text)
                memo[text] = scores
                if len(memo) > cap:
                    memo.popitem(last=False)
            else:
                memo.move_to_end(text)
            out.append(scores)
        return out

    def score_columns(
        self, texts: Sequence[str]
    ) -> Tuple[List[SentimentScores], np.ndarray, np.ndarray, np.ndarray]:
        """Score a batch and return the scores as float64 columns too.

        Feeds the columnar corpus block
        (:class:`repro.perf.columnar.SentimentBlock`): the score objects
        plus ``(positive, negative, neutral)`` arrays carrying the exact
        same floats, scored once via :meth:`score_many`.
        """
        scores = self.score_many(texts)
        n = len(scores)
        positive = np.fromiter((s.positive for s in scores), dtype=float, count=n)
        negative = np.fromiter((s.negative for s in scores), dtype=float, count=n)
        neutral = np.fromiter((s.neutral for s in scores), dtype=float, count=n)
        return scores, positive, negative, neutral

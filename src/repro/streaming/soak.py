"""The deterministic stream soak: chaos in, closed ledger out.

Mirrors the serving-side ``cluster_soak``: a seeded synthetic stream is
mangled by :meth:`~repro.resilience.faults.FaultPlan.stream_faults`
(delay / reorder / skew / gap-burst / duplication), optionally crashed
and resumed mid-flight, and driven through a :class:`StreamPipeline` on
a :class:`~repro.resilience.clock.ManualClock` — simulated time, zero
wall-clock cost.  The report asserts three things:

* the **exactly-once ledger closes**: every delivery is aggregated,
  late or deduped — no silent loss, no double counting;
* the run is **byte-identical per seed**: same counters, same emission
  digest, every rerun — including reruns that crash and resume;
* the detector was not **blind**: each injected degradation must be
  answered by an experience change point within its scoring horizon.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro import rng as rng_mod
from repro.errors import ConfigError
from repro.resilience.clock import ManualClock
from repro.resilience.faults import FaultPlan, StreamFaultSpec
from repro.streaming.detector import ChangePoint
from repro.streaming.journal import StreamJournal
from repro.streaming.pipeline import (
    StreamConfig,
    StreamPipeline,
    StreamResult,
)
from repro.streaming.sources import (
    DegradationSpec,
    default_degradations,
    synthetic_stream,
)

PathLike = Union[str, Path]

#: The default arrival chaos a soak applies when the caller gives none.
DEFAULT_STREAM_FAULTS = StreamFaultSpec(
    base_delay_s=2.0,
    reorder_rate=0.25,
    reorder_extra_s=20.0,
    duplicate_rate=0.05,
    duplicate_delay_s=10.0,
)


@dataclass(frozen=True)
class StreamSoakReport:
    """Everything a rerun must reproduce byte-for-byte."""

    seed: int
    duration_s: float
    n_records: int
    n_deliveries: int
    counters: Dict[str, int]
    digest: str
    change_points: Tuple[ChangePoint, ...]
    degradations: Tuple[DegradationSpec, ...]
    detected: int
    crashes: int
    #: fault kind -> terminal bucket -> count: where each injected
    #: delivery kind (duplicate / reorder / skew / gap) actually landed
    #: (aggregated / deduped / late_* / quarantined).
    fault_outcomes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def accounted(self) -> int:
        c = self.counters
        return (
            c["aggregated"] + c["late_dropped"]
            + c["late_side"] + c["deduped"]
            + c.get("quarantined", 0)
        )

    @property
    def ledger_closed(self) -> bool:
        return self.counters["emitted"] == self.accounted

    @property
    def blind_rate(self) -> float:
        """Fraction of injected degradations the detector never saw."""
        if not self.degradations:
            return 0.0
        return 1.0 - self.detected / len(self.degradations)

    def counters_dict(self) -> Dict[str, int]:
        merged = dict(self.counters)
        merged["n_records"] = self.n_records
        merged["n_deliveries"] = self.n_deliveries
        merged["detected"] = self.detected
        merged["crashes"] = self.crashes
        for kind in sorted(self.fault_outcomes):
            for bucket in sorted(self.fault_outcomes[kind]):
                merged[f"fault.{kind}.{bucket}"] = (
                    self.fault_outcomes[kind][bucket]
                )
        return merged

    def summary(self) -> str:
        c = self.counters
        return (
            f"[stream-soak] seed={self.seed} "
            f"deliveries={self.n_deliveries} emitted={c['emitted']} "
            f"aggregated={c['aggregated']} "
            f"late={c['late_dropped'] + c['late_side']} "
            f"deduped={c['deduped']} "
            f"quarantined={c.get('quarantined', 0)} "
            f"forced={c['forced_flushes']} "
            f"cps={c['change_points']} crashes={self.crashes} "
            f"detected={self.detected}/{len(self.degradations)} "
            f"ledger={'closed' if self.ledger_closed else 'VIOLATED'} "
            f"digest={self.digest[:12]}"
        )


def _count_detected(
    degradations: Sequence[DegradationSpec],
    change_points: Sequence[ChangePoint],
) -> int:
    """Degradations answered by an experience CP inside their horizon."""
    detected = 0
    for spec in degradations:
        for cp in change_points:
            if cp.role != "experience":
                continue
            if spec.at_s <= cp.at_s <= spec.at_s + spec.detect_within_s:
                detected += 1
                break
    return detected


def run_stream_soak(
    seed: int = rng_mod.DEFAULT_SEED,
    duration_s: float = 600.0,
    rate_per_s: float = 8.0,
    faults: Optional[StreamFaultSpec] = None,
    degradations: Optional[Sequence[DegradationSpec]] = None,
    config: Optional[StreamConfig] = None,
    checkpoint_dir: Optional[PathLike] = None,
    journal_path: Optional[PathLike] = None,
    gate_kwargs: Optional[Dict[str, float]] = None,
) -> StreamSoakReport:
    """Run one deterministic stream soak end to end.

    ``faults.crash_at_s`` instants kill the pipeline mid-stream; it is
    rebuilt from its latest checkpoint (or from scratch when none was
    committed yet) and the arrival schedule replays from the
    checkpoint's cursor — the report's digest is asserted equal whether
    or not the crash happened, which is the crash-consistency claim in
    executable form.

    ``gate_kwargs``, when given, runs the pipeline behind an
    :class:`~repro.integrity.online.OnlineTrustGate` built with those
    keyword arguments (a fresh instance per (re)start; its state rides
    the checkpoint), so quarantine counters appear in the ledger.
    """
    spec = DEFAULT_STREAM_FAULTS if faults is None else faults
    if degradations is None:
        degradations = default_degradations(duration_s)
    degradations = tuple(degradations)
    if config is None:
        config = StreamConfig(seed=seed)
    records = synthetic_stream(
        seed=seed, duration_s=duration_s, rate_per_s=rate_per_s,
        degradations=degradations,
    )
    plan = FaultPlan(seed=seed)
    deliveries = plan.stream_faults("stream-soak", records, spec)
    crashes = sorted(spec.crash_at_s)
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if crashes and checkpoint_dir is None:
        # Crash/resume needs somewhere durable for epochs; results do
        # not depend on the path, so an ephemeral directory is fine.
        tmp = tempfile.TemporaryDirectory(prefix="stream-soak-ckpt-")
        checkpoint_dir = tmp.name
    journal = (
        StreamJournal(journal_path) if journal_path is not None else None
    )

    def make_gate():
        if gate_kwargs is None:
            return None
        from repro.integrity.online import OnlineTrustGate

        return OnlineTrustGate(**gate_kwargs)

    try:
        pipeline = StreamPipeline(
            config,
            clock=ManualClock(),
            checkpoint_dir=checkpoint_dir,
            journal=journal,
            trust_gate=make_gate(),
        )
        n_crashes = 0
        idx = 0
        while idx < len(deliveries):
            delivery = deliveries[idx]
            if crashes and delivery.at_s >= crashes[0]:
                # The consumer dies before this delivery is processed.
                crashes.pop(0)
                n_crashes += 1
                plan.log.append(("stream-soak", "crash"))
                try:
                    pipeline, idx = StreamPipeline.resume(
                        config, checkpoint_dir, journal=journal,
                        trust_gate=make_gate(),
                    )
                except ConfigError:
                    # Crashed before the first checkpoint: start over.
                    pipeline = StreamPipeline(
                        config,
                        clock=ManualClock(),
                        checkpoint_dir=checkpoint_dir,
                        journal=journal,
                        trust_gate=make_gate(),
                    )
                    if journal is not None:
                        journal.rewrite([])
                    idx = 0
                continue
            gap = delivery.at_s - pipeline.clock.now()
            if gap > 0:
                pipeline.clock.advance(gap)
            pipeline.ingest(delivery.record, tags=delivery.injected)
            idx += 1
        result: StreamResult = pipeline.finish()
        fault_outcomes = {
            kind: dict(buckets)
            for kind, buckets in pipeline.fault_outcomes.items()
        }
    finally:
        if tmp is not None:
            tmp.cleanup()
    detected = _count_detected(degradations, result.change_points)
    return StreamSoakReport(
        seed=seed,
        duration_s=duration_s,
        n_records=len(records),
        n_deliveries=len(deliveries),
        counters=result.counters,
        digest=result.digest,
        change_points=result.change_points,
        degradations=degradations,
        detected=detected,
        crashes=n_crashes,
        fault_outcomes=fault_outcomes,
    )

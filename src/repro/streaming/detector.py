"""Online change-point detection with degradation-aware attribution.

The paper's core complaint is that operators stare at network KPIs
while users experience something else entirely.  The detector closes
that loop online: it watches every aggregate stream the operators emit,
flags statistically surprising level shifts the moment enough
post-shift evidence accumulates, and — when the shifted metric is an
*experience* metric (MOS, sentiment) — attributes it to the most recent
*network* metric shift inside an attribution horizon.  "Users got
unhappy at t=410, and latency jumped at t=380" is the sentence the
paper says measurement should produce.

The statistic is a plain two-sample z-score over a bounded trailing
window (reference half vs. test half), which keeps state O(1) per
metric and — critically for this repo — fully deterministic and
JSON-checkpointable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.streaming.operators import Emission


@dataclass(frozen=True)
class ChangePoint:
    """One detected level shift.

    ``at_s`` is the event-time instant of the emission that tripped the
    threshold; ``shift_at_s`` the first test-half instant (the earliest
    the shift could have started).  ``attributed_to`` / ``attributed_at_s``
    are filled for experience metrics when a network change-point
    precedes them inside the attribution horizon.  ``suspect`` marks a
    shift whose run-up was dense with records the online trust gate
    quarantined — likely an attack burst, not a real network event
    (set by the pipeline when it runs with a gate).
    """

    at_s: float
    metric: str
    role: str
    z_score: float
    reference_mean: float
    test_mean: float
    shift_at_s: float
    attributed_to: Optional[str] = None
    attributed_at_s: Optional[float] = None
    suspect: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_s": self.at_s,
            "metric": self.metric,
            "role": self.role,
            "z_score": self.z_score,
            "reference_mean": self.reference_mean,
            "test_mean": self.test_mean,
            "shift_at_s": self.shift_at_s,
            "attributed_to": self.attributed_to,
            "attributed_at_s": self.attributed_at_s,
            "suspect": self.suspect,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChangePoint":
        attributed_to = data.get("attributed_to")
        attributed_at = data.get("attributed_at_s")
        return cls(
            at_s=float(data["at_s"]),
            metric=str(data["metric"]),
            role=str(data["role"]),
            z_score=float(data["z_score"]),
            reference_mean=float(data["reference_mean"]),
            test_mean=float(data["test_mean"]),
            shift_at_s=float(data["shift_at_s"]),
            attributed_to=(
                None if attributed_to is None else str(attributed_to)
            ),
            attributed_at_s=(
                None if attributed_at is None else float(attributed_at)
            ),
            suspect=bool(data.get("suspect", False)),
        )

    def summary(self) -> str:
        line = (
            f"[cp] {self.metric} ({self.role}) shifted at t={self.at_s:.0f}s "
            f"z={self.z_score:+.2f} "
            f"({self.reference_mean:.3f} -> {self.test_mean:.3f})"
        )
        if self.attributed_to is not None:
            line += (
                f" <- {self.attributed_to} at t={self.attributed_at_s:.0f}s"
            )
        if self.suspect:
            line += " [suspect: attack burst]"
        return line


class OnlineChangePointDetector:
    """Two-sample z-test over a bounded trailing emission window.

    Per metric the detector keeps the last ``reference_n + test_n``
    emissions.  Once full, it compares the test half against the
    reference half; ``|z| >= z_threshold`` declares a change point,
    after which the metric is silenced for ``min_gap_s`` of event time
    so one long shift doesn't fire on every subsequent emission.

    Window means of many samples have a tiny spread, so a pure z-test
    would fire on shifts far below anything a user could notice.  The
    ``min_shift_frac`` guard requires the mean to move by that fraction
    of the reference *scale* (``max(|ref_mean|, ref_std)``) before a
    z excursion counts.
    """

    def __init__(
        self,
        reference_n: int = 12,
        test_n: int = 4,
        z_threshold: float = 5.0,
        min_gap_s: float = 120.0,
        attribution_horizon_s: float = 300.0,
        std_floor: float = 1e-3,
        min_shift_frac: float = 0.1,
    ) -> None:
        if reference_n < 2:
            raise ConfigError("reference_n must be >= 2")
        if test_n < 1:
            raise ConfigError("test_n must be >= 1")
        if z_threshold <= 0:
            raise ConfigError("z_threshold must be positive")
        if min_gap_s < 0:
            raise ConfigError("min_gap_s must be non-negative")
        if attribution_horizon_s < 0:
            raise ConfigError("attribution_horizon_s must be non-negative")
        if std_floor <= 0:
            raise ConfigError("std_floor must be positive")
        if min_shift_frac < 0:
            raise ConfigError("min_shift_frac must be non-negative")
        self.reference_n = int(reference_n)
        self.test_n = int(test_n)
        self.z_threshold = float(z_threshold)
        self.min_gap_s = float(min_gap_s)
        self.attribution_horizon_s = float(attribution_horizon_s)
        self.std_floor = float(std_floor)
        self.min_shift_frac = float(min_shift_frac)
        self._tails: Dict[str, Deque[Tuple[float, float]]] = {}
        self._roles: Dict[str, str] = {}
        self._last_cp_s: Dict[str, float] = {}
        self.change_points: List[ChangePoint] = []
        self.emissions_seen = 0

    def _window(self, metric: str) -> Deque[Tuple[float, float]]:
        tail = self._tails.get(metric)
        if tail is None:
            tail = deque(maxlen=self.reference_n + self.test_n)
            self._tails[metric] = tail
        return tail

    def _attribute(
        self, at_s: float
    ) -> Tuple[Optional[str], Optional[float]]:
        """Nearest preceding *network* change point inside the horizon."""
        best: Optional[ChangePoint] = None
        for cp in reversed(self.change_points):
            if cp.role != "network":
                continue
            if cp.at_s > at_s:
                continue
            if at_s - cp.at_s > self.attribution_horizon_s:
                break
            best = cp
            break
        if best is None:
            return None, None
        return best.metric, best.at_s

    def on_emission(self, emission: Emission) -> Optional[ChangePoint]:
        """Fold one aggregate in; returns a ChangePoint when one fires."""
        self.emissions_seen += 1
        metric = f"{emission.metric}:{emission.operator}"
        self._roles.setdefault(metric, emission.role)
        tail = self._window(metric)
        tail.append((emission.at_s, emission.value))
        if len(tail) < self.reference_n + self.test_n:
            return None
        last_cp = self._last_cp_s.get(metric)
        if last_cp is not None and emission.at_s - last_cp < self.min_gap_s:
            return None
        values = [v for _, v in tail]
        ref = values[: self.reference_n]
        test = values[self.reference_n:]
        ref_mean = sum(ref) / len(ref)
        ref_var = sum((v - ref_mean) ** 2 for v in ref) / len(ref)
        ref_std = max(ref_var ** 0.5, self.std_floor)
        test_mean = sum(test) / len(test)
        z = (test_mean - ref_mean) / ref_std
        if abs(z) < self.z_threshold:
            return None
        scale = max(abs(ref_mean), ref_std)
        if abs(test_mean - ref_mean) < self.min_shift_frac * scale:
            return None
        role = self._roles[metric]
        attributed_to: Optional[str] = None
        attributed_at: Optional[float] = None
        if role == "experience":
            attributed_to, attributed_at = self._attribute(emission.at_s)
        cp = ChangePoint(
            at_s=emission.at_s,
            metric=metric,
            role=role,
            z_score=z,
            reference_mean=ref_mean,
            test_mean=test_mean,
            shift_at_s=tail[self.reference_n][0],
            attributed_to=attributed_to,
            attributed_at_s=attributed_at,
        )
        self.change_points.append(cp)
        self._last_cp_s[metric] = emission.at_s
        return cp

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "tails": {
                metric: [[t, v] for t, v in tail]
                for metric, tail in sorted(self._tails.items())
            },
            "roles": dict(sorted(self._roles.items())),
            "last_cp_s": dict(sorted(self._last_cp_s.items())),
            "change_points": [cp.to_dict() for cp in self.change_points],
            "emissions_seen": self.emissions_seen,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._tails = {}
        for metric, entries in state.get("tails", {}).items():
            tail = deque(maxlen=self.reference_n + self.test_n)
            for t, v in entries:
                tail.append((float(t), float(v)))
            self._tails[str(metric)] = tail
        self._roles = {
            str(m): str(r) for m, r in state.get("roles", {}).items()
        }
        self._last_cp_s = {
            str(m): float(t) for m, t in state.get("last_cp_s", {}).items()
        }
        self.change_points = [
            ChangePoint.from_dict(cp)
            for cp in state.get("change_points", [])
        ]
        self.emissions_seen = int(state.get("emissions_seen", 0))

"""Exactly-once admission: fingerprint-keyed duplicate suppression.

Sits *after* the reorder buffer, so it sees records in event-time
order — which makes eviction trivial: fingerprints older than
``watermark - horizon_s`` can never collide with a future on-time
record (anything that old would be declared late first), so the table
stays bounded without ever forgetting a fingerprint it still needs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Tuple

from repro.errors import ConfigError
from repro.streaming.records import StreamRecord


class DedupFilter:
    """Bounded-memory duplicate detector keyed on record fingerprints.

    ``horizon_s`` must be at least the pipeline's allowed lateness:
    a duplicate can only be delivered on-time within the lateness
    window, so remembering fingerprints for the horizon guarantees
    every admissible duplicate is caught.
    """

    def __init__(self, horizon_s: float) -> None:
        if horizon_s <= 0:
            raise ConfigError("dedup horizon_s must be positive")
        self.horizon_s = float(horizon_s)
        self._seen: Dict[str, float] = {}
        self._order: Deque[Tuple[float, str]] = deque()
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._seen)

    def seen(self, record: StreamRecord) -> bool:
        """True (and no insert) for a duplicate; records first sightings."""
        fp = record.fingerprint
        if fp in self._seen:
            return True
        self._seen[fp] = record.event_time_s
        self._order.append((record.event_time_s, fp))
        return False

    def evict(self, watermark_s: float) -> int:
        """Forget fingerprints older than the horizon; returns the count."""
        cutoff = watermark_s - self.horizon_s
        dropped = 0
        while self._order and self._order[0][0] < cutoff:
            _, fp = self._order.popleft()
            self._seen.pop(fp, None)
            dropped += 1
        self.evicted += dropped
        return dropped

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "entries": [[t, fp] for t, fp in self._order],
            "evicted": self.evicted,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._order = deque(
            (float(t), str(fp)) for t, fp in state.get("entries", [])
        )
        self._seen = {fp: t for t, fp in self._order}
        self.evicted = int(state.get("evicted", 0))

"""Append-only emission journal with torn-tail recovery.

The pipeline journals every emission as one JSONL line so an operator
(human or machine) can tail the stream's outputs.  Appends are flushed
per batch but deliberately **not** atomic — a crash mid-append is
exactly the failure this module exists to survive.  Recovery goes
through :func:`repro.io.jsonl.salvage_jsonl` in ``tail_only`` mode: a
partial final record is quarantined and truncated away, while damage
anywhere *before* the last good line (which an append-only writer
cannot produce) is refused as real corruption.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.io.jsonl import atomic_writer, salvage_jsonl, write_jsonl
from repro.streaming.operators import Emission

PathLike = Union[str, Path]


class StreamJournal:
    """One append-only JSONL file of :class:`Emission` records."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.appended = 0
        self.recovered_bad = 0

    def append(self, emissions: Iterable[Emission]) -> int:
        """Append emissions (one JSON line each); returns how many."""
        count = 0
        with open(self.path, "a", encoding="utf-8") as f:
            for emission in emissions:
                f.write(json.dumps(emission.to_dict()) + "\n")
                count += 1
            f.flush()
        self.appended += count
        return count

    def recover(
        self, quarantine: Optional[PathLike] = None
    ) -> List[Emission]:
        """Read back the journal, repairing a torn tail in place.

        Returns every intact emission.  If the final line was torn by a
        crash it is quarantined (when a path is given) and the journal
        is atomically rewritten without it, so the next ``append``
        continues from a clean file.  Mid-file damage raises
        ``SchemaError`` — see ``salvage_jsonl(tail_only=True)``.
        """
        if not self.path.exists():
            return []
        result = salvage_jsonl(
            self.path, quarantine=quarantine, tail_only=True
        )
        emissions = [Emission.from_dict(r) for r in result.records]
        self.recovered_bad += result.n_bad
        if result.n_bad:
            write_jsonl(self.path, [e.to_dict() for e in emissions])
        return emissions

    def rewrite(self, emissions: Iterable[Emission]) -> int:
        """Atomically replace the journal's contents (resume truncation)."""
        records: List[Dict[str, Any]] = [e.to_dict() for e in emissions]
        with atomic_writer(self.path) as f:
            for record in records:
                f.write(json.dumps(record) + "\n")
        return len(records)

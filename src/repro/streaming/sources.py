"""Seeded synthetic measurement streams with injectable degradations.

The generator emits the two families of signal the paper says must be
read *together*: network-side metrics (latency, loss, speed-test
throughput) and user-side experience metrics (call MOS, post
sentiment).  A :class:`DegradationSpec` injects a network fault window;
the experience metrics respond after a configurable lag — giving the
change-point detector a ground truth to be scored against ("was the
user-visible shift caught, and was it attributed to the right network
metric?").

Records come out in strict event-time order; disordering them is the
fault plan's job (:meth:`repro.resilience.faults.FaultPlan.stream_faults`),
never the source's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro import rng as rng_mod
from repro.errors import ConfigError
from repro.streaming.records import StreamRecord

#: metric name -> (role, baseline mean, baseline std)
STREAM_METRICS: Dict[str, Tuple[str, float, float]] = {
    "latency_ms": ("network", 42.0, 5.0),
    "loss_pct": ("network", 0.5, 0.2),
    "speed_mbps": ("network", 110.0, 12.0),
    "mos": ("experience", 4.3, 0.12),
    "sentiment": ("experience", 0.25, 0.1),
}

#: How hard a unit-severity degradation of each network metric hits.
_NETWORK_SHIFT: Dict[str, float] = {
    "latency_ms": 80.0,   # additive ms
    "loss_pct": 6.0,      # additive pct
    "speed_mbps": -70.0,  # additive Mbps (a slowdown)
}

#: Experience response to a unit-severity degradation, after the lag.
_EXPERIENCE_SHIFT: Dict[str, float] = {
    "mos": -1.4,
    "sentiment": -0.6,
}


@dataclass(frozen=True)
class DegradationSpec:
    """One injected network fault window with a lagged user response.

    Attributes:
        at_s: event time the network metric starts degrading.
        duration_s: how long the degradation lasts.
        metric: which network metric degrades (root cause).
        severity: 0–1 scale applied to the per-metric shift table.
        lag_s: delay before experience metrics respond — the
            paper's point in one parameter: the user feels it *after*
            the network shows it.
        detect_within_s: scoring horizon — the detector must flag an
            experience change point within this much event time of
            ``at_s`` to count as having seen the degradation.
    """

    at_s: float
    duration_s: float
    metric: str = "latency_ms"
    severity: float = 1.0
    lag_s: float = 30.0
    detect_within_s: float = 240.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigError("degradation at_s must be non-negative")
        if self.duration_s <= 0:
            raise ConfigError("degradation duration_s must be positive")
        if self.metric not in _NETWORK_SHIFT:
            raise ConfigError(
                f"degradation metric must be one of "
                f"{tuple(sorted(_NETWORK_SHIFT))}, got {self.metric!r}"
            )
        if not 0.0 < self.severity <= 1.0:
            raise ConfigError("severity must be in (0, 1]")
        if self.lag_s < 0:
            raise ConfigError("lag_s must be non-negative")
        if self.detect_within_s <= 0:
            raise ConfigError("detect_within_s must be positive")

    def network_active(self, t_s: float) -> bool:
        return self.at_s <= t_s < self.at_s + self.duration_s

    def experience_active(self, t_s: float) -> bool:
        start = self.at_s + self.lag_s
        return start <= t_s < start + self.duration_s


def synthetic_stream(
    seed: int = rng_mod.DEFAULT_SEED,
    duration_s: float = 600.0,
    rate_per_s: float = 8.0,
    degradations: Sequence[DegradationSpec] = (),
    key_space: int = 32,
) -> List[StreamRecord]:
    """Generate an event-time-ordered synthetic measurement stream.

    Each tick emits one record: the metric cycles round-robin (so every
    metric gets steady coverage) while the measured key and noise are
    drawn from the seeded substream.  Same seed, same records — byte
    for byte.
    """
    if duration_s <= 0:
        raise ConfigError("duration_s must be positive")
    if rate_per_s <= 0:
        raise ConfigError("rate_per_s must be positive")
    if key_space < 1:
        raise ConfigError("key_space must be >= 1")
    rng = rng_mod.derive(seed, "streaming.sources", "synthetic")
    metrics = sorted(STREAM_METRICS)
    n = int(duration_s * rate_per_s)
    records: List[StreamRecord] = []
    for i in range(n):
        t = (i + 1) / rate_per_s
        metric = metrics[i % len(metrics)]
        role, mean, std = STREAM_METRICS[metric]
        value = mean + std * float(rng.standard_normal())
        for spec in degradations:
            if role == "network":
                if spec.metric == metric and spec.network_active(t):
                    value += _NETWORK_SHIFT[metric] * spec.severity
            elif spec.experience_active(t):
                value += _EXPERIENCE_SHIFT[metric] * spec.severity
        if metric == "mos":
            value = min(5.0, max(1.0, value))
        elif metric in ("loss_pct", "speed_mbps"):
            value = max(0.0, value)
        key = f"u{int(rng.integers(0, key_space)):03d}"
        records.append(StreamRecord(
            event_time_s=t,
            source="synthetic",
            metric=metric,
            value=value,
            key=key,
            role=role,
        ))
    return records


def default_degradations(duration_s: float) -> Tuple[DegradationSpec, ...]:
    """The stock fault script for soaks: one latency hit, one loss hit.

    Scaled to the run length so short smoke runs still contain a full
    degrade-and-recover cycle; returns nothing for runs too short to
    host one.
    """
    if duration_s < 240:
        return ()
    first = DegradationSpec(
        at_s=round(duration_s * 0.3, 3),
        duration_s=round(duration_s * 0.2, 3),
        metric="latency_ms",
        severity=1.0,
    )
    if duration_s < 480:
        return (first,)
    return (
        first,
        DegradationSpec(
            at_s=round(duration_s * 0.7, 3),
            duration_s=round(duration_s * 0.15, 3),
            metric="loss_pct",
            severity=0.8,
        ),
    )

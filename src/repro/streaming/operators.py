"""Incremental stream operators: no full recompute, ever.

Each operator consumes event-time-ordered records, folds them into O(1)
per-record state, and emits closed aggregates when the watermark passes
them.  Emissions are appended to the operator's
:class:`~repro.core.signals.SignalSeries` through ``extend_columns`` —
one bulk columnar append per watermark advance, never a per-signal
dataclass round-trip — so the live series stays query-compatible with
everything the batch analyses already consume.

Operator state is a plain JSON-safe dict (``state_dict`` /
``load_state``): Python's JSON round-trips binary64 floats exactly, so
a checkpointed operator resumes bit-for-bit where it left off.
"""

from __future__ import annotations

import datetime as dt
import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.signals import SignalKind, SignalSeries
from repro.errors import ConfigError
from repro.streaming.records import StreamRecord


@dataclass(frozen=True)
class Emission:
    """One closed aggregate leaving an operator.

    ``at_s`` is the event-time instant the aggregate describes (window
    end / sample point) — detector logic runs on event time, so a soak
    replayed with different arrival jitter detects at the same instants.
    """

    at_s: float
    operator: str
    metric: str
    value: float
    count: int
    role: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_s": self.at_s,
            "operator": self.operator,
            "metric": self.metric,
            "value": self.value,
            "count": self.count,
            "role": self.role,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Emission":
        return cls(
            at_s=float(data["at_s"]),
            operator=str(data["operator"]),
            metric=str(data["metric"]),
            value=float(data["value"]),
            count=int(data["count"]),
            role=str(data["role"]),
        )


def _series_extend(
    series: SignalSeries,
    epoch: dt.datetime,
    network: str,
    emissions: List[Emission],
) -> None:
    """Bulk-append closed aggregates as signals (one columnar call)."""
    if not emissions:
        return
    series.extend_columns(
        [
            SignalKind.EXPLICIT if e.role == "experience"
            else SignalKind.IMPLICIT
            for e in emissions
        ],
        [epoch + dt.timedelta(seconds=e.at_s) for e in emissions],
        network,
        [f"{e.metric}:{e.operator}" for e in emissions],
        [e.value for e in emissions],
        weight=[float(e.count) for e in emissions],
    )


class SlidingWindowAggregate:
    """Per-metric sliding-window means over event time.

    Windows are ``[end - window_s, end)`` with ends at integer multiples
    of ``slide_s``.  A record lands in every window covering its event
    time — amortised ``window_s / slide_s`` dict updates, independent of
    history length.  A window closes (emits and frees its state) once
    the watermark passes its end; the release order downstream of the
    reorder buffer guarantees no on-time record for a closed window can
    still arrive.
    """

    def __init__(
        self,
        window_s: float,
        slide_s: float,
        name: str = "win_mean",
        epoch: Optional[dt.datetime] = None,
        network: str = "starlink",
    ) -> None:
        if window_s <= 0 or slide_s <= 0:
            raise ConfigError("window_s and slide_s must be positive")
        if slide_s > window_s:
            raise ConfigError("slide_s must not exceed window_s")
        self.window_s = float(window_s)
        self.slide_s = float(slide_s)
        self.name = name
        self.epoch = epoch or dt.datetime(2023, 11, 28)
        self.network = network
        self.series = SignalSeries()
        # (metric, window index k) -> [sum, count]; role per metric.
        self._windows: Dict[Tuple[str, int], List[float]] = {}
        self._roles: Dict[str, str] = {}
        self.closed_windows = 0

    def on_record(self, record: StreamRecord) -> None:
        self._roles.setdefault(record.metric, record.role)
        t = record.event_time_s
        k = math.floor(t / self.slide_s) + 1
        while k * self.slide_s <= t + self.window_s:
            cell = self._windows.setdefault((record.metric, k), [0.0, 0.0])
            cell[0] += record.value
            cell[1] += 1.0
            k += 1

    def process(
        self, records: List[StreamRecord], watermark_s: float
    ) -> List[Emission]:
        """Fold a released batch, then close what the watermark passed.

        Order-insensitive to how backpressure batched the records: a
        window only closes once the watermark is strictly past its end
        (every record belonging to it is guaranteed released by then),
        and the strict bound keeps boundary ties in the same drain as
        the decayed operator's — so any partitioning of the same record
        sequence yields the same emission sequence.
        """
        for record in records:
            self.on_record(record)
        return self.on_watermark(watermark_s, inclusive=False)

    def flush(self, final_s: float) -> List[Emission]:
        """End of stream: close every complete window (end <= final_s)."""
        return self.on_watermark(final_s, inclusive=True)

    def on_watermark(
        self, watermark_s: float, inclusive: bool = True
    ) -> List[Emission]:
        """Close every window whose end the watermark has passed."""
        closed: List[Emission] = []
        for (metric, k) in sorted(self._windows):
            end_s = k * self.slide_s
            passed = (
                end_s <= watermark_s if inclusive else end_s < watermark_s
            )
            if passed:
                total, count = self._windows.pop((metric, k))
                closed.append(Emission(
                    at_s=end_s,
                    operator=self.name,
                    metric=metric,
                    value=total / count,
                    count=int(count),
                    role=self._roles.get(metric, "network"),
                ))
        closed.sort(key=lambda e: (e.at_s, e.metric))
        self.closed_windows += len(closed)
        _series_extend(self.series, self.epoch, self.network, closed)
        return closed

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "windows": [
                [metric, k, cell[0], cell[1]]
                for (metric, k), cell in sorted(self._windows.items())
            ],
            "roles": dict(sorted(self._roles.items())),
            "closed_windows": self.closed_windows,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._windows = {
            (str(metric), int(k)): [float(total), float(count)]
            for metric, k, total, count in state.get("windows", [])
        }
        self._roles = {
            str(m): str(r) for m, r in state.get("roles", {}).items()
        }
        self.closed_windows = int(state.get("closed_windows", 0))


class DecayedAggregate:
    """Exponentially-decayed per-metric means, sampled on a fixed grid.

    The classic streaming summary: ``num`` and ``den`` both decay by
    ``0.5 ** (dt / half_life_s)`` between updates, so the mean forgets
    smoothly without storing history.  Requires non-decreasing event
    times — which the reorder buffer guarantees downstream.
    """

    def __init__(
        self,
        half_life_s: float,
        sample_every_s: float,
        name: str = "decayed_mean",
        epoch: Optional[dt.datetime] = None,
        network: str = "starlink",
    ) -> None:
        if half_life_s <= 0:
            raise ConfigError("half_life_s must be positive")
        if sample_every_s <= 0:
            raise ConfigError("sample_every_s must be positive")
        self.half_life_s = float(half_life_s)
        self.sample_every_s = float(sample_every_s)
        self.name = name
        self.epoch = epoch or dt.datetime(2023, 11, 28)
        self.network = network
        self.series = SignalSeries()
        # metric -> [num, den, last_t, count]
        self._state: Dict[str, List[float]] = {}
        self._roles: Dict[str, str] = {}
        self._next_sample_s: Optional[float] = None

    def on_record(self, record: StreamRecord) -> None:
        self._roles.setdefault(record.metric, record.role)
        t = record.event_time_s
        cell = self._state.get(record.metric)
        if cell is None:
            self._state[record.metric] = [record.value, 1.0, t, 1.0]
        else:
            gap = max(0.0, t - cell[2])
            decay = 0.5 ** (gap / self.half_life_s)
            cell[0] = cell[0] * decay + record.value
            cell[1] = cell[1] * decay + 1.0
            cell[2] = t
            cell[3] += 1.0
        if self._next_sample_s is None:
            self._next_sample_s = (
                math.floor(t / self.sample_every_s) + 1
            ) * self.sample_every_s

    def value_at(self, metric: str, at_s: float) -> float:
        """The decayed mean of ``metric``, decayed forward to ``at_s``."""
        cell = self._state[metric]
        # num and den decay by the same factor, so the ratio is
        # time-invariant between updates; at_s only matters for clamping.
        if at_s < cell[2]:
            raise ConfigError("cannot sample a decayed mean in the past")
        return cell[0] / cell[1]

    def process(
        self, records: List[StreamRecord], watermark_s: float
    ) -> List[Emission]:
        """Fold a released batch, emitting grid samples as time passes.

        Folds and samples are interleaved in event-time order: a grid
        point ``s`` emits only after every record with event time at or
        before ``s`` is folded, and only once the watermark is strictly
        past ``s`` (a still-admissible record could carry event time
        exactly ``s``).  That makes the emission sequence a pure
        function of the released record sequence — however backpressure
        happened to batch it — which is what crash-resume byte-identity
        rests on.
        """
        emissions: List[Emission] = []
        i = 0
        if self._next_sample_s is None and records:
            t0 = records[0].event_time_s
            self._next_sample_s = (
                math.floor(t0 / self.sample_every_s) + 1
            ) * self.sample_every_s
        while True:
            s = self._next_sample_s
            if s is None or s >= watermark_s:
                break
            while i < len(records) and records[i].event_time_s <= s:
                self.on_record(records[i])
                i += 1
            for metric in sorted(self._state):
                cell = self._state[metric]
                emissions.append(Emission(
                    at_s=s,
                    operator=self.name,
                    metric=metric,
                    value=cell[0] / cell[1],
                    count=int(cell[3]),
                    role=self._roles.get(metric, "network"),
                ))
            self._next_sample_s = s + self.sample_every_s
        while i < len(records):
            self.on_record(records[i])
            i += 1
        _series_extend(self.series, self.epoch, self.network, emissions)
        return emissions

    def flush(self, final_s: float) -> List[Emission]:
        """End of stream: emit the remaining grid samples up to final_s.

        Every record has been folded by now, so the inclusive bound is
        safe — no admissible record with event time ``final_s`` can
        still arrive.
        """
        emissions: List[Emission] = []
        while (
            self._next_sample_s is not None
            and self._next_sample_s <= final_s
        ):
            s = self._next_sample_s
            for metric in sorted(self._state):
                cell = self._state[metric]
                emissions.append(Emission(
                    at_s=s,
                    operator=self.name,
                    metric=metric,
                    value=cell[0] / cell[1],
                    count=int(cell[3]),
                    role=self._roles.get(metric, "network"),
                ))
            self._next_sample_s = s + self.sample_every_s
        _series_extend(self.series, self.epoch, self.network, emissions)
        return emissions

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "state": {
                metric: list(cell)
                for metric, cell in sorted(self._state.items())
            },
            "roles": dict(sorted(self._roles.items())),
            "next_sample_s": self._next_sample_s,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._state = {
            str(metric): [float(x) for x in cell]
            for metric, cell in state.get("state", {}).items()
        }
        self._roles = {
            str(m): str(r) for m, r in state.get("roles", {}).items()
        }
        raw = state.get("next_sample_s")
        self._next_sample_s = None if raw is None else float(raw)


def batch_window_aggregates(
    records: Iterable[StreamRecord],
    window_s: float,
    slide_s: float,
) -> Dict[Tuple[str, float], Tuple[float, int]]:
    """Reference batch recompute of every complete window.

    Scans the *full* record list and returns
    ``(metric, window_end_s) -> (mean, count)`` for exactly the windows
    the incremental operator would close by the final watermark (window
    ends at or before the last event time) — the equivalence oracle for
    tests and the full-recompute baseline the perf harness times the
    incremental path against.
    """
    if window_s <= 0 or slide_s <= 0:
        raise ConfigError("window_s and slide_s must be positive")
    sums: Dict[Tuple[str, int], List[float]] = {}
    max_t = float("-inf")
    for record in records:
        t = record.event_time_s
        max_t = max(max_t, t)
        k = math.floor(t / slide_s) + 1
        while k * slide_s <= t + window_s:
            cell = sums.setdefault((record.metric, k), [0.0, 0.0])
            cell[0] += record.value
            cell[1] += 1.0
            k += 1
    return {
        (metric, k * slide_s): (cell[0] / cell[1], int(cell[1]))
        for (metric, k), cell in sums.items()
        if k * slide_s <= max_t
    }

"""Fault-tolerant streaming ingestion for USaaS (ROADMAP item 2).

Turns the batch repro into a live service: generators emit
:class:`StreamRecord` objects in event-time order, a seeded
:meth:`~repro.resilience.faults.FaultPlan.stream_faults` arrival process
reorders / duplicates / delays them, and a :class:`StreamPipeline` of
incremental operators keeps sliding-window and exponentially-decayed
aggregates current while an online change-point detector answers "what
changed for users in the last hour" — with root-cause attribution to
the network metric that moved first.

The robustness core, in one place:

* **watermarks** with a bounded out-of-order buffer and an explicit
  late-record policy (:mod:`repro.streaming.watermark`);
* **duplicate suppression** keyed on the record fingerprint scheme
  (:mod:`repro.streaming.dedup`);
* **bounded queues with backpressure** between pipeline stages;
* **checkpointed operator state** via
  :class:`~repro.perf.checkpoint.CheckpointStore` — crash mid-stream,
  resume, and converge to byte-identical aggregates per seed;
* a **deterministic stream soak** asserting exact-once ledger closure
  (:mod:`repro.streaming.soak`).
"""

from repro.streaming.detector import (
    ChangePoint,
    OnlineChangePointDetector,
)
from repro.streaming.dedup import DedupFilter
from repro.streaming.journal import StreamJournal
from repro.streaming.operators import (
    DecayedAggregate,
    Emission,
    SlidingWindowAggregate,
    batch_window_aggregates,
)
from repro.streaming.pipeline import (
    StreamConfig,
    StreamCounters,
    StreamPipeline,
    StreamResult,
)
from repro.streaming.records import StreamRecord, record_fingerprint
from repro.streaming.soak import (
    DegradationSpec,
    StreamSoakReport,
    run_stream_soak,
)
from repro.streaming.sources import synthetic_stream
from repro.streaming.watermark import ReorderBuffer, WatermarkTracker

__all__ = [
    "ChangePoint",
    "DecayedAggregate",
    "DedupFilter",
    "DegradationSpec",
    "Emission",
    "OnlineChangePointDetector",
    "ReorderBuffer",
    "SlidingWindowAggregate",
    "StreamConfig",
    "StreamCounters",
    "StreamJournal",
    "StreamPipeline",
    "StreamRecord",
    "StreamResult",
    "StreamSoakReport",
    "batch_window_aggregates",
    "record_fingerprint",
    "run_stream_soak",
    "synthetic_stream",
]

"""The unit of streaming ingestion: one timestamped measurement.

A :class:`StreamRecord` is the event the generators emit and the
pipeline ingests.  Event time lives on a float axis (seconds since the
stream's epoch) so watermark arithmetic stays exact; adapters that emit
out of ``datetime``-stamped datasets convert once at the boundary.

Each record carries a content **fingerprint** — the same SHA-256
identity-binding scheme :func:`repro.perf.checkpoint.shard_fingerprint`
uses for shards — which is what the dedup stage keys on: a duplicated
delivery of the same record always hashes the same, while two distinct
measurements (different source, key, time or value) never collide.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import SchemaError

#: Detector-facing record roles: ``network`` metrics are candidate root
#: causes; ``experience`` metrics (MOS, sentiment) are what users feel.
RECORD_ROLES: Tuple[str, ...] = ("network", "experience")


def record_fingerprint(
    source: str, metric: str, key: str, event_time_s: float, value: float
) -> str:
    """SHA-256 identity of one stream record.

    Binds the record's origin, subject and payload the way
    ``shard_fingerprint`` binds a shard to its run — ``repr`` of the
    floats keeps the digest exact (no formatting rounding), so a
    redelivered record hashes identically and nothing else does.
    """
    blob = f"{source}:{metric}:{key}:{event_time_s!r}:{value!r}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StreamRecord:
    """One measurement on the stream.

    Attributes:
        event_time_s: when the measurement *happened*, in seconds on the
            stream's event-time axis (not when it arrived — the fault
            plan decides that).
        source: producing feed (``"telemetry"``, ``"social"``, ...).
        metric: measurement name (``"latency_ms"``, ``"mos"``, ...).
        value: numeric payload.
        key: the measured unit (user / post id) — part of the
            fingerprint, so two users measured at the same instant are
            distinct records.
        role: ``network`` or ``experience`` (drives attribution).
    """

    event_time_s: float
    source: str
    metric: str
    value: float
    key: str = ""
    role: str = "network"

    def __post_init__(self) -> None:
        if not self.source:
            raise SchemaError("stream record requires a source")
        if not self.metric:
            raise SchemaError("stream record requires a metric name")
        if self.role not in RECORD_ROLES:
            raise SchemaError(
                f"role must be one of {RECORD_ROLES}, got {self.role!r}"
            )
        if self.event_time_s < 0:
            raise SchemaError("event_time_s must be non-negative")

    @property
    def fingerprint(self) -> str:
        return record_fingerprint(
            self.source, self.metric, self.key, self.event_time_s, self.value
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (checkpointed reorder buffers round-trip this)."""
        return {
            "event_time_s": self.event_time_s,
            "source": self.source,
            "metric": self.metric,
            "value": self.value,
            "key": self.key,
            "role": self.role,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamRecord":
        try:
            return cls(
                event_time_s=float(data["event_time_s"]),
                source=str(data["source"]),
                metric=str(data["metric"]),
                value=float(data["value"]),
                key=str(data.get("key", "")),
                role=str(data.get("role", "network")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"bad stream record: {exc}") from exc

"""Watermarks and bounded out-of-order buffering.

Real measurement feeds arrive late, duplicated and gappy (the
crowdsourced-QoE literature is blunt about this), so the pipeline never
assumes arrival order equals event order.  Instead it tracks a
**watermark** — "no record older than this will be accepted any more" —
and holds newer-than-watermark records in a bounded reorder buffer
until the watermark passes them, releasing them downstream in exact
event-time order.

Two invariants the tests pin down:

* the watermark is **monotonic**: it never moves backwards, no matter
  how disordered the arrivals are;
* the buffer is **bounded**: when it overflows, the oldest buffered
  record is force-released and the watermark floor is raised to its
  event time, so memory stays bounded at the cost of declaring
  deeper-than-capacity stragglers late.  Every forced release is
  counted — nothing is silently reordered.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

from repro.errors import ConfigError
from repro.streaming.records import StreamRecord

#: Watermark value before any record has been observed.
NO_WATERMARK = float("-inf")


class WatermarkTracker:
    """Event-time watermark with a fixed allowed-lateness bound.

    The watermark is ``max(observed event time) - allowed_lateness_s``,
    floored by any forced-flush advances — both terms are monotone
    non-decreasing, so the watermark is too.  A record is **late** when
    its event time is strictly below the current watermark; late records
    never enter the reorder buffer (the pipeline applies its late
    policy instead).
    """

    def __init__(self, allowed_lateness_s: float) -> None:
        if allowed_lateness_s < 0:
            raise ConfigError("allowed_lateness_s must be non-negative")
        self.allowed_lateness_s = float(allowed_lateness_s)
        self._max_event_time_s = NO_WATERMARK
        self._floor_s = NO_WATERMARK
        self.observed = 0

    @property
    def max_event_time_s(self) -> float:
        return self._max_event_time_s

    @property
    def watermark_s(self) -> float:
        """Current watermark (``-inf`` until the first observation)."""
        if self._max_event_time_s == NO_WATERMARK:
            return self._floor_s
        return max(
            self._max_event_time_s - self.allowed_lateness_s, self._floor_s
        )

    def is_late(self, event_time_s: float) -> bool:
        return event_time_s < self.watermark_s

    def observe(self, event_time_s: float) -> float:
        """Fold one event time in; returns the (possibly advanced) watermark."""
        self.observed += 1
        if event_time_s > self._max_event_time_s:
            self._max_event_time_s = float(event_time_s)
        return self.watermark_s

    def advance_floor(self, event_time_s: float) -> float:
        """Raise the watermark floor (buffer overflow forced a release)."""
        if event_time_s > self._floor_s:
            self._floor_s = float(event_time_s)
        return self.watermark_s

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "max_event_time_s": (
                None if self._max_event_time_s == NO_WATERMARK
                else self._max_event_time_s
            ),
            "floor_s": (
                None if self._floor_s == NO_WATERMARK else self._floor_s
            ),
            "observed": self.observed,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        max_t = state.get("max_event_time_s")
        floor = state.get("floor_s")
        self._max_event_time_s = (
            NO_WATERMARK if max_t is None else float(max_t)
        )
        self._floor_s = NO_WATERMARK if floor is None else float(floor)
        self.observed = int(state.get("observed", 0))


class ReorderBuffer:
    """Bounded min-heap of not-yet-releasable records.

    Records are keyed by ``(event_time_s, arrival_seq)`` so equal event
    times release in arrival order — a total, deterministic order, which
    is what makes replayed runs byte-identical.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError("reorder buffer capacity must be >= 1")
        self.capacity = int(capacity)
        self._heap: List[Tuple[float, int, StreamRecord]] = []
        self._arrivals = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def overflowing(self) -> bool:
        return len(self._heap) > self.capacity

    def push(self, record: StreamRecord) -> None:
        heapq.heappush(
            self._heap, (record.event_time_s, self._arrivals, record)
        )
        self._arrivals += 1

    def pop_oldest(self) -> StreamRecord:
        """Force-release the earliest buffered record (overflow path)."""
        if not self._heap:
            raise ConfigError("cannot pop from an empty reorder buffer")
        return heapq.heappop(self._heap)[2]

    def release(self, watermark_s: float) -> List[StreamRecord]:
        """All records the watermark has passed, in event-time order."""
        released: List[StreamRecord] = []
        while self._heap and self._heap[0][0] <= watermark_s:
            released.append(heapq.heappop(self._heap)[2])
        return released

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "arrivals": self._arrivals,
            "entries": [
                [t, seq, record.to_dict()]
                for t, seq, record in sorted(self._heap, key=lambda e: e[:2])
            ],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._arrivals = int(state.get("arrivals", 0))
        self._heap = [
            (float(t), int(seq), StreamRecord.from_dict(record))
            for t, seq, record in state.get("entries", [])
        ]
        heapq.heapify(self._heap)

"""The fault-tolerant stream pipeline: ingest → order → dedup → aggregate.

Stages, in delivery order:

1. **watermark gate** — a record older than the current watermark is
   late; the configured policy drops it or shunts it to the side
   channel, counted exactly either way;
2. **reorder buffer** — on-time records wait (bounded) until the
   watermark passes them, then release in event-time order.  Overflow
   force-releases the oldest record and raises the watermark floor;
3. **dedup filter** — fingerprint-keyed, horizon-bounded; sees an
   ordered stream so eviction is exact;
4. **bounded queues with backpressure** — between ingest and the
   operators, and between the operators and the detector.  A full
   queue drains its consumer synchronously (counted), so memory is
   bounded and the flow stays deterministic;
5. **incremental operators** → **change-point detector**.

Every stage exposes ``state_dict``/``load_state``; a checkpoint drains
the queues, snapshots all stages plus the emission log, and commits the
lot as one epoch through :class:`~repro.perf.checkpoint.CheckpointStore`
(run-keyed on the config fingerprint, so a checkpoint can never resume
a different stream).  The exactly-once ledger —

    emitted == aggregated + late_dropped + late_side + deduped + quarantined

— must close at the end of every run, crashed or not; violations raise.
(``quarantined`` is only nonzero when the pipeline is built with an
:class:`~repro.integrity.online.OnlineTrustGate`.)
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.perf.checkpoint import CheckpointStore
from repro.perf.parallel import Shard
from repro.resilience.clock import Clock, ManualClock
from repro.streaming.dedup import DedupFilter
from repro.streaming.detector import ChangePoint, OnlineChangePointDetector
from repro.streaming.journal import StreamJournal
from repro.streaming.operators import (
    DecayedAggregate,
    Emission,
    SlidingWindowAggregate,
)
from repro.streaming.records import StreamRecord
from repro.streaming.watermark import ReorderBuffer, WatermarkTracker

PathLike = Union[str, Path]

#: What to do with a record the watermark has already passed.
LATE_POLICIES: Tuple[str, ...] = ("drop", "side")


@dataclass(frozen=True)
class StreamConfig:
    """Immutable pipeline parameters; the fingerprint keys checkpoints."""

    name: str = "usaas-stream"
    seed: int = 20231128
    allowed_lateness_s: float = 30.0
    reorder_capacity: int = 256
    dedup_horizon_s: float = 120.0
    late_policy: str = "drop"
    queue_capacity: int = 64
    window_s: float = 60.0
    slide_s: float = 10.0
    half_life_s: float = 120.0
    sample_every_s: float = 10.0
    checkpoint_every_s: float = 60.0
    detector_reference_n: int = 10
    detector_test_n: int = 3
    detector_z_threshold: float = 5.0
    detector_min_gap_s: float = 120.0
    detector_min_shift_frac: float = 0.1
    attribution_horizon_s: float = 300.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("stream config requires a name")
        if self.late_policy not in LATE_POLICIES:
            raise ConfigError(
                f"late_policy must be one of {LATE_POLICIES}, "
                f"got {self.late_policy!r}"
            )
        if self.reorder_capacity < 1:
            raise ConfigError("reorder_capacity must be >= 1")
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be >= 1")
        if self.checkpoint_every_s <= 0:
            raise ConfigError("checkpoint_every_s must be positive")
        if self.dedup_horizon_s < self.allowed_lateness_s:
            raise ConfigError(
                "dedup_horizon_s must cover allowed_lateness_s: a "
                "duplicate can arrive any time inside the lateness window"
            )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical config JSON (checkpoint run key)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class StreamCounters:
    """Exactly-once accounting: every delivery lands in one bucket.

    ``emitted`` counts deliveries ingested; at the end of a run every
    one of them is **aggregated** (reached the operators), **late**
    (dropped or side-channelled), **deduped**, or **quarantined** by
    the trust gate — and nothing else.
    """

    emitted: int = 0
    aggregated: int = 0
    late_dropped: int = 0
    late_side: int = 0
    deduped: int = 0
    quarantined: int = 0
    forced_flushes: int = 0
    backpressure_waits: int = 0
    emissions: int = 0
    change_points: int = 0
    checkpoints: int = 0
    resumes: int = 0

    @property
    def accounted(self) -> int:
        return (
            self.aggregated + self.late_dropped
            + self.late_side + self.deduped + self.quarantined
        )

    def check_exact_once(self) -> None:
        """Raise unless the ledger closes (call after ``finish``)."""
        if self.emitted != self.accounted:
            raise ConfigError(
                f"exact-once ledger violated: emitted={self.emitted} != "
                f"aggregated={self.aggregated} + "
                f"late_dropped={self.late_dropped} + "
                f"late_side={self.late_side} + deduped={self.deduped} + "
                f"quarantined={self.quarantined}"
            )

    def counters_dict(self) -> Dict[str, int]:
        return {
            "emitted": self.emitted,
            "aggregated": self.aggregated,
            "late_dropped": self.late_dropped,
            "late_side": self.late_side,
            "deduped": self.deduped,
            "quarantined": self.quarantined,
            "forced_flushes": self.forced_flushes,
            "backpressure_waits": self.backpressure_waits,
            "emissions": self.emissions,
            "change_points": self.change_points,
            "checkpoints": self.checkpoints,
            "resumes": self.resumes,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        for key in self.counters_dict():
            setattr(self, key, int(state.get(key, 0)))


class BoundedQueue:
    """A deque with a hard capacity; pushing past it is a protocol error.

    The pipeline never lets that happen: it drains the consumer *before*
    a push that would overflow, which is what ``backpressure_waits``
    counts.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError("queue capacity must be >= 1")
        self.capacity = int(capacity)
        self._items: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: Any) -> None:
        if self.full:
            raise ConfigError("bounded queue overflow: drain before push")
        self._items.append(item)

    def drain(self) -> List[Any]:
        items = list(self._items)
        self._items.clear()
        return items


@dataclass(frozen=True)
class StreamResult:
    """Final state of one stream run (or one resumed continuation)."""

    config_fingerprint: str
    counters: Dict[str, int]
    emissions: Tuple[Emission, ...]
    change_points: Tuple[ChangePoint, ...]
    digest: str

    def summary(self) -> str:
        c = self.counters
        return (
            f"[stream] emitted={c['emitted']} aggregated={c['aggregated']} "
            f"late={c['late_dropped'] + c['late_side']} "
            f"deduped={c['deduped']} emissions={c['emissions']} "
            f"change_points={c['change_points']} digest={self.digest[:12]}"
        )


def emissions_digest(emissions: List[Emission]) -> str:
    """Order-sensitive SHA-256 over the full emission log.

    Byte-identical across reruns of the same seed, and across
    crash-resume vs. uninterrupted runs — the convergence oracle the
    soak asserts on.
    """
    digest = hashlib.sha256()
    for emission in emissions:
        line = json.dumps(emission.to_dict(), sort_keys=True) + "\n"
        digest.update(line.encode("utf-8"))
    return digest.hexdigest()


class StreamPipeline:
    """One live stream: drive with ``ingest``, close with ``finish``."""

    def __init__(
        self,
        config: StreamConfig,
        clock: Optional[Clock] = None,
        checkpoint_dir: Optional[PathLike] = None,
        journal: Optional[StreamJournal] = None,
        trust_gate: Optional[Any] = None,
    ) -> None:
        # ``trust_gate`` (an OnlineTrustGate-shaped object) is a
        # construction argument, NOT a StreamConfig field: the config
        # fingerprint keys checkpoints, and running with or without a
        # gate must not orphan existing checkpoint epochs.
        self.config = config
        self.trust_gate = trust_gate
        self.clock = clock or ManualClock()
        self.journal = journal
        self.counters = StreamCounters()
        self.watermark = WatermarkTracker(config.allowed_lateness_s)
        self.buffer = ReorderBuffer(config.reorder_capacity)
        self.dedup = DedupFilter(config.dedup_horizon_s)
        self.window_op = SlidingWindowAggregate(
            config.window_s, config.slide_s
        )
        self.decay_op = DecayedAggregate(
            config.half_life_s, config.sample_every_s
        )
        self.detector = OnlineChangePointDetector(
            reference_n=config.detector_reference_n,
            test_n=config.detector_test_n,
            z_threshold=config.detector_z_threshold,
            min_gap_s=config.detector_min_gap_s,
            min_shift_frac=config.detector_min_shift_frac,
            attribution_horizon_s=config.attribution_horizon_s,
        )
        self.emissions: List[Emission] = []
        self.side_channel: List[StreamRecord] = []
        self._to_operators = BoundedQueue(config.queue_capacity)
        self._to_detector = BoundedQueue(config.queue_capacity)
        self._store: Optional[CheckpointStore] = None
        if checkpoint_dir is not None:
            self._store = CheckpointStore(
                checkpoint_dir, run_key=config.fingerprint()
            )
        self._epoch = 0
        self._next_checkpoint_s = config.checkpoint_every_s
        self._finished = False
        #: fingerprint -> FIFO of fault-tag tuples for deliveries still
        #: in flight (pushed at ingest, popped when the delivery reaches
        #: its terminal bucket).  A FIFO because duplicate deliveries
        #: share a fingerprint and each carries its own tags; in-flight
        #: occupancy is bounded by the reorder buffer, so this is too.
        self._pending_tags: Dict[str, List[Tuple[str, ...]]] = {}
        #: fault kind -> terminal bucket -> count; the soak's per-kind
        #: dedup/quarantine attribution.
        self.fault_outcomes: Dict[str, Dict[str, int]] = {}

    def _tag_outcome(self, tags: Tuple[str, ...], bucket: str) -> None:
        for kind in tags:
            buckets = self.fault_outcomes.setdefault(kind, {})
            buckets[bucket] = buckets.get(bucket, 0) + 1

    # -- ingest -----------------------------------------------------------

    def ingest(
        self, record: StreamRecord, tags: Tuple[str, ...] = ()
    ) -> None:
        """Deliver one record (arrival order = call order).

        ``tags`` names the injected fault kinds that shaped this
        delivery (a soak passes ``delivery.injected``); the pipeline
        attributes the record's terminal bucket to each tag in
        :attr:`fault_outcomes`.
        """
        if self._finished:
            raise ConfigError("cannot ingest into a finished pipeline")
        self.counters.emitted += 1
        if self.watermark.is_late(record.event_time_s):
            if self.config.late_policy == "side":
                self.counters.late_side += 1
                self._tag_outcome(tuple(tags), "late_side")
                self.side_channel.append(record)
            else:
                self.counters.late_dropped += 1
                self._tag_outcome(tuple(tags), "late_dropped")
            return
        self._pending_tags.setdefault(record.fingerprint, []).append(
            tuple(tags)
        )
        self.watermark.observe(record.event_time_s)
        self.buffer.push(record)
        while self.buffer.overflowing:
            oldest = self.buffer.pop_oldest()
            self.watermark.advance_floor(oldest.event_time_s)
            self.counters.forced_flushes += 1
            self._route(oldest)
        for released in self.buffer.release(self.watermark.watermark_s):
            self._route(released)
        self.dedup.evict(self.watermark.watermark_s)
        self._maybe_checkpoint()

    def _route(self, record: StreamRecord) -> None:
        """Dedup and trust-gate one ordered record, then queue it."""
        queue = self._pending_tags.get(record.fingerprint)
        tags: Tuple[str, ...] = ()
        if queue:
            tags = queue.pop(0)
            if not queue:
                del self._pending_tags[record.fingerprint]
        if self.dedup.seen(record):
            self.counters.deduped += 1
            self._tag_outcome(tags, "deduped")
            return
        if self.trust_gate is not None and self.trust_gate.observe(record):
            self.counters.quarantined += 1
            self._tag_outcome(tags, "quarantined")
            return
        self.counters.aggregated += 1
        self._tag_outcome(tags, "aggregated")
        if self._to_operators.full:
            self.counters.backpressure_waits += 1
            # A mid-release drain may not use the global watermark:
            # records released after this one (same release sweep) are
            # not queued yet.  Records arrive here in event-time order,
            # so this record's own event time is the tightest bound the
            # operators can safely emit strictly below.
            self._drain_operators(record.event_time_s)
        self._to_operators.push(record)

    # -- stage drains -----------------------------------------------------

    def _drain_operators(self, watermark_s: Optional[float] = None) -> None:
        """Fold queued records into the operators; emit what closed.

        ``watermark_s`` overrides the global watermark for mid-release
        backpressure drains (see :meth:`_route`); drains between
        ingests use the global value.
        """
        records = self._to_operators.drain()
        wm = (
            self.watermark.watermark_s if watermark_s is None
            else watermark_s
        )
        batch = self.window_op.process(records, wm)
        batch += self.decay_op.process(records, wm)
        # All emissions in one drain lie in (previous wm, wm]; sorting
        # the merged batch therefore yields the same global sequence no
        # matter where backpressure happened to cut the drains — the
        # property that makes crash-resume digests byte-identical.
        batch.sort(key=lambda e: (e.at_s, e.operator, e.metric))
        for emission in batch:
            if self._to_detector.full:
                self.counters.backpressure_waits += 1
                self._drain_detector()
            self._to_detector.push(emission)

    def _drain_detector(self) -> None:
        from dataclasses import replace as dc_replace

        emissions = self._to_detector.drain()
        for emission in emissions:
            self.emissions.append(emission)
            self.counters.emissions += 1
            cp = self.detector.on_emission(emission)
            if cp is not None:
                self.counters.change_points += 1
                # A shift whose run-up was dense with quarantined
                # records is an attack burst, not a network event.
                if (
                    self.trust_gate is not None
                    and self.trust_gate.burst_active(cp.at_s)
                ):
                    self.detector.change_points[-1] = dc_replace(
                        cp, suspect=True
                    )
        if self.journal is not None and emissions:
            self.journal.append(emissions)

    def pump(self) -> None:
        """Drain every queue (checkpoints and finish need empty queues)."""
        self._drain_operators()
        self._drain_detector()

    # -- checkpointing ----------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if self._store is None:
            return
        if self.clock.now() >= self._next_checkpoint_s:
            self.checkpoint()

    def state_dict(self) -> Dict[str, Any]:
        return {
            "counters": self.counters.counters_dict(),
            "watermark": self.watermark.state_dict(),
            "buffer": self.buffer.state_dict(),
            "dedup": self.dedup.state_dict(),
            "window_op": self.window_op.state_dict(),
            "decay_op": self.decay_op.state_dict(),
            "detector": self.detector.state_dict(),
            "emissions": [e.to_dict() for e in self.emissions],
            "side_channel": [r.to_dict() for r in self.side_channel],
            "cursor": self.counters.emitted,
            "clock_s": self.clock.now(),
            "epoch": self._epoch,
            "next_checkpoint_s": self._next_checkpoint_s,
            "pending_tags": [
                [fp, [list(tags) for tags in queue]]
                for fp, queue in self._pending_tags.items()
            ],
            "fault_outcomes": {
                kind: dict(buckets)
                for kind, buckets in self.fault_outcomes.items()
            },
            "trust_gate": (
                None if self.trust_gate is None
                else self.trust_gate.state_dict()
            ),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self.counters.load_state(state.get("counters", {}))
        self.watermark.load_state(state.get("watermark", {}))
        self.buffer.load_state(state.get("buffer", {}))
        self.dedup.load_state(state.get("dedup", {}))
        self.window_op.load_state(state.get("window_op", {}))
        self.decay_op.load_state(state.get("decay_op", {}))
        self.detector.load_state(state.get("detector", {}))
        self.emissions = [
            Emission.from_dict(e) for e in state.get("emissions", [])
        ]
        self.side_channel = [
            StreamRecord.from_dict(r)
            for r in state.get("side_channel", [])
        ]
        self._epoch = int(state.get("epoch", 0))
        self._next_checkpoint_s = float(
            state.get("next_checkpoint_s", self.config.checkpoint_every_s)
        )
        self._pending_tags = {
            str(fp): [tuple(str(t) for t in tags) for tags in queue]
            for fp, queue in state.get("pending_tags", [])
        }
        self.fault_outcomes = {
            str(kind): {str(b): int(n) for b, n in buckets.items()}
            for kind, buckets in state.get("fault_outcomes", {}).items()
        }
        gate_state = state.get("trust_gate")
        if gate_state is not None and self.trust_gate is not None:
            self.trust_gate.load_state(gate_state)

    def checkpoint(self) -> int:
        """Drain, snapshot every stage, commit one epoch; returns it."""
        if self._store is None:
            raise ConfigError("pipeline has no checkpoint directory")
        self.pump()
        self._epoch += 1
        self.counters.checkpoints += 1
        # Advance the cadence *before* snapshotting: the snapshot must
        # carry the post-checkpoint schedule or a resumed pipeline would
        # immediately checkpoint again and diverge from the
        # uninterrupted run.
        self._next_checkpoint_s = (
            self.clock.now() + self.config.checkpoint_every_s
        )
        self._store.commit(
            Shard(index=self._epoch, start=0, stop=0), [self.state_dict()]
        )
        return self._epoch

    @classmethod
    def resume(
        cls,
        config: StreamConfig,
        checkpoint_dir: PathLike,
        journal: Optional[StreamJournal] = None,
        trust_gate: Optional[Any] = None,
    ) -> Tuple["StreamPipeline", int]:
        """Rebuild a pipeline from its latest committed epoch.

        Returns ``(pipeline, cursor)`` where ``cursor`` is the number of
        deliveries the checkpoint had already ingested — the driver
        replays the arrival sequence from that index and the result
        converges byte-identically to an uninterrupted run.  The
        journal, when given, is atomically truncated to the emissions
        the checkpoint vouches for, so resumption re-emits nothing.
        """
        store = CheckpointStore(checkpoint_dir, run_key=config.fingerprint())
        epochs = store.completed_indices()
        state: Optional[Dict[str, Any]] = None
        while epochs and state is None:
            epoch = epochs.pop()
            records = store.load(Shard(index=epoch, start=0, stop=0))
            if records:
                state = records[0]
        if state is None:
            raise ConfigError(
                f"no resumable checkpoint under {checkpoint_dir}"
            )
        pipeline = cls(
            config,
            clock=ManualClock(start=float(state.get("clock_s", 0.0))),
            checkpoint_dir=checkpoint_dir,
            journal=journal,
            trust_gate=trust_gate,
        )
        pipeline.load_state(state)
        pipeline.counters.resumes += 1
        if journal is not None:
            journal.rewrite(pipeline.emissions)
        return pipeline, int(state.get("cursor", 0))

    # -- finish -----------------------------------------------------------

    def finish(self) -> StreamResult:
        """Flush everything still in flight and close the ledger."""
        if self._finished:
            raise ConfigError("pipeline already finished")
        final_wm = self.watermark.max_event_time_s
        self.watermark.advance_floor(final_wm)
        for released in self.buffer.release(final_wm):
            self._route(released)
        self.pump()
        # In-stream drains are strictly-before-watermark; the stream is
        # over now, so close the boundary inclusively: complete windows
        # ending exactly at the last event time, and the final grid
        # samples.
        batch = self.window_op.flush(final_wm)
        batch += self.decay_op.flush(final_wm)
        batch.sort(key=lambda e: (e.at_s, e.operator, e.metric))
        for emission in batch:
            if self._to_detector.full:
                self.counters.backpressure_waits += 1
                self._drain_detector()
            self._to_detector.push(emission)
        self._drain_detector()
        self._finished = True
        self.counters.check_exact_once()
        return StreamResult(
            config_fingerprint=self.config.fingerprint(),
            counters=self.counters.counters_dict(),
            emissions=tuple(self.emissions),
            change_points=tuple(self.detector.change_points),
            digest=emissions_digest(self.emissions),
        )

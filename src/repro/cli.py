"""Command-line interface: the reproduction as a toolbox.

Subcommands mirror the two data pipelines and the analyses on top:

* ``generate-calls`` / ``generate-corpus`` — produce datasets (JSONL),
  optionally sharded across processes (``--workers``) and persisted
  through the content-addressed artifact cache (``--cache-dir``);
* ``analyze-teams`` — the §3 summary over a call dataset;
* ``analyze-starlink`` — the §4 summary over a social corpus;
* ``usaas`` — answer the §5 query over both;
* ``cache`` — inspect (``stats``) or drop (``invalidate``) cached
  artifacts.

Usage::

    python -m repro.cli generate-calls --n-calls 500 --out calls.jsonl
    python -m repro.cli generate-calls --n-calls 500 --workers 4 \\
        --cache-dir ~/.cache/repro --out calls.jsonl
    python -m repro.cli cache stats --cache-dir ~/.cache/repro
    python -m repro.cli analyze-teams --calls calls.jsonl
"""

from __future__ import annotations

import argparse
import datetime as dt
import sys
from typing import List, Optional

from repro.rng import DEFAULT_SEED


def _open_cache(args: argparse.Namespace):
    """The ArtifactCache named by ``--cache-dir`` (None when absent)."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.perf import ArtifactCache

    return ArtifactCache(args.cache_dir)


def _execution_policy(args: argparse.Namespace):
    """The ExecutionPolicy the generate flags describe (None = defaults)."""
    retries = getattr(args, "max_shard_retries", None)
    timeout = getattr(args, "shard_timeout", None)
    if retries is None and timeout is None:
        return None
    from repro.perf import ExecutionPolicy

    kwargs = {}
    if retries is not None:
        kwargs["max_shard_retries"] = retries
    if timeout is not None:
        kwargs["shard_timeout_s"] = timeout
    return ExecutionPolicy(**kwargs)


def _checkpoint_dir(args: argparse.Namespace) -> Optional[str]:
    """Where per-shard progress persists (None = checkpointing off).

    Checkpointing turns on when either ``--resume`` or an explicit
    ``--checkpoint-dir`` is given; the default directory sits next to
    the output file so resume "just works" after a crash.
    """
    explicit = getattr(args, "checkpoint_dir", None)
    if explicit:
        return explicit
    if getattr(args, "resume", False):
        return f"{args.out}.ckpt"
    return None


def _report_execution(gen, keep_checkpoint: bool) -> None:
    """Print the run's execution/resume stats; drop a finished checkpoint."""
    report = getattr(gen, "last_execution", None)
    if report is not None:
        print(f"execution: {report.summary()}")
    store = getattr(gen, "last_checkpoint", None)
    if store is None:
        return
    if keep_checkpoint:
        print(f"checkpoint kept: {store.summary()}")
    else:
        store.discard()


def _reject_checkpoint_flags(args: argparse.Namespace) -> Optional[int]:
    """The vectorized engines stream whole blocks — no per-shard
    checkpoints to resume from, so surface the mismatch instead of
    silently ignoring the flags."""
    if getattr(args, "resume", False) or getattr(args, "checkpoint_dir", None):
        print(
            "error: --resume/--checkpoint-dir require --engine record",
            file=sys.stderr,
        )
        return 2
    return None


def _cmd_generate_calls(args: argparse.Namespace) -> int:
    from repro.telemetry import CallDatasetGenerator, GeneratorConfig

    config = GeneratorConfig(
        n_calls=args.n_calls, seed=args.seed,
        mos_sample_rate=args.mos_sample_rate,
        workers=args.workers,
    )
    cache = _open_cache(args)
    gen = CallDatasetGenerator(config)
    if args.engine == "vectorized":
        bad = _reject_checkpoint_flags(args)
        if bad is not None:
            return bad
        columns = gen.generate_columns(cache=cache)
        columns.to_jsonl(args.out)
        print(f"wrote {len(columns)} participant rows (columns) to {args.out}")
        if cache is not None:
            print(f"cache: {cache.stats().summary()}")
        return 0
    dataset = gen.generate(
        cache=cache,
        execution=_execution_policy(args),
        checkpoint_dir=_checkpoint_dir(args),
    )
    dataset.to_jsonl(args.out)
    print(f"wrote {len(dataset)} calls / {dataset.n_participants} sessions "
          f"to {args.out}")
    _report_execution(gen, keep_checkpoint=bool(args.keep_checkpoint))
    if cache is not None:
        print(f"cache: {cache.stats().summary()}")
    return 0


def _cmd_generate_corpus(args: argparse.Namespace) -> int:
    from repro.social import CorpusConfig, CorpusGenerator

    config = CorpusConfig(
        seed=args.seed,
        span_start=dt.date.fromisoformat(args.start),
        span_end=dt.date.fromisoformat(args.end),
        author_pool_size=args.authors,
        workers=args.workers,
    )
    cache = _open_cache(args)
    gen = CorpusGenerator(config)
    if args.engine == "vectorized":
        bad = _reject_checkpoint_flags(args)
        if bad is not None:
            return bad
        columns = gen.generate_columns(cache=cache)
        columns.to_jsonl(args.out)
        print(f"wrote {len(columns)} post rows (columns) to {args.out}")
        if cache is not None:
            print(f"cache: {cache.stats().summary()}")
        return 0
    corpus = gen.generate(
        cache=cache,
        execution=_execution_policy(args),
        checkpoint_dir=_checkpoint_dir(args),
    )
    corpus.to_jsonl(args.out)
    print(f"wrote {len(corpus)} posts to {args.out}")
    _report_execution(gen, keep_checkpoint=bool(args.keep_checkpoint))
    if cache is not None:
        print(f"cache: {cache.stats().summary()}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.perf import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    if args.cache_command == "stats":
        print(cache.stats().summary())
        return 0
    dropped = cache.invalidate(kind=args.kind)
    what = f"{args.kind} entries" if args.kind else "entries"
    print(f"invalidated {dropped} {what} under {cache.root}")
    return 0


def _cmd_analyze_teams(args: argparse.Namespace) -> int:
    from repro.engagement import CohortFilter, fig1_curves, mos_by_engagement
    from repro.telemetry.store import CallDataset

    dataset = CallDataset.from_jsonl(args.calls)
    if args.report:
        from repro.reporting import teams_report

        print(teams_report(dataset, min_bin_count=args.min_bin_count))
        return 0
    cohort = CohortFilter().apply(dataset)
    pool = list(cohort.participants())
    print(f"{len(dataset)} calls loaded; cohort keeps {len(cohort)} calls "
          f"/ {len(pool)} sessions")

    result = fig1_curves(
        pool, use_control_windows=not args.no_controls,
        min_bin_count=args.min_bin_count,
    )
    print("\nengagement drop from best to worst bin (%):")
    for metric in ("latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps"):
        parts = []
        for engagement in ("presence_pct", "cam_on_pct", "mic_on_pct"):
            try:
                drop = result.relative_drop_pct(metric, engagement)
                parts.append(f"{engagement.replace('_pct', '')}={drop:.0f}%")
            except Exception:
                parts.append(f"{engagement.replace('_pct', '')}=n/a")
        print(f"  {metric:16s} " + "  ".join(parts))

    try:
        mos = mos_by_engagement(dataset.participants())
        print(f"\nMOS correlations over {mos.n_rated} rated sessions:")
        for name, r in sorted(mos.correlations.items(), key=lambda kv: -kv[1]):
            print(f"  {name:14s} spearman r = {r:+.2f}")
    except Exception as exc:
        print(f"\nMOS analysis skipped: {exc}")
    return 0


def _cmd_analyze_starlink(args: argparse.Namespace) -> int:
    from repro.analysis import (
        annotate_peak,
        outage_keyword_series,
        sentiment_timeline,
        track_speeds,
    )
    from repro.social import EventCalendar, build_news_index
    from repro.social.corpus import RedditCorpus

    corpus = RedditCorpus.from_jsonl(args.posts)
    if args.report:
        from repro.reporting import starlink_report

        print(starlink_report(corpus, n_peaks=args.peaks))
        return 0
    print(f"{len(corpus)} posts loaded "
          f"({corpus.weekly_stats()['posts_per_week']:.0f}/week)")

    timeline = sentiment_timeline(corpus)
    index = build_news_index(EventCalendar())
    print("\ntop sentiment peaks:")
    for day, value in timeline.top_peaks(args.peaks):
        annotation = annotate_peak(corpus, index, day)
        news = annotation.headline or "(no news found)"
        print(f"  {day}  {int(value):4d} strong posts "
              f"({timeline.peak_polarity(day)})  {news}")

    outages = outage_keyword_series(corpus, scores=timeline.scores)
    print("\noutage-keyword spikes:")
    for day, value in outages.top_spike_days(2):
        print(f"  {day}  {int(value)} occurrences")

    if corpus.speed_shares():
        track = track_speeds(corpus)
        print(f"\nspeed tracking: {track.n_extracted}/{track.n_shared} "
              f"screenshots extracted; "
              f"subsample deviation {100 * track.max_subsample_deviation():.1f}%")
    return 0


def _cmd_usaas_stream_soak(args: argparse.Namespace) -> int:
    """Deterministic streaming-ingestion soak with arrival chaos."""
    import dataclasses
    import json

    from repro.streaming import StreamConfig, run_stream_soak
    from repro.streaming.soak import DEFAULT_STREAM_FAULTS

    faults = dataclasses.replace(
        DEFAULT_STREAM_FAULTS,
        reorder_rate=args.reorder_rate,
        duplicate_rate=args.duplicate_rate,
        crash_at_s=tuple(args.crash_at or ()),
    )
    if args.no_faults:
        faults = dataclasses.replace(
            faults, base_delay_s=0.0, reorder_rate=0.0, duplicate_rate=0.0,
        )
    config = StreamConfig(
        seed=args.seed,
        allowed_lateness_s=args.allowed_lateness_s,
        dedup_horizon_s=max(
            args.allowed_lateness_s, StreamConfig().dedup_horizon_s
        ),
        late_policy=args.late_policy,
    )
    report = run_stream_soak(
        seed=args.seed,
        duration_s=args.duration_s,
        rate_per_s=args.rate_per_s,
        faults=faults,
        config=config,
        checkpoint_dir=args.checkpoint_dir,
        journal_path=args.journal,
    )
    if args.json:
        print(json.dumps(report.counters_dict(), indent=2, sort_keys=True))
    else:
        print(f"seed {args.seed}: {args.rate_per_s:.1f} records/s for "
              f"{args.duration_s:.1f}s (simulated), "
              f"{report.crashes} crash(es)")
        print(report.summary())
        for cp in report.change_points:
            print("  " + cp.summary())
    if not report.ledger_closed:
        print("accounting violation: the exactly-once ledger did not "
              "close", file=sys.stderr)
        return 2
    if report.blind_rate > args.blind_threshold:
        print(f"detector blind: {report.detected}/"
              f"{len(report.degradations)} injected degradations "
              f"detected (blind rate {report.blind_rate:.2f} > "
              f"{args.blind_threshold:.2f})", file=sys.stderr)
        return 3
    return 0


def _cmd_usaas_integrity_soak(args: argparse.Namespace) -> int:
    """Deterministic ε-contamination sweep over the aggregation paths."""
    import json

    from repro.integrity import run_integrity_soak

    report = run_integrity_soak(
        seed=args.seed,
        n_calls=args.n_calls,
        mos_sample_rate=args.mos_sample_rate,
        corpus_weeks=args.corpus_weeks,
    )
    if args.json:
        print(json.dumps(report.counters_dict(), indent=2, sort_keys=True))
    else:
        print(f"seed {args.seed}: eps sweep "
              f"{', '.join(f'{e:g}' for e in report.eps_grid)} over "
              f"{args.n_calls} calls / {args.corpus_weeks} corpus week(s)")
        print(report.table())
        print(report.summary())
    for violation in report.violations:
        print(f"integrity violation: {violation}", file=sys.stderr)
    for miss in report.ineffective:
        print(f"sweep ineffective: {miss}", file=sys.stderr)
    return report.exit_code


def _cmd_usaas_predict(args: argparse.Namespace) -> int:
    """Fit the columnar MOS predictor and grade it against ground truth."""
    import json

    import numpy as np

    from repro.errors import InsufficientRatingsError
    from repro.prediction import (
        CoalescerConfig,
        ColumnarMosPredictor,
        emodel_prior_mos,
        evaluate_ground_truth,
        run_prediction_soak,
        synthetic_prediction_server,
    )
    from repro.resilience.faults import Arrival
    from repro.rng import derive
    from repro.telemetry.generator import GeneratorConfig
    from repro.telemetry.vectorized import VectorizedCallEngine

    config = GeneratorConfig(
        seed=args.seed,
        n_calls=args.n_calls,
        mos_sample_rate=args.mos_sample_rate,
    )
    cols, truth = VectorizedCallEngine(config).generate_with_ground_truth()
    model = ColumnarMosPredictor(l2=args.l2)
    try:
        model.fit_columns(cols)
    except InsufficientRatingsError as exc:
        print(f"cannot fit the MOS predictor: {exc}", file=sys.stderr)
        return 2

    predictions = model.predict_columns(cols)
    report_model = evaluate_ground_truth(predictions, truth, cols.platform)
    report_prior = evaluate_ground_truth(
        emodel_prior_mos(cols), truth, cols.platform
    )
    payload = {
        "seed": args.seed,
        "sessions": len(cols),
        "rated": int(np.isfinite(cols.rating).sum()),
        "model": report_model.as_dict(),
        "emodel_prior": report_prior.as_dict(),
        "weights": {k: round(v, 9) for k, v in model.weights().items()},
    }

    soak = None
    one_batch_s = None
    if args.soak_queries:
        rng = derive(args.seed, "prediction", "cli-soak")
        at_s = np.cumsum(
            rng.exponential(1.0 / args.arrival_rate_per_s, args.soak_queries)
        )
        arrivals = [
            Arrival(
                at_s=float(t),
                priority=("interactive", "batch", "batch")[i % 3],
                deadline_s=args.deadline_s,
            )
            for i, t in enumerate(at_s)
        ]
        server, _, engine = synthetic_prediction_server(
            cols, model, seed=args.seed,
            coalescer=CoalescerConfig(
                max_batch=args.max_batch, max_delay_s=args.max_delay_s
            ),
        )
        soak = run_prediction_soak(server, arrivals)
        one_batch_s = engine.cost_model.batch_cost_s(
            args.max_batch * len(cols)
        )
        payload["soak"] = soak.counters_dict()

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"seed {args.seed}: {len(cols)} sessions, "
              f"{payload['rated']} rated "
              f"({100 * args.mos_sample_rate:.1f}% prompted)")
        print("model vs experienced QoE:")
        print(report_model.table())
        print(f"E-model prior MAE {report_prior.mae:.4f} "
              f"(bias {report_prior.bias:+.4f})")
        if soak is not None:
            print(soak.summary())

    if soak is not None:
        if not soak.accounted:
            print("accounting violation: submitted != sum(terminal "
                  "states) for predict_mos", file=sys.stderr)
            return 3
        if soak.deadline_exceeded:
            print(f"deadline violation: {soak.deadline_exceeded} "
                  f"prediction(s) answered past their budget",
                  file=sys.stderr)
            return 3
        if soak.max_overrun_s > one_batch_s:
            print(f"deadline violation: answered {soak.max_overrun_s:.4f}s "
                  f"over budget (> one batch cost {one_batch_s:.4f}s)",
                  file=sys.stderr)
            return 3
    return 0


def _cmd_usaas(args: argparse.Namespace) -> int:
    if getattr(args, "usaas_command", None) == "predict":
        return _cmd_usaas_predict(args)
    if getattr(args, "usaas_command", None) == "soak":
        return _cmd_usaas_soak(args)
    if getattr(args, "usaas_command", None) == "cluster-soak":
        return _cmd_usaas_cluster_soak(args)
    if getattr(args, "usaas_command", None) == "stream-soak":
        return _cmd_usaas_stream_soak(args)
    if getattr(args, "usaas_command", None) == "integrity-soak":
        return _cmd_usaas_integrity_soak(args)
    from repro.core.usaas import (
        UsaasQuery,
        UsaasService,
        social_signals,
        telemetry_signals,
    )
    from repro.errors import (
        DeadlineExceededError,
        DegradedServiceError,
        QueryRejectedError,
    )
    from repro.resilience import ResilienceConfig
    from repro.social.corpus import RedditCorpus
    from repro.telemetry.store import CallDataset

    config = ResilienceConfig(min_sources=args.min_sources, strict=args.strict)
    service = UsaasService(resilience=config)
    cache = _open_cache(args)
    if args.calls:
        service.register_source(
            "telemetry",
            lambda: telemetry_signals(
                CallDataset.from_jsonl(args.calls), network=args.network
            ),
        )
    elif cache is not None:
        # No explicit dataset: simulate the default one through the
        # artifact cache, so repeated queries hit warm cache instead of
        # resimulating.
        from repro.telemetry import CallDatasetGenerator, GeneratorConfig

        service.register_source(
            "telemetry",
            lambda: telemetry_signals(
                CallDatasetGenerator(GeneratorConfig()).generate(cache=cache),
                network=args.network,
            ),
        )
    if args.posts:
        service.register_source(
            "social",
            lambda: social_signals(
                RedditCorpus.from_jsonl(args.posts), network=args.network
            ),
        )
    elif cache is not None:
        from repro.social import CorpusConfig, CorpusGenerator

        service.register_source(
            "social",
            lambda: social_signals(
                CorpusGenerator(CorpusConfig()).generate(cache=cache),
                network=args.network,
            ),
        )
    query = UsaasQuery(network=args.network, service=args.service)
    serving = (
        args.deadline_s is not None
        or args.priority != "interactive"
        or args.max_pending is not None
    )
    try:
        if serving:
            # The overload-safe path: admission control + deadline
            # budget around the same answer() call.
            from repro.serving import UsaasServer

            server = UsaasServer(
                service,
                max_pending=args.max_pending or 16,
            )
            report = server.serve(
                query, priority=args.priority, deadline_s=args.deadline_s
            )
        else:
            report = service.answer(query)
    except (QueryRejectedError, DeadlineExceededError) as exc:
        # Soft refusal: the query was shed or its budget ran out.  The
        # service itself is still up — distinct exit code from hard
        # degradation so callers can retry with backoff.
        print(f"query not served: {exc}", file=sys.stderr)
        return 3
    except DegradedServiceError as exc:
        # Hard degradation: too few sources survived to answer at all.
        print(f"degraded service: {exc}", file=sys.stderr)
        from repro.resilience import health_table

        print(health_table(iter(service.source_health())), file=sys.stderr)
        return 2
    print(report.summary)
    print(f"\n({report.n_implicit} implicit + {report.n_explicit} explicit "
          f"signals)")
    if report.source_health:
        print("\nsource health:")
        print(report.health_table())
    integrity_table = report.integrity_table()
    if integrity_table:
        print("\ntrust:")
        print(integrity_table)
    return 0


def _cmd_usaas_soak(args: argparse.Namespace) -> int:
    """Deterministic overload soak against a synthetic USaaS service."""
    import json

    from repro.core.usaas import UsaasQuery
    from repro.resilience import FaultPlan, ManualClock
    from repro.resilience.faults import LoadSpikeSpec
    from repro.serving import UsaasServer, run_soak
    from repro.serving.soak import (
        estimated_service_time_s,
        synthetic_soak_service,
    )

    clock = ManualClock()
    plan = FaultPlan(seed=args.seed, clock=clock)
    service = synthetic_soak_service(
        plan, slow_s=args.slow_s, include_flaky=args.include_flaky
    )
    rate = args.overload / estimated_service_time_s(args.slow_s)
    arrivals = plan.load_spikes("soak", LoadSpikeSpec(
        rate_per_s=rate,
        duration_s=args.duration_s,
        priority_mix=(
            ("interactive", 0.6), ("batch", 0.3), ("monitoring", 0.1),
        ),
        deadline_s=args.deadline_s,
    ))
    server = UsaasServer(
        service,
        max_pending=args.max_pending,
        shed_policy=args.shed_policy,
    )
    query = UsaasQuery(network="starlink", service="teams")
    report = run_soak(server, arrivals, query_for=lambda arrival: query)
    if args.json:
        print(json.dumps(report.counters_dict(), indent=2, sort_keys=True))
    else:
        print(f"seed {args.seed}: {args.overload:.1f}x capacity for "
              f"{args.duration_s:.1f}s (simulated)")
        print(report.summary())
        print()
        print(report.metrics.table())
    if not report.accounted:
        print("accounting violation: submitted != sum(terminal states)",
              file=sys.stderr)
        return 2
    if not report.drain.clean:
        print("drain left work behind: " + report.drain.summary(),
              file=sys.stderr)
        return 2
    return 0


def _parse_tenant(spec: str):
    """``name:weight[:rate_per_s[:burst]]`` -> :class:`TenantPolicy`."""
    import argparse as _argparse

    from repro.errors import ConfigError
    from repro.serving import TenantPolicy

    parts = spec.split(":")
    if not 1 <= len(parts) <= 4:
        raise _argparse.ArgumentTypeError(
            f"expected name:weight[:rate[:burst]], got {spec!r}"
        )
    try:
        return TenantPolicy(
            name=parts[0],
            weight=float(parts[1]) if len(parts) > 1 else 1.0,
            rate_per_s=float(parts[2]) if len(parts) > 2 else None,
            burst=float(parts[3]) if len(parts) > 3 else 1.0,
        )
    except (ValueError, ConfigError) as exc:
        raise _argparse.ArgumentTypeError(f"bad tenant {spec!r}: {exc}")


def _parse_replica_fault(spec: str):
    """``replica:kind:at_s[:...]`` -> :class:`ReplicaFaultSpec`.

    Per-kind trailing fields: ``crash``/``hang`` take an optional
    ``down_s`` (0 = never recovers); ``slow`` takes ``down_s`` and
    ``slow_extra_s``; ``flap`` takes ``down_s``, ``period_s`` and an
    optional ``flaps`` count.
    """
    import argparse as _argparse

    from repro.errors import ConfigError
    from repro.resilience import ReplicaFaultSpec

    parts = spec.split(":")
    if len(parts) < 3:
        raise _argparse.ArgumentTypeError(
            f"expected replica:kind:at_s[...], got {spec!r}"
        )
    replica, kind = parts[0], parts[1]
    try:
        at_s = float(parts[2])
        rest = [float(x) for x in parts[3:]]
        if kind in ("crash", "hang"):
            if len(rest) > 1:
                raise ValueError("crash/hang take at most one down_s")
            return ReplicaFaultSpec(
                replica=replica, kind=kind, at_s=at_s,
                down_s=rest[0] if rest else 0.0,
            )
        if kind == "slow":
            if len(rest) != 2:
                raise ValueError("slow needs down_s and slow_extra_s")
            return ReplicaFaultSpec(
                replica=replica, kind=kind, at_s=at_s,
                down_s=rest[0], slow_extra_s=rest[1],
            )
        if kind == "flap":
            if len(rest) not in (2, 3):
                raise ValueError("flap needs down_s, period_s[, flaps]")
            return ReplicaFaultSpec(
                replica=replica, kind=kind, at_s=at_s,
                down_s=rest[0], period_s=rest[1],
                flaps=int(rest[2]) if len(rest) == 3 else 2,
            )
        return ReplicaFaultSpec(replica=replica, kind=kind, at_s=at_s)
    except (ValueError, ConfigError) as exc:
        raise _argparse.ArgumentTypeError(f"bad fault {spec!r}: {exc}")


def _cmd_usaas_cluster_soak(args: argparse.Namespace) -> int:
    """Deterministic multi-replica soak with scheduled replica faults."""
    import json

    from repro.core.usaas import UsaasQuery
    from repro.resilience import ReplicaFaultSpec
    from repro.resilience.faults import LoadSpikeSpec
    from repro.serving import run_cluster_soak, synthetic_cluster
    from repro.serving.soak import estimated_service_time_s

    tenants = tuple(args.tenant or ())
    cluster, plan = synthetic_cluster(
        seed=args.seed,
        n_replicas=args.replicas,
        slow_s=args.slow_s,
        max_pending=args.max_pending,
        shed_policy=args.shed_policy,
        tenants=tenants,
        include_flaky=args.include_flaky,
    )
    # One replica serves ~1/est queries per simulated second, so the
    # cluster-wide overload factor scales the rate by the replica count.
    rate = (
        args.overload * args.replicas
        / estimated_service_time_s(args.slow_s)
    )
    tenant_mix = (
        tuple((t.name, t.weight) for t in tenants)
        if tenants else (("default", 1.0),)
    )
    arrivals = plan.cluster_load_spikes(
        "cluster-soak",
        LoadSpikeSpec(
            rate_per_s=rate,
            duration_s=args.duration_s,
            priority_mix=(
                ("interactive", 0.6), ("batch", 0.3), ("monitoring", 0.1),
            ),
            deadline_s=args.deadline_s,
        ),
        tenant_mix=tenant_mix,
    )
    fault_specs = args.fault
    if fault_specs is None:
        # Default outage: crash the second replica mid-spike, recover
        # for the tail of the spike — the canonical failover story.
        victim = "r1" if args.replicas > 1 else "r0"
        fault_specs = [ReplicaFaultSpec(
            replica=victim, kind="crash",
            at_s=args.duration_s * 0.375,
            down_s=args.duration_s * 0.25,
        )]
    events = (
        plan.replica_faults("cluster-soak", *fault_specs)
        if fault_specs else ()
    )
    query = UsaasQuery(network="starlink", service="teams")
    report = run_cluster_soak(
        cluster, arrivals, events, query_for=lambda arrival: query
    )
    if args.json:
        print(json.dumps(report.counters_dict(), indent=2, sort_keys=True))
    else:
        print(f"seed {args.seed}: {args.overload:.1f}x capacity across "
              f"{args.replicas} replicas for {args.duration_s:.1f}s "
              f"(simulated)")
        print(report.summary())
        print()
        print(report.metrics.table())
    if not report.accounted:
        print("accounting violation: cluster ledger did not close",
              file=sys.stderr)
        return 2
    if report.drain["leftover"]:
        print(f"drain left {report.drain['leftover']} queries behind",
              file=sys.stderr)
        return 2
    if report.submitted and not (report.served + report.served_degraded):
        print("total outage: nothing was served", file=sys.stderr)
        return 3
    return 0


def _cmd_plan_launches(args: argparse.Namespace) -> int:
    from repro.starlink.planning import LaunchPlanner, plan_outcome

    candidates = []
    for spec in args.candidates.split(","):
        year, month = spec.strip().split("-")
        candidates.append((int(year), int(month)))
    baseline = plan_outcome({})
    planner = LaunchPlanner(objective=args.objective)
    planned = planner.plan(args.budget, candidates)
    print(f"baseline: mean satisfaction {baseline.mean_satisfaction:.3f}, "
          f"worst month {baseline.min_satisfaction:.3f}")
    print(f"planned (+{args.budget} launches): "
          f"{planned.extra_launches}")
    print(f"          mean satisfaction {planned.mean_satisfaction:.3f}, "
          f"worst month {planned.min_satisfaction:.3f}")
    return 0


def _cmd_tune_mitigation(args: argparse.Namespace) -> int:
    from repro.netsim.link import LinkProfile
    from repro.netsim.tuning import MitigationTuner

    profile = LinkProfile(
        base_latency_ms=args.latency,
        loss_rate=args.loss,
        jitter_ms=args.jitter,
        bandwidth_mbps=args.bandwidth,
        burstiness=args.burstiness,
    )
    tuner = MitigationTuner(
        fec_budgets_pct=(1.0, 2.0, 4.0), objective=args.objective
    )
    result = tuner.tune(profile)
    print(f"path: {profile}")
    print(f"recommendation: jitter buffer "
          f"{result.stack.jitter_buffer_ms:.0f} ms, FEC budget "
          f"{result.stack.fec_budget_pct:.0f}%")
    print(f"predicted {result.objective} quality: "
          f"{result.default_score:.3f} -> {result.score:.3f} "
          f"({result.gain:+.3f})")
    return 0


def _add_robustness_flags(p: argparse.ArgumentParser) -> None:
    """The crash-safety knobs shared by both generate subcommands."""
    p.add_argument("--max-shard-retries", type=int, default=None,
                   metavar="N",
                   help="requeue a failed shard up to N times before the "
                        "run fails with a ShardExecutionError (default 2)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-shard watchdog budget; hung workers are "
                        "reclaimed and the shard requeued (default: off)")
    p.add_argument("--resume", action="store_true",
                   help="checkpoint per-shard progress next to --out and "
                        "re-execute only shards a previous (interrupted) "
                        "run did not complete")
    p.add_argument("--checkpoint-dir", default=None,
                   help="explicit checkpoint directory (implies --resume "
                        "semantics; default: <out>.ckpt when --resume)")
    p.add_argument("--keep-checkpoint", action="store_true",
                   help="keep the checkpoint directory after a "
                        "successful run instead of discarding it")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolbox for 'Don't Forget the User' "
                    "(HotNets '23)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate-calls", help="simulate a call dataset")
    p.add_argument("--n-calls", type=int, default=500)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--mos-sample-rate", type=float, default=0.005)
    p.add_argument("--engine", choices=("record", "vectorized"),
                   default="record",
                   help="record = per-call objects (reference path); "
                        "vectorized = block simulation emitting columns "
                        "JSONL (~10x faster, statistically equivalent)")
    p.add_argument("--workers", type=int, default=1,
                   help="generation processes (1 = serial, 0 = one per "
                        "CPU); output is byte-identical either way")
    p.add_argument("--cache-dir",
                   help="content-addressed artifact cache directory; "
                        "matching configs load instead of resimulating")
    p.add_argument("--out", required=True)
    _add_robustness_flags(p)
    p.set_defaults(fn=_cmd_generate_calls)

    p = sub.add_parser("generate-corpus", help="simulate an r/Starlink corpus")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--start", default="2021-01-01")
    p.add_argument("--end", default="2022-12-31")
    p.add_argument("--authors", type=int, default=4000)
    p.add_argument("--engine", choices=("record", "vectorized"),
                   default="record",
                   help="record = per-post objects (reference path); "
                        "vectorized = per-day block simulation emitting "
                        "columns JSONL (~8x faster, statistically "
                        "equivalent)")
    p.add_argument("--workers", type=int, default=1,
                   help="generation processes (1 = serial, 0 = one per "
                        "CPU); output is byte-identical either way")
    p.add_argument("--cache-dir",
                   help="content-addressed artifact cache directory; "
                        "matching configs load instead of resimulating")
    p.add_argument("--out", required=True)
    _add_robustness_flags(p)
    p.set_defaults(fn=_cmd_generate_corpus)

    p = sub.add_parser("cache", help="inspect or drop cached artifacts")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry counts, bytes and session hit/miss counters"),
        ("invalidate", "drop cached artifacts (all, or one --kind)"),
    ):
        cp = cache_sub.add_parser(name, help=help_text)
        cp.add_argument("--cache-dir", required=True)
        if name == "invalidate":
            cp.add_argument("--kind",
                            choices=("calls", "corpus",
                                     "participant-columns",
                                     "participant-columns-vec",
                                     "corpus-columns",
                                     "corpus-columns-vec"),
                            help="only drop artifacts of this kind")
        cp.set_defaults(fn=_cmd_cache)

    p = sub.add_parser("analyze-teams", help="run the §3 analyses")
    p.add_argument("--calls", required=True)
    p.add_argument("--no-controls", action="store_true",
                   help="skip the hold-other-metrics-constant windows")
    p.add_argument("--min-bin-count", type=int, default=8)
    p.add_argument("--report", action="store_true",
                   help="emit the full §3 study report instead")
    p.set_defaults(fn=_cmd_analyze_teams)

    p = sub.add_parser("analyze-starlink", help="run the §4 analyses")
    p.add_argument("--posts", required=True)
    p.add_argument("--peaks", type=int, default=3)
    p.add_argument("--report", action="store_true",
                   help="emit the full §4 study report instead")
    p.set_defaults(fn=_cmd_analyze_starlink)

    p = sub.add_parser("plan-launches",
                       help="sentiment-aware launch planning (§6)")
    p.add_argument("--budget", type=int, default=3)
    p.add_argument("--candidates", default="2021-7,2021-12,2022-2,2022-9",
                   help="comma-separated YYYY-M months")
    p.add_argument("--objective", choices=("mean", "worst_month"),
                   default="mean")
    p.set_defaults(fn=_cmd_plan_launches)

    p = sub.add_parser("tune-mitigation",
                       help="per-cohort mitigation tuning (§6)")
    p.add_argument("--latency", type=float, default=30.0)
    p.add_argument("--loss", type=float, default=0.005)
    p.add_argument("--jitter", type=float, default=8.0)
    p.add_argument("--bandwidth", type=float, default=2.5)
    p.add_argument("--burstiness", type=float, default=0.4)
    p.add_argument("--objective",
                   choices=("overall", "interactivity", "video"),
                   default="overall")
    p.set_defaults(fn=_cmd_tune_mitigation)

    p = sub.add_parser(
        "usaas", help="answer a §5 USaaS query",
        epilog="exit codes: 0 = served; 2 = hard degradation (too few "
               "sources survived); 3 = shed or deadline exceeded (the "
               "service is up but refused this query — retry with "
               "backoff)",
    )
    p.add_argument("--calls", help="call dataset JSONL (implicit signals)")
    p.add_argument("--posts", help="corpus JSONL (explicit signals)")
    p.add_argument("--network", default="starlink")
    p.add_argument("--service", default=None)
    p.add_argument("--min-sources", type=int, default=1,
                   help="fewest surviving sources before the query "
                        "hard-fails (exit 2)")
    p.add_argument("--strict", action="store_true",
                   help="treat any source failure as hard degradation")
    p.add_argument("--cache-dir",
                   help="simulate default datasets through the artifact "
                        "cache when --calls/--posts are not given")
    p.add_argument("--deadline-s", type=float, default=None,
                   metavar="SECONDS",
                   help="per-query deadline budget; retries and backoff "
                        "are clamped to it and exceeding it exits 3")
    p.add_argument("--max-pending", type=int, default=None, metavar="N",
                   help="bounded admission queue in front of the query "
                        "(engages the serving path; default 16)")
    p.add_argument("--priority",
                   choices=("interactive", "batch", "monitoring"),
                   default="interactive",
                   help="priority class for admission/shedding")
    usaas_sub = p.add_subparsers(dest="usaas_command", required=False)
    sp = usaas_sub.add_parser(
        "soak",
        help="deterministic overload soak on a synthetic service",
        description="Drive a synthetic USaaS service through a seeded "
                    "load spike on a simulated clock: every arrival, "
                    "retry, backoff and deadline expiry is derived from "
                    "--seed, so the same invocation always produces "
                    "byte-identical counters.",
    )
    sp.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sp.add_argument("--overload", type=float, default=5.0, metavar="X",
                    help="arrival rate as a multiple of service capacity")
    sp.add_argument("--duration-s", type=float, default=4.0,
                    help="spike duration in simulated seconds")
    sp.add_argument("--deadline-s", type=float, default=1.0,
                    help="per-query deadline budget (simulated seconds)")
    sp.add_argument("--max-pending", type=int, default=8)
    sp.add_argument("--shed-policy",
                    choices=("reject", "lifo", "priority"),
                    default="priority")
    sp.add_argument("--slow-s", type=float, default=0.05,
                    help="simulated per-source fetch latency")
    sp.add_argument("--include-flaky", action="store_true",
                    help="add an always-failing source so answers are "
                         "degraded and retries burn deadline budget")
    sp.add_argument("--json", action="store_true",
                    help="emit the stable counters dict as JSON")
    cp = usaas_sub.add_parser(
        "cluster-soak",
        help="deterministic multi-replica soak with replica faults",
        description="Drive an N-replica USaaS cluster through a seeded "
                    "load spike while replicas crash, hang, slow down or "
                    "flap on schedule.  Routing (consistent hashing), "
                    "failover (per-replica circuit breakers driving ring "
                    "rebalance), per-tenant quotas and weighted-fair "
                    "admission all run on simulated clocks, so the same "
                    "--seed always produces byte-identical counters.",
        epilog="exit codes: 0 = soak completed and the cluster ledger "
               "closed exactly once per query; 2 = accounting violation "
               "or drain left work behind (a bug, not load); 3 = total "
               "outage — queries arrived but none were served",
    )
    cp.add_argument("--seed", type=int, default=DEFAULT_SEED)
    cp.add_argument("--replicas", type=int, default=3, metavar="N",
                    help="number of simulated replicas on the hash ring")
    cp.add_argument("--overload", type=float, default=5.0, metavar="X",
                    help="arrival rate as a multiple of *cluster* "
                         "capacity (replicas x per-replica capacity)")
    cp.add_argument("--duration-s", type=float, default=4.0,
                    help="spike duration in simulated seconds")
    cp.add_argument("--deadline-s", type=float, default=1.0,
                    help="per-query deadline budget (simulated seconds)")
    cp.add_argument("--max-pending", type=int, default=8,
                    help="per-replica bounded admission queue")
    cp.add_argument("--shed-policy",
                    choices=("reject", "lifo", "priority"),
                    default="priority")
    cp.add_argument("--slow-s", type=float, default=0.05,
                    help="simulated per-source fetch latency")
    cp.add_argument("--include-flaky", action="store_true",
                    help="add an always-failing source per replica")
    cp.add_argument("--fault", action="append", metavar="SPEC",
                    type=_parse_replica_fault,
                    help="replica fault replica:kind:at_s[:...] — "
                         "crash/hang take [:down_s]; slow takes "
                         ":down_s:slow_extra_s; flap takes "
                         ":down_s:period_s[:flaps].  Repeatable; default "
                         "is one mid-spike crash of r1 with recovery; "
                         "pass --no-faults for a clean run")
    cp.add_argument("--no-faults", dest="fault", action="store_const",
                    const=[], help=argparse.SUPPRESS)
    cp.add_argument("--tenant", action="append", metavar="SPEC",
                    type=_parse_tenant,
                    help="tenant name:weight[:rate_per_s[:burst]] — "
                         "weight drives weighted-fair admission, rate "
                         "adds an absolute token-bucket quota.  "
                         "Repeatable; arrivals are drawn across the "
                         "configured tenants by weight")
    cp.add_argument("--json", action="store_true",
                    help="emit the stable counters dict as JSON")
    ssp = usaas_sub.add_parser(
        "stream-soak",
        help="deterministic streaming-ingestion soak with arrival chaos",
        description="Mangle a seeded synthetic measurement stream "
                    "(delay, reorder, duplicate, optional crashes) and "
                    "drive it through the watermark/checkpoint pipeline "
                    "on a simulated clock.  Injected network "
                    "degradations must be answered by experience "
                    "change points; every delivery must land in "
                    "exactly one ledger bucket.  Same --seed, same "
                    "bytes — crashes included.",
        epilog="exit codes: 0 = ledger closed and the detector caught "
               "the injected degradations; 2 = accounting violation "
               "(a delivery was lost or double-counted — a bug, not "
               "chaos); 3 = detector blind — more degradations were "
               "missed than --blind-threshold allows",
    )
    ssp.add_argument("--seed", type=int, default=DEFAULT_SEED)
    ssp.add_argument("--duration-s", type=float, default=600.0,
                     help="stream span in simulated seconds")
    ssp.add_argument("--rate-per-s", type=float, default=8.0,
                     help="records per simulated second")
    ssp.add_argument("--reorder-rate", type=float, default=0.25,
                     help="fraction of deliveries picking up an extra "
                          "reordering delay")
    ssp.add_argument("--duplicate-rate", type=float, default=0.05,
                     help="fraction of records delivered twice")
    ssp.add_argument("--crash-at", action="append", type=float,
                     metavar="SECONDS",
                     help="crash the consumer at this simulated instant "
                          "and resume from the latest checkpoint "
                          "(repeatable)")
    ssp.add_argument("--no-faults", action="store_true",
                     help="clean transport: no delay, reorder or "
                          "duplication")
    ssp.add_argument("--allowed-lateness-s", type=float, default=30.0,
                     help="watermark lag; records older than this are "
                          "late")
    ssp.add_argument("--late-policy", choices=("drop", "side"),
                     default="drop",
                     help="drop late records or keep them on a side "
                          "channel (counted either way)")
    ssp.add_argument("--blind-threshold", type=float, default=0.0,
                     help="max tolerated fraction of injected "
                          "degradations the detector may miss before "
                          "exit 3")
    ssp.add_argument("--checkpoint-dir",
                     help="where operator state snapshots go (a temp "
                          "dir is used when crashes are scheduled "
                          "without one)")
    ssp.add_argument("--journal", metavar="PATH",
                     help="append-only emission journal (JSONL)")
    ssp.add_argument("--json", action="store_true",
                     help="emit the stable counters dict as JSON")
    ip = usaas_sub.add_parser(
        "integrity-soak",
        help="deterministic eps-contamination sweep of the trust-weighted "
             "aggregates",
        description="Inject seeded adversarial data faults — review "
                    "brigades, bot author rings, rating-fraud campaigns, "
                    "sensor drift, malformed stream records — at each "
                    "contamination level eps, then aggregate the "
                    "contaminated data both ways: the naive mean versus "
                    "the trust-weighted robust estimators.  The sweep "
                    "proves the robust path holds its documented error "
                    "bound where the naive mean breaks, pins the record "
                    "and columnar paths equal, and checks the stream "
                    "boundary quarantines every malformed record.  Same "
                    "--seed, same bytes.",
        epilog="exit codes: 0 = trust-weighted aggregates held their "
               "bounds at every eps and the naive mean broke at the top "
               "eps; 2 = a robust aggregate escaped its bound, the "
               "columnar path diverged from the record path, or the "
               "stream boundary leaked a malformed record (a bug, not "
               "contamination); 3 = the sweep proved nothing — the "
               "attack was too weak to break the naive mean, or trust "
               "scoring flagged nothing under attack / flagged clean "
               "contributors at eps=0",
    )
    ip.add_argument("--seed", type=int, default=DEFAULT_SEED)
    ip.add_argument("--n-calls", type=int, default=240,
                    help="simulated meetings per eps level")
    ip.add_argument("--mos-sample-rate", type=float, default=0.3,
                    help="fraction of sessions prompted for a rating")
    ip.add_argument("--corpus-weeks", type=int, default=4,
                    help="span of the synthetic social corpus")
    ip.add_argument("--json", action="store_true",
                    help="emit the stable counters dict as JSON")
    pp = usaas_sub.add_parser(
        "predict",
        help="fit the columnar MOS predictor and grade it against "
             "simulator ground truth",
        description="Simulate a call dataset (vectorized engine), fit "
                    "ridge regression on the sparse rating column, and "
                    "compare its per-platform MAE/bias against the "
                    "experienced-QoE ground truth the simulator knows "
                    "— alongside the training-free E-model prior used "
                    "as the deadline fallback.  With --soak-queries, "
                    "also drive the micro-batching predict_mos serving "
                    "path on a simulated clock and close the books.",
        epilog="exit codes: 0 = fitted and (if soaked) every "
               "prediction served, degraded or shed within the ladder's "
               "bounds; 2 = too few rated sessions to fit — raise "
               "--mos-sample-rate or --n-calls; 3 = serving invariant "
               "violated (accounting open, or an answer overran its "
               "deadline by more than one batch cost)",
    )
    pp.add_argument("--seed", type=int, default=DEFAULT_SEED)
    pp.add_argument("--n-calls", type=int, default=400,
                    help="simulated meetings to train/evaluate on")
    pp.add_argument("--mos-sample-rate", type=float, default=0.3,
                    help="fraction of sessions prompted for a rating "
                         "(the paper's real-world rate is ~0.005; "
                         "training needs more)")
    pp.add_argument("--l2", type=float, default=1.0,
                    help="ridge regularisation strength")
    pp.add_argument("--soak-queries", type=int, default=0,
                    help="also run a predict_mos serving soak with this "
                         "many queries (0 = skip)")
    pp.add_argument("--arrival-rate-per-s", type=float, default=200.0,
                    help="soak arrival rate (queries per simulated "
                         "second)")
    pp.add_argument("--deadline-s", type=float, default=0.05,
                    help="per-query deadline budget in the soak")
    pp.add_argument("--max-batch", type=int, default=16,
                    help="coalescer flush size")
    pp.add_argument("--max-delay-s", type=float, default=0.01,
                    help="coalescer age bound (simulated seconds)")
    pp.add_argument("--json", action="store_true",
                    help="emit the evaluation (and soak counters) as "
                         "JSON")
    p.set_defaults(fn=_cmd_usaas)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

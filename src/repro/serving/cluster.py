"""Multi-replica USaaS cluster: routing, quotas, failover, accounting.

PR 5 made one :class:`~repro.serving.server.UsaasServer` overload-safe.
This module scales the claim out: :class:`UsaasCluster` is a routing
front-end over N replicas that keeps "millions of users" measurable:

* **consistent-hash routing** — every query carries a key (user /
  source id); a :class:`~repro.serving.hashring.HashRing` maps it to a
  primary replica plus a deterministic failover ladder, so a user's
  queries land on the same replica until membership changes;
* **per-tenant quotas** — a token bucket per tenant on the router's
  injected clock plus stride-scheduler weighted-fair admission:
  under congestion each tenant's admitted share converges to its
  configured weight, and excess is shed as ``quota_exceeded``;
* **replica failover** — each replica sits behind a PR 1
  :class:`~repro.resilience.breaker.CircuitBreaker`.  The router
  discovers failures the way real routers do — by probing: a probe of
  a down replica records a breaker failure and walks to the next
  ladder entry; when a breaker opens, the replica is removed from the
  ring (rebalance on loss), and a half-open probe that finds it
  healthy again closes the breaker and re-adds it (rebalance on join);
* **exact-once accounting** — every ``submit()`` terminates exactly
  once: shed at the router (quota / no live replica) or handed to
  exactly one replica, whose own exactly-once machinery takes over.
  ``metrics().check_exact_once()`` asserts the cluster-wide ledger:
  ``submitted == router_shed + sum(replica.submitted)``.

Every replica runs on its *own* :class:`ManualClock` (simulated time
advances per replica, so N replicas genuinely serve in parallel), while
the router keeps its own clock for arrivals, quotas and breaker
cool-downs.  All of it is deterministic: same seed, same counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, QueryRejectedError
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.clock import Clock, ManualClock
from repro.serving.admission import Ticket
from repro.serving.hashring import HashRing
from repro.serving.server import QueryOutcome, ServingMetrics, UsaasServer


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission contract at the router.

    ``weight`` drives weighted-fair sharing under congestion (a weight-2
    tenant gets twice the admissions of a weight-1 tenant once the
    cluster queues fill).  ``rate_per_s`` / ``burst`` configure an
    absolute token-bucket quota on the router clock; ``None`` means no
    absolute cap.
    """

    name: str
    weight: float = 1.0
    rate_per_s: Optional[float] = None
    burst: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigError("tenant weight must be positive")
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ConfigError("rate_per_s must be positive")
        if self.burst < 1.0:
            raise ConfigError("burst must be >= 1")


@dataclass
class TenantState:
    """Mutable per-tenant accounting at the router."""

    policy: TenantPolicy
    tokens: float = 0.0
    last_refill_s: float = 0.0
    virtual_time: float = 0.0
    submitted: int = 0
    admitted: int = 0
    shed_quota: int = 0
    shed_fair: int = 0
    shed_no_replica: int = 0
    shed_replica: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed_quota": self.shed_quota,
            "shed_fair": self.shed_fair,
            "shed_no_replica": self.shed_no_replica,
            "shed_replica": self.shed_replica,
        }


#: Replica lifecycle states as the *cluster* (ground truth) sees them.
#: The router only learns about them by probing.
REPLICA_STATES: Tuple[str, ...] = ("up", "down", "hung")


class ReplicaHandle:
    """One simulated replica: a server, its own clock, its fault state."""

    def __init__(
        self,
        name: str,
        server: UsaasServer,
        clock: ManualClock,
    ) -> None:
        if not name:
            raise ConfigError("replica name must be non-empty")
        self.name = name
        self.server = server
        self.clock = clock
        self.state = "up"
        self.slow_extra_s = 0.0
        self.crashes = 0
        self.hangs = 0
        self.recoveries = 0

    @property
    def available(self) -> bool:
        return self.state == "up"

    def has_runnable(self) -> bool:
        return self.available and self.server.has_pending()

    def sync_to(self, t: float) -> None:
        """Advance this replica's clock to router time ``t`` (never back)."""
        gap = t - self.clock.now()
        if gap > 0:
            self.clock.advance(gap)

    def run_next(self) -> Optional[QueryOutcome]:
        """Run one queued query, paying any active slow-fault tax."""
        if not self.has_runnable():
            return None
        if self.slow_extra_s > 0:
            self.clock.advance(self.slow_extra_s)
        return self.server.run_next()

    def crash(self) -> List[QueryOutcome]:
        """Process death: queue dies with it, accounted as ``failed``."""
        self.state = "down"
        self.crashes += 1
        return self.server.fail_pending(f"replica {self.name} crashed")

    def hang(self) -> None:
        """Stop serving but keep the queue (resumes on recover)."""
        self.state = "hung"
        self.hangs += 1

    def recover(self, t: float) -> None:
        self.state = "up"
        self.recoveries += 1
        self.sync_to(t)


@dataclass(frozen=True)
class ClusterMetrics:
    """Point-in-time cluster ledger: replicas + router + tenants."""

    replicas: Tuple[Tuple[str, ServingMetrics], ...]
    router_shed: Tuple[Tuple[str, int], ...]
    tenants: Tuple[Tuple[str, Dict[str, object]], ...]
    submitted: int
    routed: Tuple[Tuple[str, int], ...]
    rebalances: int

    @property
    def router_shed_total(self) -> int:
        return sum(n for _, n in self.router_shed)

    def replica_metrics(self, name: str) -> ServingMetrics:
        for replica, metrics in self.replicas:
            if replica == name:
                return metrics
        raise ConfigError(f"unknown replica {name!r}")

    def totals(self) -> Dict[str, int]:
        """Cluster terminal counters: sum of replicas + router shed."""
        out = {
            "submitted": self.submitted,
            "served": 0,
            "served_degraded": 0,
            "shed": self.router_shed_total,
            "deadline_exceeded": 0,
            "failed": 0,
        }
        for _, metrics in self.replicas:
            for _, counters in metrics.per_class:
                out["served"] += counters.served
                out["served_degraded"] += counters.served_degraded
                out["shed"] += counters.shed
                out["deadline_exceeded"] += counters.deadline_exceeded
                out["failed"] += counters.failed
        return out

    def check_exact_once(self) -> None:
        """Raise unless the cluster-wide ledger closes exactly.

        Two equalities must hold: every submission was either shed at
        the router or counted by exactly one replica, and every
        replica-side submission reached exactly one terminal state.
        """
        replica_submitted = sum(
            m.submitted for _, m in self.replicas
        )
        if self.submitted != self.router_shed_total + replica_submitted:
            raise ConfigError(
                f"cluster accounting violated: {self.submitted} submitted "
                f"!= {self.router_shed_total} router-shed + "
                f"{replica_submitted} replica-submitted"
            )
        totals = self.totals()
        terminal = (totals["served"] + totals["served_degraded"]
                    + totals["shed"] + totals["deadline_exceeded"]
                    + totals["failed"])
        if self.submitted != terminal:
            raise ConfigError(
                f"cluster accounting violated: {self.submitted} submitted "
                f"!= {terminal} terminal outcomes"
            )

    def latencies(self) -> List[float]:
        out: List[float] = []
        for _, metrics in self.replicas:
            out.extend(metrics.latencies())
        return out

    def p50_admitted_s(self) -> Optional[float]:
        return _percentile(self.latencies(), 50)

    def p99_admitted_s(self) -> Optional[float]:
        return _percentile(self.latencies(), 99)

    @property
    def shed_rate(self) -> float:
        totals = self.totals()
        return (
            totals["shed"] / totals["submitted"] if totals["submitted"]
            else 0.0
        )

    def as_dict(self) -> Dict[str, object]:
        """Stable JSON-ready ledger for byte-identity assertions."""
        return {
            "submitted": self.submitted,
            "totals": self.totals(),
            "router_shed": dict(self.router_shed),
            "routed": dict(self.routed),
            "rebalances": self.rebalances,
            "replicas": {
                name: metrics.as_dict() for name, metrics in self.replicas
            },
            "tenants": {name: stats for name, stats in self.tenants},
        }

    def table(self) -> str:
        """Fixed-width per-replica totals table (CLI / log friendly)."""
        headers = ("replica", "submitted", "served", "degraded", "shed",
                   "deadline", "failed", "p99")
        rows: List[Tuple[str, ...]] = [headers]
        for name, metrics in self.replicas:
            served = degraded = shed = deadline = failed = 0
            for _, c in metrics.per_class:
                served += c.served
                degraded += c.served_degraded
                shed += c.shed
                deadline += c.deadline_exceeded
                failed += c.failed
            p99 = metrics.p99_latency_s()
            rows.append((
                name, str(metrics.submitted), str(served), str(degraded),
                str(shed), str(deadline), str(failed),
                "-" if p99 is None else f"{p99:.3f}s",
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(
                cell.ljust(widths[col]) for col, cell in enumerate(row)
            ).rstrip())
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    return round(float(np.percentile(np.asarray(values, dtype=float), q)), 9)


class UsaasCluster:
    """Consistent-hash router + quotas + failover over N replicas.

    The router's picture of the world is *inferred*: it never reads a
    replica's ``state`` except by probing at routing time, so a crashed
    replica keeps absorbing (and failing) probes until its breaker
    opens — exactly the discovery lag a real fleet has, made
    deterministic.
    """

    def __init__(
        self,
        replicas: Sequence[ReplicaHandle],
        clock: Optional[Clock] = None,
        tenants: Sequence[TenantPolicy] = (),
        vnodes: int = 64,
        max_failover: Optional[int] = None,
        fair_horizon: float = 16.0,
        breaker_window: int = 8,
        breaker_min_calls: int = 2,
        breaker_recovery_s: float = 2.0,
    ) -> None:
        if not replicas:
            raise ConfigError("a cluster needs at least one replica")
        names = [r.name for r in replicas]
        if len(set(names)) != len(names):
            raise ConfigError("replica names must be unique")
        if fair_horizon <= 0:
            raise ConfigError("fair_horizon must be positive")
        self._replicas: Dict[str, ReplicaHandle] = {
            r.name: r for r in replicas
        }
        self._order: Tuple[str, ...] = tuple(names)
        self._clock: Clock = clock or ManualClock()
        self.ring = HashRing(names, vnodes=vnodes)
        self.max_failover = (
            len(names) - 1 if max_failover is None else int(max_failover)
        )
        if self.max_failover < 0:
            raise ConfigError("max_failover must be >= 0")
        self.fair_horizon = float(fair_horizon)
        self._breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                window=breaker_window,
                min_calls=breaker_min_calls,
                recovery_s=breaker_recovery_s,
                clock=self._clock,
                name=f"replica:{name}",
            )
            for name in names
        }
        self._tenants: Dict[str, TenantState] = {}
        for policy in tenants:
            if policy.name in self._tenants:
                raise ConfigError(f"duplicate tenant {policy.name!r}")
            self._tenants[policy.name] = TenantState(
                policy=policy, tokens=policy.burst,
                last_refill_s=self._clock.now(),
            )
        self._submitted = 0
        self._router_shed: Dict[str, int] = {
            "quota_exceeded": 0, "no_replica": 0,
        }
        self._routed: Dict[str, int] = {name: 0 for name in names}
        self.rebalances = 0
        self.log: List[Tuple[str, str]] = []

    # -- introspection -----------------------------------------------------

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def replica_names(self) -> Tuple[str, ...]:
        return self._order

    def replica(self, name: str) -> ReplicaHandle:
        if name not in self._replicas:
            raise ConfigError(f"unknown replica {name!r}")
        return self._replicas[name]

    def breaker(self, name: str) -> CircuitBreaker:
        return self._breakers[name]

    def tenant_state(self, name: str) -> TenantState:
        if name not in self._tenants:
            self._tenants[name] = TenantState(
                policy=TenantPolicy(name=name),
                last_refill_s=self._clock.now(),
            )
        return self._tenants[name]

    def has_pending(self) -> bool:
        return any(h.has_runnable() for h in self._replicas.values())

    def pending_count(self) -> int:
        return sum(
            h.server.admission.pending_count()
            for h in self._replicas.values()
        )

    def metrics(self) -> ClusterMetrics:
        return ClusterMetrics(
            replicas=tuple(
                (name, self._replicas[name].server.metrics())
                for name in self._order
            ),
            router_shed=tuple(sorted(self._router_shed.items())),
            tenants=tuple(
                (name, state.as_dict())
                for name, state in sorted(self._tenants.items())
            ),
            submitted=self._submitted,
            routed=tuple(
                (name, self._routed[name]) for name in self._order
            ),
            rebalances=self.rebalances,
        )

    # -- quota / fairness --------------------------------------------------

    def _refill(self, state: TenantState) -> None:
        policy = state.policy
        if policy.rate_per_s is None:
            return
        now = self._clock.now()
        elapsed = now - state.last_refill_s
        if elapsed > 0:
            state.tokens = min(
                policy.burst, state.tokens + elapsed * policy.rate_per_s
            )
        state.last_refill_s = now

    def _congested(self) -> bool:
        """Weighted-fair sharing only bites once queues half-fill."""
        capacity = sum(
            h.server.admission.max_pending
            for h in self._replicas.values() if h.available
        )
        if capacity <= 0:
            return True
        return self.pending_count() >= max(1, capacity // 2)

    def _check_tenant(self, state: TenantState, priority: str) -> None:
        """Apply quota + weighted-fair policy; raises to shed."""
        policy = state.policy
        if policy.rate_per_s is not None:
            self._refill(state)
            if state.tokens < 1.0:
                state.shed_quota += 1
                raise QueryRejectedError(
                    "quota_exceeded", priority,
                    f"tenant {policy.name!r} exhausted its "
                    f"{policy.rate_per_s:g}/s quota",
                )
        if len(self._tenants) > 1 and self._congested():
            active = [
                s.virtual_time for s in self._tenants.values()
                if s.admitted > 0
            ]
            min_vt = min(active) if active else 0.0
            if state.virtual_time > min_vt + self.fair_horizon:
                state.shed_fair += 1
                raise QueryRejectedError(
                    "quota_exceeded", priority,
                    f"tenant {policy.name!r} exceeded its weighted-fair "
                    f"share (weight {policy.weight:g})",
                )

    def _charge_tenant(self, state: TenantState) -> None:
        policy = state.policy
        if policy.rate_per_s is not None:
            state.tokens -= 1.0
        active = [
            s.virtual_time for s in self._tenants.values() if s.admitted > 0
        ]
        floor = min(active) if active else 0.0
        # A newly active tenant starts at the current fair floor instead
        # of claiming credit for the time it sat idle.
        state.virtual_time = max(state.virtual_time, floor)
        state.virtual_time += 1.0 / policy.weight
        state.admitted += 1

    # -- ring membership (driven by breaker observations) ------------------

    def _observe_failure(self, name: str) -> None:
        breaker = self._breakers[name]
        breaker.record_failure()
        if breaker.state is BreakerState.OPEN and name in self.ring:
            self.ring.remove(name)
            self.rebalances += 1
            self.log.append((name, "ring.remove"))

    def _observe_success(self, name: str) -> None:
        breaker = self._breakers[name]
        breaker.record_success()
        if breaker.state is BreakerState.CLOSED and name not in self.ring:
            self.ring.add(name)
            self.rebalances += 1
            self.log.append((name, "ring.add"))

    def _maybe_rejoin(self) -> None:
        """Probe evicted replicas whose breakers allow a half-open call."""
        for name in self._order:
            if name in self.ring:
                continue
            breaker = self._breakers[name]
            if not breaker.allow():
                continue
            handle = self._replicas[name]
            if handle.available:
                self._observe_success(name)
                self.log.append((name, "probe.recovered"))
            else:
                self._observe_failure(name)
                self.log.append((name, "probe.still-down"))

    # -- submission --------------------------------------------------------

    def submit(
        self,
        query,
        key: str,
        tenant: str = "default",
        priority: str = "interactive",
        deadline_s: Optional[float] = None,
    ) -> Tuple[str, Ticket]:
        """Route + admit one query, or shed it with a typed error.

        Exactly one of three things happens, and each is accounted once:
        the query is shed at the router (``quota_exceeded`` /
        ``no_replica``), shed by the chosen replica's admission
        controller (counted by that replica), or enqueued on exactly
        one replica.  Returns ``(replica_name, ticket)`` on admission.
        """
        self._submitted += 1
        state = self.tenant_state(tenant)
        state.submitted += 1
        try:
            self._check_tenant(state, priority)
        except QueryRejectedError:
            self._router_shed["quota_exceeded"] += 1
            raise
        self._maybe_rejoin()
        chosen: Optional[ReplicaHandle] = None
        if len(self.ring) > 0:
            ladder = self.ring.preference(key, n=self.max_failover + 1)
            for name in ladder:
                breaker = self._breakers[name]
                if not breaker.allow():
                    self.log.append((name, "route.breaker-open"))
                    continue
                handle = self._replicas[name]
                if not handle.available:
                    # The probe is the discovery mechanism: a failed
                    # dispatch feeds the breaker and the ladder moves on.
                    self._observe_failure(name)
                    self.log.append((name, "route.probe-failed"))
                    continue
                self._observe_success(name)
                chosen = handle
                break
        if chosen is None:
            self._router_shed["no_replica"] += 1
            state.shed_no_replica += 1
            raise QueryRejectedError(
                "no_replica", priority,
                f"no live replica for key {key!r} "
                f"({len(self.ring)} on ring)",
            )
        chosen.sync_to(self._clock.now())
        try:
            ticket = chosen.server.submit(
                query, priority=priority, deadline_s=deadline_s
            )
        except QueryRejectedError:
            # Accounted by the replica (its submitted + shed counters);
            # the router only tracks the tenant attribution.
            self._routed[chosen.name] += 1
            state.shed_replica += 1
            raise
        self._routed[chosen.name] += 1
        self._charge_tenant(state)
        return chosen.name, ticket

    # -- execution ---------------------------------------------------------

    def _next_runnable(
        self, before_s: Optional[float] = None
    ) -> Optional[ReplicaHandle]:
        """The runnable replica that is furthest behind in time.

        Picking the minimum replica clock (tie-break: configured order)
        executes queued work in global simulated-time order — the
        discrete-event rule that makes N replicas serve in parallel
        while staying deterministic.
        """
        best: Optional[ReplicaHandle] = None
        for name in self._order:
            handle = self._replicas[name]
            if not handle.has_runnable():
                continue
            if before_s is not None and handle.clock.now() >= before_s:
                continue
            if best is None or handle.clock.now() < best.clock.now():
                best = handle
        return best

    def run_next(self) -> Optional[Tuple[str, QueryOutcome]]:
        """Run one queued query cluster-wide (None when idle)."""
        handle = self._next_runnable()
        if handle is None:
            return None
        outcome = handle.run_next()
        if outcome is None:  # pragma: no cover - guarded by has_runnable
            return None
        return handle.name, outcome

    def run_until(self, t: float) -> int:
        """Run queued work on every replica whose clock is before ``t``."""
        ran = 0
        while True:
            handle = self._next_runnable(before_s=t)
            if handle is None:
                return ran
            handle.run_next()
            ran += 1

    # -- fault events ------------------------------------------------------

    def apply_fault(self, event) -> List[QueryOutcome]:
        """Apply one :class:`ReplicaFaultEvent` (ground-truth change).

        Returns the terminal outcomes the event forced (crash kills the
        queue).  The router's breakers learn about the change only
        through subsequent probes.
        """
        handle = self.replica(event.replica)
        handle.sync_to(self._clock.now())
        if event.action == "crash":
            self.log.append((event.replica, "fault.crash"))
            return handle.crash()
        if event.action == "hang":
            self.log.append((event.replica, "fault.hang"))
            handle.hang()
            return []
        if event.action == "recover":
            self.log.append((event.replica, "fault.recover"))
            handle.recover(self._clock.now())
            return []
        if event.action == "slow_start":
            self.log.append((event.replica, "fault.slow_start"))
            handle.slow_extra_s = float(event.slow_extra_s)
            return []
        if event.action == "slow_end":
            self.log.append((event.replica, "fault.slow_end"))
            handle.slow_extra_s = 0.0
            return []
        raise ConfigError(f"unknown replica fault action {event.action!r}")

    # -- drain -------------------------------------------------------------

    def drain(self) -> Dict[str, int]:
        """Finish every runnable queue; close the ledger on dead ones.

        Up replicas drain normally.  Replicas still hung at drain time
        have their held queries terminated as ``failed`` — work that
        never came back — so cluster accounting closes exactly.
        """
        while self.run_next() is not None:
            pass
        completed = 0
        failed_at_drain = 0
        leftover = 0
        for name in self._order:
            handle = self._replicas[name]
            if handle.available:
                report = handle.server.drain()
                completed += report.completed
                leftover += report.leftover_pending + report.in_flight
            else:
                failed_at_drain += len(handle.server.fail_pending(
                    f"replica {name} unavailable at drain"
                ))
                handle.server.admission.stop_admitting()
        return {
            "completed": completed,
            "failed_at_drain": failed_at_drain,
            "leftover": leftover,
        }

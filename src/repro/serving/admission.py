"""Admission control: bounded queueing with priority-aware shedding.

Overloaded crowdsourced-measurement front-ends fail in one of two ways:
they queue without bound until every answer is uselessly late, or they
fall over.  The :class:`AdmissionController` does neither — it holds a
bounded pending queue split by priority class and a concurrency limit,
and it *sheds* excess load with a typed, picklable
:class:`~repro.errors.QueryRejectedError` so callers always learn
immediately whether their query is in the system.

Three priority classes exist, ranked ``interactive`` > ``batch`` >
``monitoring``.  Under sustained overload the shedding policy decides
who loses:

* ``"reject"`` — the incoming query is refused (head-of-line FIFO);
* ``"lifo"`` — the *newest* pending query is evicted and the incoming
  one admitted (freshest-first, the classic overload trick: under a
  burst the oldest queued entries are the ones whose deadlines are
  already hopeless);
* ``"priority"`` — the newest pending query of the *lowest* class
  strictly below the incoming query's class is evicted; if no lower
  class has pending entries the incoming query is refused.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError, QueryRejectedError
from repro.serving.deadline import Deadline

#: Priority classes, highest urgency first.
PRIORITY_CLASSES: Tuple[str, ...] = ("interactive", "batch", "monitoring")

_RANK: Dict[str, int] = {name: i for i, name in enumerate(PRIORITY_CLASSES)}

SHED_POLICIES: Tuple[str, ...] = ("reject", "lifo", "priority")


@dataclass(frozen=True)
class Ticket:
    """One admitted (or rejected) query's identity in the serving layer."""

    id: int
    query: Any
    priority: str
    submitted_at: float
    deadline: Optional[Deadline] = None

    @property
    def rank(self) -> int:
        return _RANK[self.priority]


class AdmissionController:
    """Bounded pending queue + concurrency limiter with priority classes.

    The controller never runs queries — it only decides *admission*:
    :meth:`try_admit` either enqueues a ticket (possibly evicting a
    lower-priority one, returned to the caller for accounting) or raises
    :class:`QueryRejectedError`; :meth:`next_ticket` hands the highest-
    priority pending ticket to the execution layer while respecting
    ``max_concurrent``; :meth:`release` returns capacity.
    """

    def __init__(
        self,
        max_pending: int = 16,
        max_concurrent: int = 1,
        shed_policy: str = "priority",
        min_feasible_s: float = 0.0,
    ) -> None:
        if max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if max_concurrent < 1:
            raise ConfigError("max_concurrent must be >= 1")
        if shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if min_feasible_s < 0:
            raise ConfigError("min_feasible_s must be non-negative")
        self.max_pending = int(max_pending)
        self.max_concurrent = int(max_concurrent)
        self.shed_policy = shed_policy
        self.min_feasible_s = float(min_feasible_s)
        self._pending: Dict[str, Deque[Ticket]] = {
            name: deque() for name in PRIORITY_CLASSES
        }
        # Admission sequence per pending ticket: shedding tie-breaks are
        # decided by *insertion order*, never by ticket id, so "newest"
        # stays deterministic even when callers mint ids out of order.
        self._admitted_seq: Dict[int, int] = {}
        self._seq = 0
        self._in_flight: set = set()
        self._admitting = True

    # -- introspection ----------------------------------------------------

    @property
    def admitting(self) -> bool:
        return self._admitting

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def pending_count(self, priority: Optional[str] = None) -> int:
        if priority is not None:
            return len(self._pending[priority])
        return sum(len(q) for q in self._pending.values())

    def has_pending(self) -> bool:
        return any(self._pending.values())

    def has_capacity(self) -> bool:
        return len(self._in_flight) < self.max_concurrent

    # -- admission --------------------------------------------------------

    def stop_admitting(self) -> None:
        """Drain mode: every future :meth:`try_admit` sheds."""
        self._admitting = False

    def try_admit(self, ticket: Ticket) -> Tuple[Ticket, ...]:
        """Enqueue ``ticket`` or raise :class:`QueryRejectedError`.

        Returns the tickets *evicted* to make room (empty in the common
        case) so the caller can account for them exactly once.
        """
        if ticket.priority not in _RANK:
            raise ConfigError(
                f"unknown priority {ticket.priority!r}; "
                f"expected one of {PRIORITY_CLASSES}"
            )
        if not self._admitting:
            raise QueryRejectedError(
                "draining", ticket.priority, "server is draining"
            )
        if ticket.deadline is not None:
            remaining = ticket.deadline.remaining()
            if remaining <= self.min_feasible_s:
                raise QueryRejectedError(
                    "deadline_infeasible", ticket.priority,
                    f"{remaining:.3f}s remaining < "
                    f"{self.min_feasible_s:.3f}s minimum feasible",
                )
        evicted: List[Ticket] = []
        if self.pending_count() >= self.max_pending:
            victim = self._pick_victim(ticket)
            if victim is None:
                raise QueryRejectedError(
                    "queue_full", ticket.priority,
                    f"{self.pending_count()} pending "
                    f"(max {self.max_pending})",
                )
            self._pending[victim.priority].remove(victim)
            self._admitted_seq.pop(victim.id, None)
            evicted.append(victim)
        self._pending[ticket.priority].append(ticket)
        self._admitted_seq[ticket.id] = self._seq
        self._seq += 1
        return tuple(evicted)

    def _pick_victim(self, incoming: Ticket) -> Optional[Ticket]:
        """Who gets shed when the queue is full (None = reject incoming).

        Tie-breaks are deterministic: within a class the queue is FIFO
        in admission order, and "newest" always means the most recently
        *admitted* ticket (``self._admitted_seq``), which is stable
        across reruns by construction.
        """
        if self.shed_policy == "reject":
            return None
        if self.shed_policy == "lifo":
            newest: Optional[Ticket] = None
            for queue in self._pending.values():
                if queue and (
                    newest is None
                    or self._admitted_seq[queue[-1].id]
                    > self._admitted_seq[newest.id]
                ):
                    newest = queue[-1]
            return newest
        # "priority": evict the newest entry of the lowest class strictly
        # below the incoming query's class.
        for name in reversed(PRIORITY_CLASSES):
            if _RANK[name] <= incoming.rank:
                break
            if self._pending[name]:
                return self._pending[name][-1]
        return None

    # -- execution handoff ------------------------------------------------

    def next_ticket(self) -> Optional[Ticket]:
        """Highest-priority pending ticket, or None (empty / saturated)."""
        if not self.has_capacity():
            return None
        for name in PRIORITY_CLASSES:
            if self._pending[name]:
                ticket = self._pending[name].popleft()
                self._admitted_seq.pop(ticket.id, None)
                self._in_flight.add(ticket.id)
                return ticket
        return None

    def evict_pending(self) -> Tuple[Ticket, ...]:
        """Remove and return *every* pending ticket (priority order).

        The cluster layer uses this when a replica crashes: queued work
        dies with the process and must be accounted as failed, exactly
        once, by whoever held the queue.
        """
        out: List[Ticket] = []
        for name in PRIORITY_CLASSES:
            while self._pending[name]:
                ticket = self._pending[name].popleft()
                self._admitted_seq.pop(ticket.id, None)
                out.append(ticket)
        return tuple(out)

    def release(self, ticket: Ticket) -> None:
        if ticket.id not in self._in_flight:
            raise ConfigError(
                f"ticket {ticket.id} is not in flight"
            )
        self._in_flight.discard(ticket.id)

    def pending_tickets(self) -> Tuple[Ticket, ...]:
        """Every still-queued ticket, priority order (for drain reports)."""
        out: List[Ticket] = []
        for name in PRIORITY_CLASSES:
            out.extend(self._pending[name])
        return tuple(out)

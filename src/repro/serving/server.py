"""The overload-safe serving facade in front of :class:`UsaasService`.

``UsaasService.answer()`` is a one-shot synchronous call; a deployment
that stakeholders actually query needs the discipline around it: bounded
admission, per-query deadline budgets, typed shedding, per-class
accounting and a graceful drain.  :class:`UsaasServer` provides exactly
that without touching the analysis path — admitted queries still run
through the existing ``answer()``.

Every submitted query is accounted for **exactly once** in one of five
terminal states:

* ``served`` — answered inside its deadline;
* ``served_degraded`` — answered inside its deadline, but from a
  degraded source set (failed/stale feeds);
* ``shed`` — refused with a typed
  :class:`~repro.errors.QueryRejectedError` (queue full, infeasible
  deadline, draining, or evicted by a higher-priority arrival);
* ``deadline_exceeded`` — admitted but the budget ran out (the overrun
  is bounded by one attempt timeout, because the executor clamps
  per-attempt budgets to the remaining deadline);
* ``failed`` — hard degradation
  (:class:`~repro.errors.DegradedServiceError`) inside the budget.

Time comes exclusively from the service's injected clock, so the whole
serving lifecycle is deterministic under a
:class:`~repro.resilience.clock.ManualClock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    DegradedServiceError,
    QueryRejectedError,
)
from repro.resilience.clock import Clock
from repro.serving.admission import (
    PRIORITY_CLASSES,
    AdmissionController,
    Ticket,
)
from repro.serving.deadline import Deadline

#: Terminal states a submitted query can end in.
OUTCOME_STATUSES: Tuple[str, ...] = (
    "served", "served_degraded", "shed", "deadline_exceeded", "failed",
)


@dataclass(frozen=True)
class QueryOutcome:
    """The single terminal record for one submitted query."""

    ticket_id: int
    priority: str
    status: str
    latency_s: Optional[float] = None
    error: Optional[str] = None
    report: Any = None

    def __post_init__(self) -> None:
        if self.status not in OUTCOME_STATUSES:
            raise ConfigError(f"unknown outcome status {self.status!r}")


@dataclass
class ClassCounters:
    """Per-priority-class serving counters (all monotonic)."""

    submitted: int = 0
    served: int = 0
    served_degraded: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    failed: int = 0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return (self.served + self.served_degraded
                + self.deadline_exceeded + self.failed)

    def as_dict(self) -> Dict[str, object]:
        """Stable JSON-ready form (latency list reduced to percentiles)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "served_degraded": self.served_degraded,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "p50_latency_s": _percentile(self.latencies_s, 50),
            "p99_latency_s": _percentile(self.latencies_s, 99),
        }


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    return round(float(np.percentile(np.asarray(values, dtype=float), q)), 9)


@dataclass(frozen=True)
class ServingMetrics:
    """Point-in-time snapshot of every class's counters."""

    per_class: Tuple[Tuple[str, ClassCounters], ...]

    def counters(self, priority: str) -> ClassCounters:
        for name, counters in self.per_class:
            if name == priority:
                return counters
        raise ConfigError(f"unknown priority {priority!r}")

    @property
    def submitted(self) -> int:
        return sum(c.submitted for _, c in self.per_class)

    @property
    def shed(self) -> int:
        return sum(c.shed for _, c in self.per_class)

    @property
    def served(self) -> int:
        return sum(c.served + c.served_degraded for _, c in self.per_class)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def latencies(self) -> List[float]:
        out: List[float] = []
        for _, counters in self.per_class:
            out.extend(counters.latencies_s)
        return out

    def p50_latency_s(self) -> Optional[float]:
        return _percentile(self.latencies(), 50)

    def p99_latency_s(self) -> Optional[float]:
        return _percentile(self.latencies(), 99)

    def as_dict(self) -> Dict[str, object]:
        return {name: counters.as_dict() for name, counters in self.per_class}

    def table(self) -> str:
        """Fixed-width per-class counters table (CLI / log friendly)."""
        headers = ("class", "submitted", "served", "degraded", "shed",
                   "deadline", "failed", "p50", "p99")
        rows: List[Tuple[str, ...]] = [headers]
        for name, c in self.per_class:
            p50, p99 = (_percentile(c.latencies_s, 50),
                        _percentile(c.latencies_s, 99))
            rows.append((
                name, str(c.submitted), str(c.served),
                str(c.served_degraded), str(c.shed),
                str(c.deadline_exceeded), str(c.failed),
                "-" if p50 is None else f"{p50:.3f}s",
                "-" if p99 is None else f"{p99:.3f}s",
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(
                cell.ljust(widths[col]) for col, cell in enumerate(row)
            ).rstrip())
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


@dataclass(frozen=True)
class DrainReport:
    """What :meth:`UsaasServer.drain` finished and what was left over."""

    completed: int
    leftover_pending: int
    in_flight: int

    @property
    def clean(self) -> bool:
        return self.leftover_pending == 0 and self.in_flight == 0

    def summary(self) -> str:
        return (f"drain: {self.completed} completed, "
                f"{self.leftover_pending} leftover pending, "
                f"{self.in_flight} in flight")


class UsaasServer:
    """Admission + deadlines + accounting around ``UsaasService.answer``.

    The server shares the service's injected clock; with a
    :class:`~repro.resilience.clock.ManualClock` the entire serving
    lifecycle — arrivals, backoff, deadline expiry, drain — is exactly
    reproducible, which is what the soak harness asserts.
    """

    def __init__(
        self,
        service,
        max_pending: int = 16,
        max_concurrent: int = 1,
        shed_policy: str = "priority",
        default_deadline_s: Optional[float] = None,
        min_feasible_s: Optional[float] = None,
    ) -> None:
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive")
        self._service = service
        self._clock: Clock = service.executor.clock
        if min_feasible_s is None:
            # An admitted query needs room for at least one attempt.
            timeout = service.executor.config.retry.attempt_timeout_s
            min_feasible_s = float(timeout) if timeout is not None else 0.0
        self.admission = AdmissionController(
            max_pending=max_pending,
            max_concurrent=max_concurrent,
            shed_policy=shed_policy,
            min_feasible_s=min_feasible_s,
        )
        self.default_deadline_s = default_deadline_s
        self.outcomes: Dict[int, QueryOutcome] = {}
        self._counters: Dict[str, ClassCounters] = {
            name: ClassCounters() for name in PRIORITY_CLASSES
        }
        self._next_id = 0
        self._draining = False

    @property
    def service(self):
        return self._service

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def draining(self) -> bool:
        return self._draining

    def has_pending(self) -> bool:
        return self.admission.has_pending()

    # -- accounting -------------------------------------------------------

    def metrics(self) -> ServingMetrics:
        return ServingMetrics(per_class=tuple(
            (name, self._counters[name]) for name in PRIORITY_CLASSES
        ))

    def _record(self, outcome: QueryOutcome) -> QueryOutcome:
        if outcome.ticket_id in self.outcomes:
            raise ConfigError(
                f"ticket {outcome.ticket_id} already has an outcome; "
                f"every query must be accounted exactly once"
            )
        self.outcomes[outcome.ticket_id] = outcome
        counters = self._counters[outcome.priority]
        if outcome.status == "served":
            counters.served += 1
        elif outcome.status == "served_degraded":
            counters.served_degraded += 1
        elif outcome.status == "shed":
            counters.shed += 1
        elif outcome.status == "deadline_exceeded":
            counters.deadline_exceeded += 1
        else:
            counters.failed += 1
        if outcome.latency_s is not None:
            counters.latencies_s.append(float(outcome.latency_s))
        return outcome

    # -- submission -------------------------------------------------------

    def submit(
        self,
        query,
        priority: str = "interactive",
        deadline_s: Optional[float] = None,
    ) -> Ticket:
        """Admit a query or shed it with :class:`QueryRejectedError`.

        A rejected query is still *accounted*: it gets a ``shed``
        outcome before the typed error propagates.  Evicted lower-
        priority queries (``shed_policy="priority"``/``"lifo"``) get
        their own ``shed`` outcomes at the same moment.
        """
        if priority not in PRIORITY_CLASSES:
            raise ConfigError(
                f"unknown priority {priority!r}; "
                f"expected one of {PRIORITY_CLASSES}"
            )
        budget = deadline_s if deadline_s is not None else self.default_deadline_s
        deadline = (
            Deadline.start(self._clock, budget) if budget is not None else None
        )
        ticket = Ticket(
            id=self._next_id,
            query=query,
            priority=priority,
            submitted_at=self._clock.now(),
            deadline=deadline,
        )
        self._next_id += 1
        self._counters[priority].submitted += 1
        try:
            evicted = self.admission.try_admit(ticket)
        except QueryRejectedError as exc:
            self._record(QueryOutcome(
                ticket_id=ticket.id, priority=priority, status="shed",
                error=f"{type(exc).__name__}: {exc}",
            ))
            raise
        for victim in evicted:
            error = QueryRejectedError(
                "queue_full", victim.priority,
                f"evicted by higher-priority ticket {ticket.id}",
            )
            self._record(QueryOutcome(
                ticket_id=victim.id, priority=victim.priority, status="shed",
                error=f"{type(error).__name__}: {error}",
            ))
        return ticket

    # -- execution --------------------------------------------------------

    def run_next(self) -> Optional[QueryOutcome]:
        """Execute the highest-priority pending query (None if idle)."""
        ticket = self.admission.next_ticket()
        if ticket is None:
            return None
        try:
            outcome = self._execute(ticket)
        finally:
            self.admission.release(ticket)
        return self._record(outcome)

    def run_pending(self, limit: Optional[int] = None) -> List[QueryOutcome]:
        """Run queued queries until the queue is empty (or ``limit``)."""
        outcomes: List[QueryOutcome] = []
        while limit is None or len(outcomes) < limit:
            outcome = self.run_next()
            if outcome is None:
                break
            outcomes.append(outcome)
        return outcomes

    def _execute(self, ticket: Ticket) -> QueryOutcome:
        deadline = ticket.deadline
        if deadline is not None and deadline.expired():
            # Sat in the queue past its budget: never start the answer.
            return QueryOutcome(
                ticket_id=ticket.id, priority=ticket.priority,
                status="deadline_exceeded",
                latency_s=self._clock.now() - ticket.submitted_at,
                error=(f"DeadlineExceededError: expired in queue "
                       f"({deadline.overrun():.3f}s over budget)"),
            )
        try:
            report = self._service.answer(ticket.query, deadline=deadline)
        except DegradedServiceError as exc:
            latency = self._clock.now() - ticket.submitted_at
            if deadline is not None and deadline.expired():
                status, error = "deadline_exceeded", (
                    f"DeadlineExceededError: budget spent retrying "
                    f"({type(exc).__name__}: {exc})"
                )
            else:
                status, error = "failed", f"{type(exc).__name__}: {exc}"
            return QueryOutcome(
                ticket_id=ticket.id, priority=ticket.priority,
                status=status, latency_s=latency, error=error,
            )
        latency = self._clock.now() - ticket.submitted_at
        if deadline is not None and deadline.expired():
            return QueryOutcome(
                ticket_id=ticket.id, priority=ticket.priority,
                status="deadline_exceeded", latency_s=latency,
                error=(f"DeadlineExceededError: answer arrived "
                       f"{deadline.overrun():.3f}s late"),
                report=report,
            )
        status = "served_degraded" if report.degraded else "served"
        return QueryOutcome(
            ticket_id=ticket.id, priority=ticket.priority,
            status=status, latency_s=latency, report=report,
        )

    # -- the synchronous convenience path ---------------------------------

    def serve(
        self,
        query,
        priority: str = "interactive",
        deadline_s: Optional[float] = None,
    ):
        """Submit + run to completion; the serving analogue of ``answer``.

        Raises:
            QueryRejectedError: the query was shed at admission.
            DeadlineExceededError: admitted but the budget ran out.
            DegradedServiceError: hard degradation inside the budget.
        """
        ticket = self.submit(query, priority=priority, deadline_s=deadline_s)
        while ticket.id not in self.outcomes:
            if self.run_next() is None:
                raise ConfigError(
                    f"ticket {ticket.id} is stuck: queue idle but no outcome"
                )
        outcome = self.outcomes[ticket.id]
        if outcome.status in ("served", "served_degraded"):
            return outcome.report
        if outcome.status == "deadline_exceeded":
            budget = ticket.deadline.budget_s if ticket.deadline else 0.0
            overrun = ticket.deadline.overrun() if ticket.deadline else 0.0
            raise DeadlineExceededError(budget, overrun)
        raise DegradedServiceError(outcome.error or "hard degradation")

    def fail_pending(self, error: str) -> List[QueryOutcome]:
        """Terminate every queued query as ``failed`` (replica crash).

        When the process holding the queue dies, the queued work dies
        with it; each ticket still gets its exactly-once terminal
        outcome so cluster-wide accounting stays closed.
        """
        outcomes: List[QueryOutcome] = []
        for ticket in self.admission.evict_pending():
            outcomes.append(self._record(QueryOutcome(
                ticket_id=ticket.id, priority=ticket.priority,
                status="failed",
                latency_s=self._clock.now() - ticket.submitted_at,
                error=f"QueryFailedError: {error}",
            )))
        return outcomes

    # -- drain ------------------------------------------------------------

    def drain(self) -> DrainReport:
        """Stop admitting, finish everything queued, report leftovers."""
        self._draining = True
        self.admission.stop_admitting()
        completed = len(self.run_pending())
        return DrainReport(
            completed=completed,
            leftover_pending=self.admission.pending_count(),
            in_flight=self.admission.in_flight_count,
        )

"""The overload-safe serving facade in front of :class:`UsaasService`.

``UsaasService.answer()`` is a one-shot synchronous call; a deployment
that stakeholders actually query needs the discipline around it: bounded
admission, per-query deadline budgets, typed shedding, per-class
accounting and a graceful drain.  :class:`UsaasServer` provides exactly
that without touching the analysis path — admitted queries still run
through the existing ``answer()``.

Every submitted query is accounted for **exactly once** in one of five
terminal states:

* ``served`` — answered inside its deadline;
* ``served_degraded`` — answered inside its deadline, but from a
  degraded source set (failed/stale feeds);
* ``shed`` — refused with a typed
  :class:`~repro.errors.QueryRejectedError` (queue full, infeasible
  deadline, draining, or evicted by a higher-priority arrival);
* ``deadline_exceeded`` — admitted but the budget ran out (the overrun
  is bounded by one attempt timeout, because the executor clamps
  per-attempt budgets to the remaining deadline);
* ``failed`` — hard degradation
  (:class:`~repro.errors.DegradedServiceError`) inside the budget.

Time comes exclusively from the service's injected clock, so the whole
serving lifecycle is deterministic under a
:class:`~repro.resilience.clock.ManualClock`.

Beyond ``insights`` queries, a server constructed with a
:class:`~repro.prediction.service.PredictionEngine` also serves the
``predict_mos`` query kind: batch-class predictions are micro-batched
by a :class:`~repro.prediction.coalescer.PredictionCoalescer` in front
of the admission controller (one queue slot, one vectorized call per
batch; interactive predictions bypass it), and the engine's deadline
ladder falls back to the E-model prior rather than blowing a deadline.
Accounting is additionally tracked *per query kind*
(:meth:`UsaasServer.kind_counters`), and the exactly-once rule extends
unchanged: every member of a coalesced batch gets its own terminal
outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    DegradedServiceError,
    QueryRejectedError,
)
from repro.resilience.clock import Clock
from repro.serving.admission import (
    PRIORITY_CLASSES,
    AdmissionController,
    Ticket,
)
from repro.serving.deadline import Deadline

#: Terminal states a submitted query can end in.
OUTCOME_STATUSES: Tuple[str, ...] = (
    "served", "served_degraded", "shed", "deadline_exceeded", "failed",
)


@dataclass(frozen=True)
class QueryOutcome:
    """The single terminal record for one submitted query."""

    ticket_id: int
    priority: str
    status: str
    latency_s: Optional[float] = None
    error: Optional[str] = None
    report: Any = None

    def __post_init__(self) -> None:
        if self.status not in OUTCOME_STATUSES:
            raise ConfigError(f"unknown outcome status {self.status!r}")


@dataclass
class ClassCounters:
    """Per-priority-class serving counters (all monotonic)."""

    submitted: int = 0
    served: int = 0
    served_degraded: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    failed: int = 0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return (self.served + self.served_degraded
                + self.deadline_exceeded + self.failed)

    def as_dict(self) -> Dict[str, object]:
        """Stable JSON-ready form (latency list reduced to percentiles)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "served_degraded": self.served_degraded,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "p50_latency_s": _percentile(self.latencies_s, 50),
            "p99_latency_s": _percentile(self.latencies_s, 99),
        }


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    return round(float(np.percentile(np.asarray(values, dtype=float), q)), 9)


@dataclass(frozen=True)
class ServingMetrics:
    """Point-in-time snapshot of every class's counters."""

    per_class: Tuple[Tuple[str, ClassCounters], ...]

    def counters(self, priority: str) -> ClassCounters:
        for name, counters in self.per_class:
            if name == priority:
                return counters
        raise ConfigError(f"unknown priority {priority!r}")

    @property
    def submitted(self) -> int:
        return sum(c.submitted for _, c in self.per_class)

    @property
    def shed(self) -> int:
        return sum(c.shed for _, c in self.per_class)

    @property
    def served(self) -> int:
        return sum(c.served + c.served_degraded for _, c in self.per_class)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def latencies(self) -> List[float]:
        out: List[float] = []
        for _, counters in self.per_class:
            out.extend(counters.latencies_s)
        return out

    def p50_latency_s(self) -> Optional[float]:
        return _percentile(self.latencies(), 50)

    def p99_latency_s(self) -> Optional[float]:
        return _percentile(self.latencies(), 99)

    def as_dict(self) -> Dict[str, object]:
        return {name: counters.as_dict() for name, counters in self.per_class}

    def table(self) -> str:
        """Fixed-width per-class counters table (CLI / log friendly)."""
        headers = ("class", "submitted", "served", "degraded", "shed",
                   "deadline", "failed", "p50", "p99")
        rows: List[Tuple[str, ...]] = [headers]
        for name, c in self.per_class:
            p50, p99 = (_percentile(c.latencies_s, 50),
                        _percentile(c.latencies_s, 99))
            rows.append((
                name, str(c.submitted), str(c.served),
                str(c.served_degraded), str(c.shed),
                str(c.deadline_exceeded), str(c.failed),
                "-" if p50 is None else f"{p50:.3f}s",
                "-" if p99 is None else f"{p99:.3f}s",
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(
                cell.ljust(widths[col]) for col, cell in enumerate(row)
            ).rstrip())
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


@dataclass(frozen=True)
class DrainReport:
    """What :meth:`UsaasServer.drain` finished and what was left over."""

    completed: int
    leftover_pending: int
    in_flight: int

    @property
    def clean(self) -> bool:
        return self.leftover_pending == 0 and self.in_flight == 0

    def summary(self) -> str:
        return (f"drain: {self.completed} completed, "
                f"{self.leftover_pending} leftover pending, "
                f"{self.in_flight} in flight")


class UsaasServer:
    """Admission + deadlines + accounting around ``UsaasService.answer``.

    The server shares the service's injected clock; with a
    :class:`~repro.resilience.clock.ManualClock` the entire serving
    lifecycle — arrivals, backoff, deadline expiry, drain — is exactly
    reproducible, which is what the soak harness asserts.
    """

    def __init__(
        self,
        service,
        max_pending: int = 16,
        max_concurrent: int = 1,
        shed_policy: str = "priority",
        default_deadline_s: Optional[float] = None,
        min_feasible_s: Optional[float] = None,
        prediction=None,
        coalescer=None,
    ) -> None:
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive")
        self._service = service
        self._clock: Clock = service.executor.clock
        if min_feasible_s is None:
            # An admitted query needs room for at least one attempt.
            timeout = service.executor.config.retry.attempt_timeout_s
            min_feasible_s = float(timeout) if timeout is not None else 0.0
        self.admission = AdmissionController(
            max_pending=max_pending,
            max_concurrent=max_concurrent,
            shed_policy=shed_policy,
            min_feasible_s=min_feasible_s,
        )
        self.default_deadline_s = default_deadline_s
        self.prediction = prediction
        self.coalescer = None
        if coalescer is not None:
            if prediction is None:
                raise ConfigError(
                    "a coalescer needs a prediction engine to flush into; "
                    "pass prediction= as well"
                )
            # Function-level import: repro.prediction imports the serving
            # package for Deadline/soak plumbing, so the server must not
            # import it at module load.
            from repro.prediction.coalescer import (
                CoalescerConfig, PredictionCoalescer,
            )
            if not isinstance(coalescer, CoalescerConfig):
                raise ConfigError(
                    "coalescer must be a prediction.CoalescerConfig"
                )
            self.coalescer = PredictionCoalescer(coalescer)
        self.outcomes: Dict[int, QueryOutcome] = {}
        self._counters: Dict[str, ClassCounters] = {
            name: ClassCounters() for name in PRIORITY_CLASSES
        }
        self._kind_counters: Dict[str, ClassCounters] = {}
        self._kind_of: Dict[int, str] = {}
        self._groups: Dict[int, Tuple[Ticket, ...]] = {}
        self._next_id = 0
        self._draining = False

    @property
    def service(self):
        return self._service

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def draining(self) -> bool:
        return self._draining

    def has_pending(self) -> bool:
        if self.admission.has_pending():
            return True
        return (
            self.coalescer is not None
            and self.coalescer.due(self._clock.now())
        )

    # -- accounting -------------------------------------------------------

    def metrics(self) -> ServingMetrics:
        return ServingMetrics(per_class=tuple(
            (name, self._counters[name]) for name in PRIORITY_CLASSES
        ))

    def kind_counters(self, kind: str) -> ClassCounters:
        """Counters for one query kind (``insights`` / ``predict_mos``)."""
        return self._kind_counters.setdefault(kind, ClassCounters())

    def _record(self, outcome: QueryOutcome) -> QueryOutcome:
        if outcome.ticket_id in self.outcomes:
            raise ConfigError(
                f"ticket {outcome.ticket_id} already has an outcome; "
                f"every query must be accounted exactly once"
            )
        self.outcomes[outcome.ticket_id] = outcome
        kind = self._kind_of.get(outcome.ticket_id, "insights")
        for counters in (
            self._counters[outcome.priority], self.kind_counters(kind),
        ):
            if outcome.status == "served":
                counters.served += 1
            elif outcome.status == "served_degraded":
                counters.served_degraded += 1
            elif outcome.status == "shed":
                counters.shed += 1
            elif outcome.status == "deadline_exceeded":
                counters.deadline_exceeded += 1
            else:
                counters.failed += 1
            if outcome.latency_s is not None:
                counters.latencies_s.append(float(outcome.latency_s))
        return outcome

    # -- submission -------------------------------------------------------

    def submit(
        self,
        query,
        priority: str = "interactive",
        deadline_s: Optional[float] = None,
    ) -> Ticket:
        """Admit a query or shed it with :class:`QueryRejectedError`.

        A rejected query is still *accounted*: it gets a ``shed``
        outcome before the typed error propagates.  Evicted lower-
        priority queries (``shed_policy="priority"``/``"lifo"``) get
        their own ``shed`` outcomes at the same moment.

        ``predict_mos`` queries require a prediction engine; with a
        coalescer configured, non-interactive predictions are buffered
        for micro-batching instead of entering the queue individually
        (the returned ticket is live either way).
        """
        if priority not in PRIORITY_CLASSES:
            raise ConfigError(
                f"unknown priority {priority!r}; "
                f"expected one of {PRIORITY_CLASSES}"
            )
        kind = getattr(query, "kind", "insights") or "insights"
        if kind == "predict_mos":
            if self.prediction is None:
                raise ConfigError(
                    "predict_mos query needs a prediction engine; "
                    "construct UsaasServer(prediction=...)"
                )
            # Validate rows against the bound block *before* minting a
            # ticket: a malformed query is a caller bug, not shed load.
            self.prediction.check_rows(getattr(query, "rows", None))
        budget = deadline_s if deadline_s is not None else self.default_deadline_s
        deadline = (
            Deadline.start(self._clock, budget) if budget is not None else None
        )
        ticket = Ticket(
            id=self._next_id,
            query=query,
            priority=priority,
            submitted_at=self._clock.now(),
            deadline=deadline,
        )
        self._next_id += 1
        self._counters[priority].submitted += 1
        self._kind_of[ticket.id] = kind
        self.kind_counters(kind).submitted += 1
        if (
            kind == "predict_mos"
            and self.coalescer is not None
            and priority != "interactive"
            and not self._draining
        ):
            # Hopeless deadlines shed now, exactly as try_admit would.
            if deadline is not None and (
                deadline.remaining() <= self.admission.min_feasible_s
            ):
                exc = QueryRejectedError(
                    "deadline_infeasible", priority,
                    f"{deadline.remaining():.3f}s remaining < "
                    f"{self.admission.min_feasible_s:.3f}s minimum feasible",
                )
                self._record(QueryOutcome(
                    ticket_id=ticket.id, priority=priority, status="shed",
                    error=f"{type(exc).__name__}: {exc}",
                ))
                raise exc
            self.coalescer.add(ticket, self._clock.now())
            self._flush_due()
            return ticket
        try:
            evicted = self.admission.try_admit(ticket)
        except QueryRejectedError as exc:
            self._record(QueryOutcome(
                ticket_id=ticket.id, priority=priority, status="shed",
                error=f"{type(exc).__name__}: {exc}",
            ))
            raise
        for victim in evicted:
            self._shed_ticket(
                victim, f"evicted by higher-priority ticket {ticket.id}"
            )
        return ticket

    def _shed_ticket(self, victim: Ticket, detail: str) -> None:
        """Shed one evicted ticket — expanded to members for a batch."""
        members = self._groups.pop(victim.id, None) or (victim,)
        for m in members:
            error = QueryRejectedError("queue_full", m.priority, detail)
            self._record(QueryOutcome(
                ticket_id=m.id, priority=m.priority, status="shed",
                error=f"{type(error).__name__}: {error}",
            ))

    # -- execution --------------------------------------------------------

    def _flush_due(self, force: bool = False) -> None:
        """Move due (or, when forced, all) coalesced batches into the queue."""
        if self.coalescer is None:
            return
        if force:
            batches = self.coalescer.flush_all()
        else:
            batches = self.coalescer.flush_due(self._clock.now())
        for members in batches:
            self._admit_group(members)

    def _admit_group(self, members) -> None:
        """Admit one flushed batch as a single internal group ticket.

        The group ticket occupies one queue slot and is never itself
        accounted — only its members get outcomes.  Members whose
        deadline became infeasible while buffered are shed here, with
        the same typed reason admission would have used.
        """
        now = self._clock.now()
        live = []
        for m in members:
            if m.deadline is not None and (
                m.deadline.remaining() <= self.admission.min_feasible_s
            ):
                error = QueryRejectedError(
                    "deadline_infeasible", m.priority,
                    "deadline lapsed while coalescing",
                )
                self._record(QueryOutcome(
                    ticket_id=m.id, priority=m.priority, status="shed",
                    latency_s=now - m.submitted_at,
                    error=f"{type(error).__name__}: {error}",
                ))
            else:
                live.append(m)
        if not live:
            return
        deadline = None
        for m in live:
            if m.deadline is not None and (
                deadline is None
                or m.deadline.expires_at < deadline.expires_at
            ):
                deadline = m.deadline
        group = Ticket(
            id=self._next_id,
            query=live[0].query,
            priority=live[0].priority,
            submitted_at=live[0].submitted_at,
            deadline=deadline,
        )
        self._next_id += 1
        self._groups[group.id] = tuple(live)
        try:
            evicted = self.admission.try_admit(group)
        except QueryRejectedError as exc:
            for m in self._groups.pop(group.id):
                error = QueryRejectedError(exc.reason, m.priority, exc.detail)
                self._record(QueryOutcome(
                    ticket_id=m.id, priority=m.priority, status="shed",
                    error=f"{type(error).__name__}: {error}",
                ))
            return
        for victim in evicted:
            self._shed_ticket(
                victim, f"evicted by higher-priority ticket {group.id}"
            )

    def run_next(self) -> Optional[QueryOutcome]:
        """Execute the highest-priority pending query (None if idle).

        For a coalesced prediction batch, every member is executed and
        recorded in one vectorized call; the last member's outcome is
        returned.
        """
        self._flush_due()
        ticket = self.admission.next_ticket()
        if ticket is None:
            return None
        members = self._groups.pop(ticket.id, None)
        try:
            if members is not None or (
                self._kind_of.get(ticket.id) == "predict_mos"
            ):
                outcomes = self._execute_prediction(
                    ticket, members if members is not None else (ticket,)
                )
                result = outcomes[-1] if outcomes else None
            else:
                result = self._record(self._execute(ticket))
        finally:
            self.admission.release(ticket)
        return result

    def run_pending(self, limit: Optional[int] = None) -> List[QueryOutcome]:
        """Run queued queries until the queue is empty (or ``limit``)."""
        outcomes: List[QueryOutcome] = []
        while limit is None or len(outcomes) < limit:
            outcome = self.run_next()
            if outcome is None:
                break
            outcomes.append(outcome)
        return outcomes

    def _execute(self, ticket: Ticket) -> QueryOutcome:
        deadline = ticket.deadline
        if deadline is not None and deadline.expired():
            # Sat in the queue past its budget: never start the answer.
            return QueryOutcome(
                ticket_id=ticket.id, priority=ticket.priority,
                status="deadline_exceeded",
                latency_s=self._clock.now() - ticket.submitted_at,
                error=(f"DeadlineExceededError: expired in queue "
                       f"({deadline.overrun():.3f}s over budget)"),
            )
        try:
            report = self._service.answer(ticket.query, deadline=deadline)
        except DegradedServiceError as exc:
            latency = self._clock.now() - ticket.submitted_at
            if deadline is not None and deadline.expired():
                status, error = "deadline_exceeded", (
                    f"DeadlineExceededError: budget spent retrying "
                    f"({type(exc).__name__}: {exc})"
                )
            else:
                status, error = "failed", f"{type(exc).__name__}: {exc}"
            return QueryOutcome(
                ticket_id=ticket.id, priority=ticket.priority,
                status=status, latency_s=latency, error=error,
            )
        latency = self._clock.now() - ticket.submitted_at
        if deadline is not None and deadline.expired():
            return QueryOutcome(
                ticket_id=ticket.id, priority=ticket.priority,
                status="deadline_exceeded", latency_s=latency,
                error=(f"DeadlineExceededError: answer arrived "
                       f"{deadline.overrun():.3f}s late"),
                report=report,
            )
        status = "served_degraded" if report.degraded else "served"
        return QueryOutcome(
            ticket_id=ticket.id, priority=ticket.priority,
            status=status, latency_s=latency, report=report,
        )

    def _execute_prediction(
        self, ticket: Ticket, members: Tuple[Ticket, ...]
    ) -> List[QueryOutcome]:
        """One vectorized prediction call for a batch (or solo ticket).

        Members whose deadline expired while queued are *shed* without
        running — an answer nobody can use is not worth a batch of
        compute, and shedding keeps the ladder's promise that an
        answered prediction never overruns its deadline by more than
        one batch cost.  The rest share one
        :meth:`PredictionEngine.predict_rows` call whose deadline is the
        earliest-expiring member's.  A degraded (E-model fallback)
        answer is recorded ``served_degraded`` even if the budget lapsed
        mid-fallback — by construction the overrun is bounded by one
        fallback batch cost, which beats not answering at all.
        """
        from repro.prediction.service import MosPredictionAnswer

        engine = self.prediction
        outcomes: List[QueryOutcome] = []
        live: List[Ticket] = []
        for m in members:
            if m.deadline is not None and m.deadline.expired():
                outcomes.append(self._record(QueryOutcome(
                    ticket_id=m.id, priority=m.priority,
                    status="shed",
                    latency_s=self._clock.now() - m.submitted_at,
                    error=(f"QueryRejectedError: deadline expired in "
                           f"queue ({m.deadline.overrun():.3f}s over "
                           f"budget); shed unanswered"),
                )))
            else:
                live.append(m)
        if not live:
            return outcomes
        row_sets = [
            engine.check_rows(getattr(m.query, "rows", None)) for m in live
        ]
        lengths = [len(r) for r in row_sets]
        rows = np.concatenate(row_sets) if len(row_sets) > 1 else row_sets[0]
        deadline = None
        for m in live:
            if m.deadline is not None and (
                deadline is None
                or m.deadline.expires_at < deadline.expires_at
            ):
                deadline = m.deadline
        answer = engine.predict_rows(
            rows, deadline=deadline, coalesced=len(live)
        )
        offset = 0
        for m, n in zip(live, lengths):
            report = MosPredictionAnswer(
                predictions=answer.predictions[offset:offset + n],
                rows=answer.rows[offset:offset + n],
                model=answer.model,
                degraded=answer.degraded,
                batch_rows=answer.batch_rows,
                coalesced=answer.coalesced,
            )
            offset += n
            latency = self._clock.now() - m.submitted_at
            if answer.degraded:
                status, error = "served_degraded", None
            elif m.deadline is not None and m.deadline.expired():
                status = "deadline_exceeded"
                error = (f"DeadlineExceededError: answer arrived "
                         f"{m.deadline.overrun():.3f}s late")
            else:
                status, error = "served", None
            outcomes.append(self._record(QueryOutcome(
                ticket_id=m.id, priority=m.priority, status=status,
                latency_s=latency, error=error, report=report,
            )))
        return outcomes

    # -- the synchronous convenience path ---------------------------------

    def serve(
        self,
        query,
        priority: str = "interactive",
        deadline_s: Optional[float] = None,
    ):
        """Submit + run to completion; the serving analogue of ``answer``.

        Raises:
            QueryRejectedError: the query was shed at admission.
            DeadlineExceededError: admitted but the budget ran out.
            DegradedServiceError: hard degradation inside the budget.
        """
        ticket = self.submit(query, priority=priority, deadline_s=deadline_s)
        while ticket.id not in self.outcomes:
            if self.run_next() is None:
                if self.coalescer is not None and self.coalescer.has_entries():
                    # The synchronous path cannot wait out max_delay_s:
                    # flush whatever is buffered and keep running.
                    self._flush_due(force=True)
                    continue
                raise ConfigError(
                    f"ticket {ticket.id} is stuck: queue idle but no outcome"
                )
        outcome = self.outcomes[ticket.id]
        if outcome.status in ("served", "served_degraded"):
            return outcome.report
        if outcome.status == "deadline_exceeded":
            budget = ticket.deadline.budget_s if ticket.deadline else 0.0
            overrun = ticket.deadline.overrun() if ticket.deadline else 0.0
            raise DeadlineExceededError(budget, overrun)
        raise DegradedServiceError(outcome.error or "hard degradation")

    def fail_pending(self, error: str) -> List[QueryOutcome]:
        """Terminate every queued query as ``failed`` (replica crash).

        When the process holding the queue dies, the queued work dies
        with it; each ticket still gets its exactly-once terminal
        outcome so cluster-wide accounting stays closed.
        """
        outcomes: List[QueryOutcome] = []
        doomed: List[Ticket] = []
        for ticket in self.admission.evict_pending():
            members = self._groups.pop(ticket.id, None)
            doomed.extend(members if members is not None else (ticket,))
        if self.coalescer is not None:
            for batch in self.coalescer.flush_all():
                doomed.extend(batch)
        for ticket in doomed:
            outcomes.append(self._record(QueryOutcome(
                ticket_id=ticket.id, priority=ticket.priority,
                status="failed",
                latency_s=self._clock.now() - ticket.submitted_at,
                error=f"QueryFailedError: {error}",
            )))
        return outcomes

    # -- drain ------------------------------------------------------------

    def drain(self) -> DrainReport:
        """Stop admitting, finish everything queued, report leftovers."""
        self._draining = True
        # Buffered predictions must reach the queue before admission
        # closes; they were accepted, so they still get answers.
        self._flush_due(force=True)
        self.admission.stop_admitting()
        completed = len(self.run_pending())
        return DrainReport(
            completed=completed,
            leftover_pending=self.admission.pending_count(),
            in_flight=self.admission.in_flight_count,
        )

"""Deterministic cluster soak: overload + replica failures, replayed.

Extends the single-server soak (:mod:`repro.serving.soak`) to a whole
:class:`~repro.serving.cluster.UsaasCluster`: seeded Poisson arrivals
(:meth:`FaultPlan.cluster_load_spikes`) are interleaved with a replica
fault timeline (:meth:`FaultPlan.replica_faults`) on the router's
:class:`~repro.resilience.clock.ManualClock`.  Between events the
cluster executes queued work in global simulated-time order, so a
replica crash mid-spike exercises the full failover story — queue loss,
breaker discovery, ring rebalance, half-open rejoin — in microseconds
of wall time, byte-identically per seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.usaas.service import UsaasQuery
from repro.errors import ConfigError, QueryRejectedError
from repro.resilience.clock import ManualClock
from repro.resilience.faults import FaultPlan, ReplicaFaultEvent
from repro.serving.cluster import (
    ClusterMetrics,
    ReplicaHandle,
    TenantPolicy,
    UsaasCluster,
)
from repro.serving.server import UsaasServer


@dataclass(frozen=True)
class ClusterSoakReport:
    """Everything one cluster soak produced, in a byte-stable shape."""

    arrivals: int
    fault_events: int
    submitted: int
    served: int
    served_degraded: int
    shed: int
    deadline_exceeded: int
    failed: int
    router_shed: Tuple[Tuple[str, int], ...]
    drain: Dict[str, int]
    metrics: ClusterMetrics
    final_router_clock_s: float
    final_replica_clocks_s: Tuple[Tuple[str, float], ...]

    @property
    def accounted(self) -> bool:
        """Cluster-wide exact-once ledger closed (post drain)."""
        try:
            self.metrics.check_exact_once()
        except ConfigError:
            return False
        return True

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def counters_dict(self) -> Dict[str, object]:
        """Stable dict for byte-identity assertions across runs."""
        return {
            "arrivals": self.arrivals,
            "fault_events": self.fault_events,
            "submitted": self.submitted,
            "served": self.served,
            "served_degraded": self.served_degraded,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "router_shed": dict(self.router_shed),
            "drain": dict(self.drain),
            "cluster": self.metrics.as_dict(),
            "final_router_clock_s": round(self.final_router_clock_s, 6),
            "final_replica_clocks_s": {
                name: round(t, 6) for name, t in self.final_replica_clocks_s
            },
        }

    def summary(self) -> str:
        router_shed = sum(n for _, n in self.router_shed)
        return (
            f"cluster soak: {self.submitted} submitted -> "
            f"{self.served} served, {self.served_degraded} degraded, "
            f"{self.shed} shed ({self.shed_rate:.0%}, "
            f"{router_shed} at router), "
            f"{self.deadline_exceeded} deadline-exceeded, "
            f"{self.failed} failed across {len(self.metrics.replicas)} "
            f"replicas ({self.fault_events} fault events, "
            f"{self.metrics.rebalances} rebalances)"
        )


def run_cluster_soak(
    cluster: UsaasCluster,
    arrivals: Sequence,
    fault_events: Sequence[ReplicaFaultEvent] = (),
    query_for=None,
) -> ClusterSoakReport:
    """Replay ``arrivals`` + ``fault_events`` against ``cluster``, drain.

    ``arrivals`` are :class:`~repro.resilience.faults.ClusterArrival`
    objects (``at_s`` / ``priority`` / ``deadline_s`` / ``tenant`` /
    ``key``); fault events come from :meth:`FaultPlan.replica_faults`.
    Both timelines are merged in time order, with a fault event applied
    *before* any arrival at the same instant — an outage starting at
    ``t`` affects the query arriving at ``t``.

    ``query_for`` maps an arrival to the query it submits; when None,
    the arrival's own ``query`` attribute is used if present, else a
    default :class:`UsaasQuery` — so a bare
    :class:`~repro.resilience.faults.ClusterArrival` schedule replays
    out of the box.

    Shedding — at the router or at a replica — is normal operation: the
    typed rejection is caught, already accounted, and the replay moves
    on.  After the last event the cluster drains, which also closes the
    ledger on replicas still dead at drain time.
    """
    clock = cluster.clock
    advance = getattr(clock, "advance", clock.sleep)
    default_query = UsaasQuery(network="starlink", service="teams")
    # (at_s, kind, tie) where faults (kind 0) sort before arrivals
    # (kind 1) at equal times and ``tie`` keeps each source stable.
    timeline: List[Tuple[float, int, int, object]] = []
    for i, event in enumerate(sorted(
        fault_events, key=lambda e: (e.at_s, e.replica, e.action)
    )):
        timeline.append((event.at_s, 0, i, event))
    for i, arrival in enumerate(sorted(arrivals, key=lambda a: a.at_s)):
        timeline.append((arrival.at_s, 1, i, arrival))
    timeline.sort(key=lambda item: item[:3])
    n_arrivals = 0
    for at_s, kind, _, item in timeline:
        # Execute queued work scheduled before this instant, replica
        # clocks advancing independently — this is where the cluster's
        # N-way parallelism (and its loss during an outage) shows up.
        cluster.run_until(at_s)
        if clock.now() < at_s:
            advance(at_s - clock.now())
        if kind == 0:
            cluster.apply_fault(item)
            continue
        n_arrivals += 1
        query = (
            query_for(item) if query_for is not None
            else getattr(item, "query", default_query)
        )
        try:
            cluster.submit(
                query,
                key=item.key,
                tenant=item.tenant,
                priority=item.priority,
                deadline_s=getattr(item, "deadline_s", None),
            )
        except QueryRejectedError:
            # Accounted (router or replica); the replay keeps going.
            continue
    drain = cluster.drain()
    metrics = cluster.metrics()
    totals = metrics.totals()
    return ClusterSoakReport(
        arrivals=n_arrivals,
        fault_events=len(fault_events),
        submitted=totals["submitted"],
        served=totals["served"],
        served_degraded=totals["served_degraded"],
        shed=totals["shed"],
        deadline_exceeded=totals["deadline_exceeded"],
        failed=totals["failed"],
        router_shed=metrics.router_shed,
        drain=drain,
        metrics=metrics,
        final_router_clock_s=clock.now(),
        final_replica_clocks_s=tuple(
            (name, cluster.replica(name).clock.now())
            for name in cluster.replica_names
        ),
    )


def replica_seed(seed: int, index: int) -> int:
    """Stable per-replica sub-seed (cross-process, platform-independent)."""
    digest = hashlib.sha256(f"{seed}:replica:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def synthetic_cluster(
    seed: int,
    n_replicas: int = 3,
    slow_s: float = 0.05,
    attempt_timeout_s: float = 0.2,
    max_pending: int = 8,
    shed_policy: str = "priority",
    tenants: Sequence[TenantPolicy] = (),
    include_flaky: bool = False,
    breaker_recovery_s: float = 2.0,
) -> Tuple[UsaasCluster, FaultPlan]:
    """A self-contained N-replica cluster with simulated query cost.

    Each replica ``r0..r{n-1}`` gets its *own* :class:`ManualClock` and
    :class:`FaultPlan` (sub-seeded via :func:`replica_seed`, so replicas
    draw independent — but per-seed reproducible — source-fault
    streams) wrapped around the PR 5 synthetic soak service.  Returns
    the cluster plus a router-clock :class:`FaultPlan` to draw arrival
    and replica-fault schedules from.
    """
    from repro.serving.soak import synthetic_soak_service

    if n_replicas < 1:
        raise ConfigError("n_replicas must be >= 1")
    router_clock = ManualClock()
    handles: List[ReplicaHandle] = []
    for i in range(n_replicas):
        plan = FaultPlan(seed=replica_seed(seed, i), clock=ManualClock())
        service = synthetic_soak_service(
            plan,
            slow_s=slow_s,
            attempt_timeout_s=attempt_timeout_s,
            include_flaky=include_flaky,
        )
        server = UsaasServer(
            service,
            max_pending=max_pending,
            shed_policy=shed_policy,
        )
        handles.append(ReplicaHandle(
            name=f"r{i}", server=server, clock=plan.clock,
        ))
    cluster = UsaasCluster(
        handles,
        clock=router_clock,
        tenants=tenants,
        breaker_recovery_s=breaker_recovery_s,
    )
    return cluster, FaultPlan(seed=seed, clock=router_clock)

"""Deterministic overload soak: drive a server through a load spike.

The soak loop is a tiny discrete-event simulation over the server's
injected clock: arrivals (from :meth:`FaultPlan.load_spikes`) are
submitted at their scheduled instants, the server executes queued
queries in priority order between arrivals, and time only moves when a
query *runs* (source fetches, backoff, simulated hangs) or the server
idles until the next arrival.  On a
:class:`~repro.resilience.clock.ManualClock` the whole soak — including
a sustained 5x-capacity spike — executes in microseconds of real time
and is exactly reproducible from the plan's seed.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import QueryRejectedError
from repro.serving.server import DrainReport, ServingMetrics, UsaasServer


@dataclass(frozen=True)
class SoakReport:
    """Everything one soak run produced, in a byte-stable shape."""

    arrivals: int
    submitted: int
    served: int
    served_degraded: int
    shed: int
    deadline_exceeded: int
    failed: int
    drain: DrainReport
    metrics: ServingMetrics
    final_clock_s: float

    @property
    def accounted(self) -> bool:
        """Every submitted query landed in exactly one terminal state."""
        return self.submitted == (
            self.served + self.served_degraded + self.shed
            + self.deadline_exceeded + self.failed
        )

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def counters_dict(self) -> Dict[str, object]:
        """Stable dict for byte-identity assertions across runs."""
        return {
            "arrivals": self.arrivals,
            "submitted": self.submitted,
            "served": self.served,
            "served_degraded": self.served_degraded,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "leftover_pending": self.drain.leftover_pending,
            "in_flight": self.drain.in_flight,
            "per_class": self.metrics.as_dict(),
            "final_clock_s": round(self.final_clock_s, 6),
        }

    def summary(self) -> str:
        return (
            f"soak: {self.submitted} submitted -> {self.served} served, "
            f"{self.served_degraded} degraded, {self.shed} shed "
            f"({self.shed_rate:.0%}), "
            f"{self.deadline_exceeded} deadline-exceeded, "
            f"{self.failed} failed; {self.drain.summary()}"
        )


def run_soak(
    server: UsaasServer,
    arrivals: Sequence,
    query_for=None,
) -> SoakReport:
    """Submit ``arrivals`` against ``server`` and drain.

    ``arrivals`` are objects with ``at_s`` / ``priority`` /
    ``deadline_s`` (see :class:`repro.resilience.faults.Arrival`);
    ``query_for`` maps an arrival to the query it submits (default: the
    server must have been built with a callable default via
    ``query_for``; passing None uses ``arrival.query`` when present).

    Shedding is part of normal operation here: a rejected submission is
    caught, already accounted by the server, and the loop moves on.
    """
    clock = server.clock
    advance = getattr(clock, "advance", clock.sleep)
    ordered = sorted(arrivals, key=lambda a: a.at_s)
    for arrival in ordered:
        # Work off the queue while the next arrival is still in the
        # future; executing a query advances the clock, so this is where
        # overload builds up: at 5x capacity the queue outgrows the
        # bound and the admission controller starts shedding.
        while server.has_pending() and clock.now() < arrival.at_s:
            server.run_next()
        if clock.now() < arrival.at_s:
            advance(arrival.at_s - clock.now())
        query = (
            query_for(arrival) if query_for is not None
            else getattr(arrival, "query")
        )
        try:
            server.submit(
                query,
                priority=arrival.priority,
                deadline_s=getattr(arrival, "deadline_s", None),
            )
        except QueryRejectedError:
            # Accounted as shed by the server; soak keeps going.
            continue
    drain = server.drain()
    metrics = server.metrics()
    totals = {
        status: 0 for status in (
            "served", "served_degraded", "shed", "deadline_exceeded",
            "failed",
        )
    }
    for _, counters in metrics.per_class:
        totals["served"] += counters.served
        totals["served_degraded"] += counters.served_degraded
        totals["shed"] += counters.shed
        totals["deadline_exceeded"] += counters.deadline_exceeded
        totals["failed"] += counters.failed
    return SoakReport(
        arrivals=len(ordered),
        submitted=metrics.submitted,
        served=totals["served"],
        served_degraded=totals["served_degraded"],
        shed=totals["shed"],
        deadline_exceeded=totals["deadline_exceeded"],
        failed=totals["failed"],
        drain=drain,
        metrics=metrics,
        final_clock_s=clock.now(),
    )


# -- a canonical synthetic workload ---------------------------------------
#
# The CLI ``usaas soak`` subcommand and the perf harness's serving phase
# both need a self-contained service whose per-query cost is *simulated*
# (slow-source faults advancing the ManualClock), so overload factors
# are exact and runs are deterministic.  Building it here keeps the two
# consumers byte-compatible.

_DAY0 = dt.datetime(2022, 4, 1, 12, 0)


def _implicit_series():
    from repro.core.signals import ImplicitSignal, SignalSeries
    from repro.core.usaas.privacy import scrub_author

    series = SignalSeries()
    for day in range(10):
        ts = _DAY0 + dt.timedelta(days=day)
        for u in range(12):
            user = scrub_author(f"user-{u}")
            series.append(ImplicitSignal(
                ts, "starlink", "presence", 80.0 + u - day,
                service="teams", user=user,
            ))
            series.append(ImplicitSignal(
                ts, "starlink", "cam_on", 60.0 + (u % 5),
                service="teams", user=user,
            ))
    return series


def _explicit_series():
    from repro.core.signals import ExplicitSignal, SignalSeries
    from repro.core.usaas.privacy import scrub_author

    series = SignalSeries()
    for day in range(10):
        ts = _DAY0 + dt.timedelta(days=day)
        for u in range(12):
            series.append(ExplicitSignal(
                ts, "starlink", "sentiment_polarity", 0.4 - 0.05 * day,
                user=scrub_author(f"poster-{u}"),
            ))
    return series


def synthetic_soak_service(
    plan,
    slow_s: float = 0.05,
    attempt_timeout_s: float = 0.2,
    max_attempts: int = 2,
    include_flaky: bool = False,
):
    """A self-contained USaaS service whose query cost is simulated.

    Two healthy feeds each "take" ``slow_s`` simulated seconds per fetch
    (the plan's slow fault advances its :class:`ManualClock`), so one
    query costs about ``2 * slow_s`` of clock time — which makes
    :func:`estimated_service_time_s` exact enough to dial in a precise
    overload factor.  ``include_flaky`` adds an always-failing third
    feed so every answer is *degraded* and retries/backoff burn deadline
    budget, reusing the PR 1/3 fault specs.
    """
    from repro.core.usaas import UsaasService
    from repro.resilience.executor import ResilienceConfig
    from repro.resilience.faults import ALWAYS_FAIL, always_slow
    from repro.resilience.policy import RetryPolicy

    config = ResilienceConfig(
        retry=RetryPolicy(
            max_attempts=max_attempts, base_delay_s=0.01, jitter=0.1,
            attempt_timeout_s=attempt_timeout_s, seed=plan.seed,
        ),
        min_sources=1,
    )
    service = UsaasService(resilience=config, clock=plan.clock)
    service.register_source("telemetry", plan.wrap_source(
        "telemetry", _implicit_series, always_slow(slow_s)))
    service.register_source("social", plan.wrap_source(
        "social", _explicit_series, always_slow(slow_s)))
    if include_flaky:
        service.register_source("flaky", plan.wrap_source(
            "flaky", _implicit_series, ALWAYS_FAIL))
    return service


def estimated_service_time_s(slow_s: float, n_sources: int = 2) -> float:
    """Simulated clock cost of one fully-healthy query."""
    return float(slow_s) * int(n_sources)

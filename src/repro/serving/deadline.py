"""Per-query time budgets on the injectable clock.

A :class:`Deadline` is a monotonic budget created when a query is
admitted: ``remaining()`` shrinks as the injected
:class:`~repro.resilience.clock.Clock` advances, and the ingestion
executor clamps every per-attempt timeout to it, so retries and backoff
are cut short instead of overrunning the budget.  Because time comes
from the clock, a :class:`~repro.resilience.clock.ManualClock` makes
every deadline interaction exactly reproducible under test.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.resilience.clock import Clock, MonotonicClock


class Deadline:
    """A monotonic time budget for one query.

    >>> from repro.resilience.clock import ManualClock
    >>> clock = ManualClock()
    >>> deadline = Deadline.start(clock, 2.0)
    >>> clock.advance(1.5); deadline.remaining()
    0.5
    >>> deadline.clamp(1.0)
    0.5
    """

    __slots__ = ("_clock", "started_at", "budget_s")

    def __init__(self, clock: Clock, started_at: float,
                 budget_s: float) -> None:
        if budget_s <= 0:
            raise ConfigError("deadline budget must be positive")
        self._clock = clock
        self.started_at = float(started_at)
        self.budget_s = float(budget_s)

    @classmethod
    def start(cls, clock: Optional[Clock] = None,
              budget_s: float = 30.0) -> "Deadline":
        """A deadline beginning *now* on ``clock``."""
        clock = clock or MonotonicClock()
        return cls(clock, clock.now(), budget_s)

    @property
    def expires_at(self) -> float:
        return self.started_at + self.budget_s

    def elapsed(self) -> float:
        return self._clock.now() - self.started_at

    def remaining(self) -> float:
        """Budget left; negative once the deadline has passed."""
        return self.expires_at - self._clock.now()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def overrun(self) -> float:
        """How far past the budget we are (0.0 while still inside it)."""
        return max(0.0, -self.remaining())

    def clamp(self, timeout_s: Optional[float]) -> Optional[float]:
        """``timeout_s`` cut down to the remaining budget.

        ``None`` (no per-attempt timeout) becomes the remaining budget
        itself, so an attempt started near expiry still gets a finite
        allowance; an already-expired deadline clamps to 0.0, which the
        executor treats as "don't even start".  The result is never
        negative: a nonsensical negative ``timeout_s`` also clamps to
        0.0 instead of leaking a negative allowance downstream.
        """
        remaining = max(0.0, self.remaining())
        if timeout_s is None:
            return remaining
        return max(0.0, min(float(timeout_s), remaining))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Deadline(budget={self.budget_s:.3f}s, "
                f"remaining={self.remaining():.3f}s)")

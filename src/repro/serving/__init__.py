"""Overload-safe serving for USaaS (§5 as a *service*, not a function).

PR 1 made ingestion fault-isolated and PR 3 made parallel execution
crash-safe; this package makes the *query front-end* overload-safe —
the discipline crowdsourced QoE platforms live or die on.  Seven
pieces:

* :mod:`repro.serving.deadline` — :class:`Deadline`, a monotonic
  per-query budget on the injectable clock; the ingestion executor
  clamps every per-attempt timeout to the remaining budget so retries
  are cut short instead of overrunning;
* :mod:`repro.serving.admission` — :class:`AdmissionController`, a
  bounded pending queue + concurrency limiter with priority classes
  (``interactive`` > ``batch`` > ``monitoring``) and LIFO-or-priority
  shedding via typed, picklable
  :class:`~repro.errors.QueryRejectedError`;
* :mod:`repro.serving.server` — :class:`UsaasServer`, the facade that
  runs admitted queries through ``UsaasService.answer()``, accounts
  every submission in exactly one terminal state, tracks per-class
  latency percentiles, and drains gracefully;
* :mod:`repro.serving.soak` — :func:`run_soak`, the deterministic
  overload harness driven by :meth:`FaultPlan.load_spikes`;
* :mod:`repro.serving.hashring` — :class:`HashRing`, consistent
  hashing with virtual nodes and a deterministic failover ladder;
* :mod:`repro.serving.cluster` — :class:`UsaasCluster`, the routing
  front-end over N replicas: per-tenant quotas + weighted-fair
  admission, breaker-driven ring rebalance, exact-once cluster
  accounting;
* :mod:`repro.serving.cluster_soak` — :func:`run_cluster_soak`, the
  cluster-wide soak replaying seeded arrivals against a seeded replica
  fault timeline.
"""

from repro.serving.admission import (
    PRIORITY_CLASSES,
    SHED_POLICIES,
    AdmissionController,
    Ticket,
)
from repro.serving.cluster import (
    REPLICA_STATES,
    ClusterMetrics,
    ReplicaHandle,
    TenantPolicy,
    TenantState,
    UsaasCluster,
)
from repro.serving.cluster_soak import (
    ClusterSoakReport,
    replica_seed,
    run_cluster_soak,
    synthetic_cluster,
)
from repro.serving.deadline import Deadline
from repro.serving.hashring import HashRing
from repro.serving.server import (
    OUTCOME_STATUSES,
    ClassCounters,
    DrainReport,
    QueryOutcome,
    ServingMetrics,
    UsaasServer,
)
from repro.serving.soak import SoakReport, run_soak

__all__ = [
    "AdmissionController",
    "ClassCounters",
    "ClusterMetrics",
    "ClusterSoakReport",
    "Deadline",
    "DrainReport",
    "HashRing",
    "OUTCOME_STATUSES",
    "PRIORITY_CLASSES",
    "QueryOutcome",
    "REPLICA_STATES",
    "ReplicaHandle",
    "SHED_POLICIES",
    "ServingMetrics",
    "SoakReport",
    "TenantPolicy",
    "TenantState",
    "Ticket",
    "UsaasCluster",
    "UsaasServer",
    "replica_seed",
    "run_cluster_soak",
    "run_soak",
    "synthetic_cluster",
]

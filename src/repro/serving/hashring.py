"""Consistent-hash routing: stable key -> replica assignment.

The cluster front-end shards users/sources across replicas by key.  Two
properties matter and both come from consistent hashing with virtual
nodes:

* **stability** — the same key always routes to the same replica while
  membership is unchanged (routing is a pure function of the key and
  the member set, never of arrival order or wall time);
* **minimal disruption** — removing a replica only remaps the keys that
  replica owned; every other key keeps its assignment, so a rebalance
  on replica loss touches the smallest possible slice of the key space.

Hashes are SHA-256 prefixes, so the ring layout is identical across
processes, hosts and Python versions — a requirement for the cluster
soak's byte-identical counters.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigError


def _point(data: str) -> int:
    """A stable 64-bit ring position for ``data``."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring with virtual nodes.

    >>> ring = HashRing(["r0", "r1", "r2"])
    >>> ring.route("user-42") == ring.route("user-42")
    True
    >>> ring.preference("user-42")[0] == ring.route("user-42")
    True
    """

    def __init__(self, replicas: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ConfigError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: List[int] = []          # sorted vnode positions
        self._owner: Dict[int, str] = {}      # position -> replica name
        self._members: set = set()
        for name in replicas:
            self.add(name)

    # -- membership --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def names(self) -> Tuple[str, ...]:
        """Current members, sorted (stable for reports and tests)."""
        return tuple(sorted(self._members))

    def add(self, name: str) -> None:
        if not name:
            raise ConfigError("replica name must be non-empty")
        if name in self._members:
            raise ConfigError(f"replica {name!r} is already on the ring")
        self._members.add(name)
        for i in range(self.vnodes):
            point = _point(f"{name}#{i}")
            # SHA-256 collisions across distinct vnode labels are not a
            # realistic concern; a duplicate point would mean two labels
            # hashed identically, which we treat as config corruption.
            if point in self._owner:
                raise ConfigError(
                    f"vnode hash collision for {name!r}#{i}"
                )
            self._owner[point] = name
            bisect.insort(self._points, point)

    def remove(self, name: str) -> None:
        if name not in self._members:
            raise ConfigError(f"replica {name!r} is not on the ring")
        self._members.discard(name)
        keep = [p for p in self._points if self._owner[p] != name]
        for point in self._points:
            if self._owner[point] == name:
                del self._owner[point]
        self._points = keep

    # -- routing -----------------------------------------------------------

    def route(self, key: str) -> str:
        """The replica that owns ``key`` (its primary)."""
        if not self._points:
            raise ConfigError("cannot route on an empty ring")
        index = bisect.bisect_right(self._points, _point(str(key)))
        if index == len(self._points):
            index = 0
        return self._owner[self._points[index]]

    def preference(self, key: str, n: int = 0) -> Tuple[str, ...]:
        """Distinct replicas in ring-walk order from ``key``'s position.

        The first entry is the primary (:meth:`route`); the rest are the
        failover ladder — the owners a router tries, in order, when the
        primary is unavailable.  ``n`` caps the list (0 = all members).
        """
        if not self._points:
            raise ConfigError("cannot route on an empty ring")
        limit = len(self._members) if n < 1 else min(n, len(self._members))
        start = bisect.bisect_right(self._points, _point(str(key)))
        seen: List[str] = []
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            owner = self._owner[point]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == limit:
                    break
        return tuple(seen)

    def ownership_share(self) -> Dict[str, float]:
        """Fraction of the ring each member owns (for balance tests)."""
        if not self._points:
            return {}
        space = float(2 ** 64)
        share: Dict[str, float] = {name: 0.0 for name in self._members}
        for i, point in enumerate(self._points):
            previous = self._points[i - 1] if i else self._points[-1] - 2 ** 64
            share[self._owner[point]] += (point - previous) / space
        return share

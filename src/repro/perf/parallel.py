"""Sharded parallel execution for the data factories — crash-safe.

Both generation pipelines (the §3 call simulator and the §4 corpus
generator) are embarrassingly parallel once every unit of work draws
from its own RNG substream (see :mod:`repro.rng` and DESIGN.md).  This
module supplies the execution layer: a shard planner that cuts a work
list into contiguous chunks, and :class:`ParallelMap`, which runs a
shard function over those chunks on a process pool and merges the
results back **in submission order** — so parallel output is
byte-identical to serial output.

On top of the ordered merge sits the fault-tolerance layer (see
``docs/performance.md`` §5):

* **per-shard retry** — a shard whose worker crashes (raises, dies,
  returns garbage) is requeued with deterministic seeded backoff
  (:class:`~repro.resilience.policy.RetryPolicy`) up to
  ``max_shard_retries`` times, without perturbing any other shard's
  result — the substream contract makes a re-executed shard
  byte-identical;
* a **watchdog** (:mod:`repro.perf.watchdog`) that times every shard
  against ``shard_timeout_s``, reclaims hung workers (restarting the
  pool when a worker will not die politely) and records a
  :class:`~repro.perf.watchdog.StragglerReport`;
* an optional **final in-process fallback** — the last attempt of a
  repeatedly failing shard runs in the coordinator process, outside any
  worker, so transient pool trouble can never fail a run that the
  serial path would have completed;
* **checkpointed resume** — pass a
  :class:`~repro.perf.checkpoint.CheckpointStore` and every completed
  shard is committed atomically; an interrupted run restarted with the
  same store re-executes only the missing shards;
* a **chaos seam** — pass a
  :class:`~repro.resilience.faults.ShardFaultInjector` and the engine
  runs deterministically in-process, simulating worker crashes, hangs,
  slowness and corrupt output on a
  :class:`~repro.resilience.clock.ManualClock`.

A shard that fails every attempt surfaces as a typed
:class:`~repro.errors.ShardExecutionError` naming the shard — never a
bare pool traceback.  Pool-level *infrastructure* failures (fork
refused, unpicklable work) still degrade silently to in-process
execution: parallelism is an optimisation, never a correctness
requirement.
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from concurrent.futures import BrokenExecutor, CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import ConfigError, SchemaError, ShardExecutionError
from repro.perf.watchdog import StragglerReport, Watchdog
from repro.resilience.clock import Clock, MonotonicClock
from repro.resilience.policy import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.checkpoint import CheckpointStore
    from repro.resilience.faults import ShardFaultInjector

T = TypeVar("T")
R = TypeVar("R")

#: Shards per worker.  More than one keeps the pool busy when shards
#: have uneven cost (e.g. outage days produce far more posts).
DEFAULT_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int) -> int:
    """Clamp a worker request to something the host can satisfy.

    ``workers <= 0`` means "use the host's CPU count" — the
    ``--workers 0`` CLI idiom.
    """
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


@dataclass(frozen=True)
class Shard:
    """One contiguous chunk of the work list.

    Attributes:
        index: position in the merge order.
        start / stop: half-open range into the original item list.
    """

    index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def plan_shards(
    n_items: int,
    workers: int,
    chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
    min_items_per_shard: int = 1,
) -> List[Shard]:
    """Cut ``n_items`` into contiguous, order-preserving shards.

    The plan covers every item exactly once, never emits an empty shard,
    and targets ``workers * chunks_per_worker`` shards so that stragglers
    (shards that happen to contain expensive units) don't serialise the
    whole run behind one worker.  ``min_items_per_shard`` caps the shard
    count from the other side: shards too small to amortise pool dispatch
    and pickling are merged (a small work list collapses to one shard,
    which the executor then runs in-process).
    """
    if n_items < 0:
        raise ConfigError("n_items must be non-negative")
    if workers < 1:
        raise ConfigError("workers must be >= 1 (resolve_workers first)")
    if chunks_per_worker < 1:
        raise ConfigError("chunks_per_worker must be >= 1")
    if min_items_per_shard < 1:
        raise ConfigError("min_items_per_shard must be >= 1")
    if n_items == 0:
        return []
    n_shards = min(
        n_items,
        workers * chunks_per_worker,
        max(1, n_items // min_items_per_shard),
    )
    base, extra = divmod(n_items, n_shards)
    shards: List[Shard] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(index=index, start=start, stop=start + size))
        start += size
    return shards


@dataclass(frozen=True)
class ExecutionPolicy:
    """Fault-tolerance knobs of the sharded executor.

    Attributes:
        max_shard_retries: how many times a failed shard is requeued
            (total attempts = retries + 1; 0 = fail fast).
        shard_timeout_s: per-shard time budget; a shard over budget is
            a straggler, and a shard whose worker never returns is
            reclaimed and requeued.  None disables the watchdog.
        fallback_in_process: run the final attempt of a repeatedly
            failing shard in the coordinator process, outside any pool
            worker.  Guarantees a run only fails when the serial path
            would have failed too.
        backoff: backoff shape between attempts; delays are a pure
            function of ``(seed, shard index, attempt)`` so retry
            schedules are reproducible.  None uses RetryPolicy defaults.
    """

    max_shard_retries: int = 2
    shard_timeout_s: Optional[float] = None
    fallback_in_process: bool = True
    backoff: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.max_shard_retries < 0:
            raise ConfigError("max_shard_retries must be >= 0")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigError("shard_timeout_s must be positive")

    @property
    def max_attempts(self) -> int:
        return self.max_shard_retries + 1

    def delays(self, key: str) -> Tuple[float, ...]:
        """The deterministic backoff schedule for one shard key."""
        if self.max_shard_retries == 0:
            return ()
        base = self.backoff or RetryPolicy()
        return base.with_attempts(self.max_attempts).schedule(key)


@dataclass
class ExecutionReport:
    """What one :meth:`ParallelMap.map_shards` call actually did.

    Attributes:
        mode: ``"pool"``, ``"in-process"``, ``"auto-serial"`` (the
            min-work heuristic collapsed a would-be pool run into one
            in-process shard) or ``"resumed"`` (every shard served from
            the checkpoint).
        shards_total: shards in the plan.
        shards_executed: shards actually run (and committed) this call.
        shards_resumed: shards served from the checkpoint store.
        retries: extra attempts beyond the first, summed over shards.
        fallbacks: shards resolved by the final in-process fallback.
        pool_restarts: process pools torn down to reclaim hung/dead
            workers.
        stragglers: the watchdog's report for this call.
    """

    mode: str = "in-process"
    shards_total: int = 0
    shards_executed: int = 0
    shards_resumed: int = 0
    retries: int = 0
    fallbacks: int = 0
    pool_restarts: int = 0
    stragglers: StragglerReport = field(default_factory=StragglerReport)

    def summary(self) -> str:
        return (
            f"{self.mode}: {self.shards_executed}/{self.shards_total} shards "
            f"executed, {self.shards_resumed} resumed, {self.retries} "
            f"retries, {self.fallbacks} fallbacks, {self.pool_restarts} "
            f"pool restarts; {self.stragglers.summary()}"
        )


class _PoolUnavailable(Exception):
    """Internal: the pool itself (not a shard) is unusable — go serial."""


class ParallelMap:
    """Ordered, fault-tolerant map of a shard function over a work list.

    The shard function receives a *list of items* and returns a *list of
    results*; :meth:`map_shards` concatenates the per-shard results in
    shard order, so the output is exactly what a serial loop would have
    produced — including across retries, requeues and resumes, because
    every unit of work draws from its own RNG substream.  The function
    (and its results) must be picklable for the pool path; anything that
    isn't falls back to in-process execution.
    """

    def __init__(
        self,
        workers: int = 1,
        chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
        policy: Optional[ExecutionPolicy] = None,
        clock: Optional[Clock] = None,
        chaos: Optional["ShardFaultInjector"] = None,
        min_items_per_shard: int = 1,
    ) -> None:
        self._workers = resolve_workers(workers)
        self._chunks_per_worker = chunks_per_worker
        self._min_items_per_shard = min_items_per_shard
        self._policy = policy or ExecutionPolicy()
        # Chaos simulation advances the injector's ManualClock; a real
        # run measures on the monotonic clock.
        self._clock = clock or (chaos.clock if chaos is not None
                                else MonotonicClock())
        self._chaos = chaos
        #: "pool" / "in-process" / "resumed" after the last
        #: :meth:`map_shards` call — tests and the perf harness read it.
        self.last_mode: str = "in-process"
        #: Full :class:`ExecutionReport` of the last call.
        self.last_report: ExecutionReport = ExecutionReport()

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def policy(self) -> ExecutionPolicy:
        return self._policy

    # -- the main entry point -------------------------------------------

    def map_shards(
        self,
        fn: Callable[[List[T]], List[R]],
        items: Sequence[T],
        checkpoint: Optional["CheckpointStore"] = None,
    ) -> List[R]:
        """Apply ``fn`` per shard and merge results in original order.

        With ``checkpoint``, shards already committed by a previous
        (possibly interrupted) run are loaded — after digest
        verification — instead of re-executed, and every shard completed
        here is committed as soon as it finishes, so a crash at any
        point loses at most the shards in flight.
        """
        items = list(items)
        # The min-work heuristic only reshapes plans it is safe to
        # reshape: chaos schedules and checkpoint manifests are both
        # keyed by shard index, so those runs keep the canonical plan.
        heuristic_active = (
            self._min_items_per_shard > 1
            and self._workers > 1
            and self._chaos is None
            and checkpoint is None
        )
        shards = plan_shards(
            len(items),
            self._workers,
            self._chunks_per_worker,
            self._min_items_per_shard if heuristic_active else 1,
        )
        # "auto-serial": the heuristic collapsed a plan that would have
        # gone to the pool into a single in-process shard.
        auto_serial = (
            heuristic_active
            and len(shards) == 1
            and min(len(items), self._workers * self._chunks_per_worker) > 1
        )
        report = ExecutionReport(shards_total=len(shards))
        watchdog = Watchdog(self._policy.shard_timeout_s, clock=self._clock)
        report.stragglers = watchdog.report
        self._watchdog = watchdog
        self.last_report = report
        if not shards:
            self.last_mode = report.mode = "in-process"
            return []
        chunks: Dict[int, List[T]] = {
            s.index: items[s.start:s.stop] for s in shards
        }
        results: Dict[int, List[R]] = {}
        if checkpoint is not None:
            for shard in shards:
                kept = checkpoint.load(shard)
                if kept is not None:
                    results[shard.index] = kept
            report.shards_resumed = len(results)
        pending = [s for s in shards if s.index not in results]
        if not pending:
            report.mode = "resumed"
        elif (
            self._workers > 1 and len(shards) > 1 and self._chaos is None
        ):
            try:
                self._run_pool(fn, pending, chunks, results, report, checkpoint)
                report.mode = "pool"
            except _PoolUnavailable:
                # Pool unavailable (sandbox, missing /dev/shm, unpicklable
                # work, interpreter teardown, ...): the serial path is
                # always correct, just slower.
                remaining = [s for s in pending if s.index not in results]
                self._run_serial(fn, remaining, chunks, results, report,
                                 checkpoint)
                report.mode = "in-process"
        else:
            self._run_serial(fn, pending, chunks, results, report, checkpoint)
            report.mode = "auto-serial" if auto_serial else "in-process"
        self.last_mode = report.mode
        merged: List[R] = []
        for shard in shards:
            merged.extend(results[shard.index])
        return merged

    # -- in-process engine (also the chaos simulator) --------------------

    def _run_serial(
        self,
        fn: Callable[[List[T]], List[R]],
        shards: List[Shard],
        chunks: Dict[int, List[T]],
        results: Dict[int, List[R]],
        report: ExecutionReport,
        checkpoint: Optional["CheckpointStore"],
    ) -> None:
        for shard in shards:
            part = self._run_shard_serial(fn, shard, chunks[shard.index], report)
            results[shard.index] = part
            report.shards_executed += 1
            if checkpoint is not None:
                checkpoint.commit(shard, part)

    def _run_shard_serial(
        self,
        fn: Callable[[List[T]], List[R]],
        shard: Shard,
        chunk: List[T],
        report: ExecutionReport,
    ) -> List[R]:
        """One shard, in-process, under the full retry/watchdog stack."""
        from repro.resilience.faults import InjectedFault

        policy = self._policy
        delays = policy.delays(f"shard-{shard.index}")
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            # The final attempt of a chaos run models the in-process
            # fallback: it executes outside the (simulated) worker, so
            # injected worker faults cannot touch it.
            bypass_chaos = (
                self._chaos is not None
                and policy.fallback_in_process
                and attempt == policy.max_attempts
                and policy.max_attempts > 1
            )
            action = "ok"
            if self._chaos is not None and not bypass_chaos:
                action = self._chaos.action(shard.index, attempt)
            started = self._watchdog.start()
            failure: Optional[BaseException] = None
            result: Optional[List[R]] = None
            if action == "crash":
                failure = InjectedFault(
                    f"injected worker crash (shard {shard.index}, "
                    f"attempt {attempt})"
                )
            elif action == "hang":
                budget = policy.shard_timeout_s or 0.0
                self._simulate_stall(budget + 1.0)
                failure = TimeoutError(
                    f"shard {shard.index} worker hung (attempt {attempt})"
                )
            else:
                if action == "slow":
                    self._simulate_stall(self._chaos.slow_s)
                try:
                    result = fn(list(chunk))
                except KeyboardInterrupt as exc:
                    # An interrupt must abort promptly — typed, named,
                    # but never retried.
                    raise ShardExecutionError(shard.index, attempt, exc) from exc
                except Exception as exc:
                    failure = exc
                if failure is None and self._chaos is not None and not bypass_chaos:
                    result = self._chaos.deliver(shard.index, attempt, result)
                if failure is None and not isinstance(result, list):
                    failure = SchemaError(
                        f"shard {shard.index} returned corrupt output "
                        f"({type(result).__name__}, not a list)"
                    )
            self._watchdog.observe(
                shard.index, attempt, started, completed=failure is None
            )
            if failure is None:
                # Slow-but-complete results are kept: the substream
                # contract makes them byte-identical regardless.
                if bypass_chaos:
                    report.fallbacks += 1
                return result
            last_error = failure
            if attempt < policy.max_attempts:
                report.retries += 1
                if attempt - 1 < len(delays):
                    self._clock.sleep(delays[attempt - 1])
                continue
        raise ShardExecutionError(
            shard.index, policy.max_attempts, last_error
        ) from last_error

    def _simulate_stall(self, seconds: float) -> None:
        """Advance simulated time (no-op on a real monotonic clock)."""
        advance = getattr(self._clock, "advance", None)
        if advance is not None and seconds > 0:
            advance(seconds)

    # -- pool engine ------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        try:
            return ProcessPoolExecutor(max_workers=self._workers)
        except (OSError, ValueError, RuntimeError) as exc:
            raise _PoolUnavailable from exc

    def _run_pool(
        self,
        fn: Callable[[List[T]], List[R]],
        shards: List[Shard],
        chunks: Dict[int, List[T]],
        results: Dict[int, List[R]],
        report: ExecutionReport,
        checkpoint: Optional["CheckpointStore"],
    ) -> None:
        policy = self._policy
        attempts: Dict[int, int] = {s.index: 0 for s in shards}
        queue: Deque[Shard] = deque(shards)
        pool = self._new_pool()
        try:
            while queue:
                batch = list(queue)
                queue.clear()
                submitted = []
                for shard in batch:
                    attempts[shard.index] += 1
                    try:
                        future = pool.submit(fn, chunks[shard.index])
                    except (RuntimeError, OSError) as exc:
                        raise _PoolUnavailable from exc
                    submitted.append((shard, future))
                abandoned = False
                for shard, future in submitted:
                    if abandoned:
                        # The pool was torn down under this future; a
                        # result that finished anyway is kept, everything
                        # else requeues uncharged (not the shard's fault).
                        part = self._harvest(future)
                        if isinstance(part, list):
                            self._accept(shard, part, results, report,
                                         checkpoint)
                        else:
                            attempts[shard.index] -= 1
                            queue.append(shard)
                        continue
                    started = self._watchdog.start()
                    attempt = attempts[shard.index]
                    try:
                        part = future.result(timeout=policy.shard_timeout_s)
                    except FuturesTimeoutError:
                        # Hung (or just glacial) worker: the watchdog
                        # reclaims it.  A queued future cancels cleanly; a
                        # running one only dies with its pool.
                        self._watchdog.observe(
                            shard.index, attempt, started, completed=False
                        )
                        if not future.cancel():
                            pool.shutdown(wait=False, cancel_futures=True)
                            pool = self._new_pool()
                            report.pool_restarts += 1
                            abandoned = True
                        error: BaseException = TimeoutError(
                            f"shard {shard.index} exceeded its "
                            f"{policy.shard_timeout_s}s budget"
                        )
                        pool = self._resolve_failure(
                            fn, shard, chunks, attempts, queue, results,
                            report, checkpoint, error, pool,
                        )
                        continue
                    except KeyboardInterrupt as exc:
                        raise ShardExecutionError(
                            shard.index, attempt, exc
                        ) from exc
                    except BrokenExecutor as exc:
                        # A worker process died (crash, OOM-kill): the
                        # whole pool is unusable.  Restart it and requeue.
                        pool.shutdown(wait=False)
                        pool = self._new_pool()
                        report.pool_restarts += 1
                        abandoned = True
                        pool = self._resolve_failure(
                            fn, shard, chunks, attempts, queue, results,
                            report, checkpoint, exc, pool,
                        )
                        continue
                    except (pickle.PicklingError, AttributeError,
                            TypeError) as exc:
                        # Unpicklable work/result is an infrastructure
                        # problem, not a shard failure.
                        raise _PoolUnavailable from exc
                    except (Exception, CancelledError) as exc:
                        pool = self._resolve_failure(
                            fn, shard, chunks, attempts, queue, results,
                            report, checkpoint, exc, pool,
                        )
                        continue
                    if not isinstance(part, list):
                        error = SchemaError(
                            f"shard {shard.index} returned corrupt output "
                            f"({type(part).__name__}, not a list)"
                        )
                        pool = self._resolve_failure(
                            fn, shard, chunks, attempts, queue, results,
                            report, checkpoint, error, pool,
                        )
                        continue
                    self._watchdog.observe(
                        shard.index, attempt, started, completed=True
                    )
                    self._accept(shard, part, results, report, checkpoint)
        finally:
            pool.shutdown(wait=False)

    def _harvest(self, future) -> object:
        """A completed future's result, or None when it has none to give."""
        if not future.done():
            return None
        try:
            return future.result(timeout=0)
        except (Exception, CancelledError):
            return None

    def _accept(
        self,
        shard: Shard,
        part: List[R],
        results: Dict[int, List[R]],
        report: ExecutionReport,
        checkpoint: Optional["CheckpointStore"],
    ) -> None:
        results[shard.index] = part
        report.shards_executed += 1
        if checkpoint is not None:
            checkpoint.commit(shard, part)

    def _resolve_failure(
        self,
        fn: Callable[[List[T]], List[R]],
        shard: Shard,
        chunks: Dict[int, List[T]],
        attempts: Dict[int, int],
        queue: Deque[Shard],
        results: Dict[int, List[R]],
        report: ExecutionReport,
        checkpoint: Optional["CheckpointStore"],
        error: BaseException,
        pool: ProcessPoolExecutor,
    ) -> ProcessPoolExecutor:
        """Requeue a failed shard, fall back in-process, or give up typed."""
        policy = self._policy
        attempt = attempts[shard.index]
        if attempt < policy.max_attempts:
            report.retries += 1
            delays = policy.delays(f"shard-{shard.index}")
            if attempt - 1 < len(delays):
                self._clock.sleep(delays[attempt - 1])
            queue.append(shard)
            return pool
        if policy.fallback_in_process:
            # Last resort: execute the shard here, outside any worker.
            try:
                part = fn(list(chunks[shard.index]))
            except (Exception, KeyboardInterrupt) as exc:
                raise ShardExecutionError(
                    shard.index, attempt + 1, exc
                ) from exc
            if not isinstance(part, list):
                raise ShardExecutionError(
                    shard.index, attempt + 1,
                    SchemaError("in-process fallback returned corrupt output"),
                )
            report.fallbacks += 1
            self._accept(shard, part, results, report, checkpoint)
            return pool
        raise ShardExecutionError(shard.index, attempt, error) from error


def split_evenly(items: Sequence[T], workers: int) -> List[Tuple[int, List[T]]]:
    """Convenience view of the shard plan as ``(index, chunk)`` pairs."""
    items = list(items)
    return [
        (s.index, items[s.start:s.stop])
        for s in plan_shards(len(items), resolve_workers(workers))
    ]

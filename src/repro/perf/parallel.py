"""Sharded parallel execution for the data factories.

Both generation pipelines (the §3 call simulator and the §4 corpus
generator) are embarrassingly parallel once every unit of work draws
from its own RNG substream (see :mod:`repro.rng` and DESIGN.md).  This
module supplies the execution layer: a shard planner that cuts a work
list into contiguous chunks, and :class:`ParallelMap`, which runs a
shard function over those chunks on a process pool and merges the
results back **in submission order** — so parallel output is
byte-identical to serial output.

Fallback behaviour is deliberately boring: ``workers=1``, a single
shard, or any pool-level failure (fork refused, unpicklable work,
broken pool) silently degrades to in-process execution.  Parallelism
here is an optimisation, never a correctness requirement.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")
R = TypeVar("R")

#: Shards per worker.  More than one keeps the pool busy when shards
#: have uneven cost (e.g. outage days produce far more posts).
DEFAULT_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: int) -> int:
    """Clamp a worker request to something the host can satisfy.

    ``workers <= 0`` means "use the host's CPU count" — the
    ``--workers 0`` CLI idiom.
    """
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


@dataclass(frozen=True)
class Shard:
    """One contiguous chunk of the work list.

    Attributes:
        index: position in the merge order.
        start / stop: half-open range into the original item list.
    """

    index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def plan_shards(
    n_items: int,
    workers: int,
    chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
) -> List[Shard]:
    """Cut ``n_items`` into contiguous, order-preserving shards.

    The plan covers every item exactly once, never emits an empty shard,
    and targets ``workers * chunks_per_worker`` shards so that stragglers
    (shards that happen to contain expensive units) don't serialise the
    whole run behind one worker.
    """
    if n_items < 0:
        raise ConfigError("n_items must be non-negative")
    if workers < 1:
        raise ConfigError("workers must be >= 1 (resolve_workers first)")
    if chunks_per_worker < 1:
        raise ConfigError("chunks_per_worker must be >= 1")
    if n_items == 0:
        return []
    n_shards = min(n_items, workers * chunks_per_worker)
    base, extra = divmod(n_items, n_shards)
    shards: List[Shard] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(index=index, start=start, stop=start + size))
        start += size
    return shards


class ParallelMap:
    """Ordered map of a shard function over a work list.

    The shard function receives a *list of items* and returns a *list of
    results*; :meth:`map_shards` concatenates the per-shard results in
    shard order, so the output is exactly what a serial loop would have
    produced.  The function (and its results) must be picklable for the
    pool path; anything that isn't falls back to in-process execution.
    """

    def __init__(
        self,
        workers: int = 1,
        chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
    ) -> None:
        self._workers = resolve_workers(workers)
        self._chunks_per_worker = chunks_per_worker
        #: "pool" or "in-process" after the last :meth:`map_shards` call —
        #: lets tests and the perf harness see which path actually ran.
        self.last_mode: str = "in-process"

    @property
    def workers(self) -> int:
        return self._workers

    def map_shards(
        self,
        fn: Callable[[List[T]], List[R]],
        items: Sequence[T],
    ) -> List[R]:
        """Apply ``fn`` per shard and merge results in original order."""
        items = list(items)
        shards = plan_shards(len(items), self._workers, self._chunks_per_worker)
        if self._workers == 1 or len(shards) <= 1:
            self.last_mode = "in-process"
            return fn(items) if items else []
        chunks = [items[s.start:s.stop] for s in shards]
        try:
            merged = self._run_pool(fn, chunks)
            self.last_mode = "pool"
            return merged
        except (OSError, ValueError, RuntimeError, pickle.PicklingError,
                AttributeError, TypeError):
            # Pool unavailable (sandbox, missing /dev/shm, unpicklable
            # work, interpreter teardown, ...): the serial path is always
            # correct, just slower.
            self.last_mode = "in-process"
            return fn(items)

    def _run_pool(
        self,
        fn: Callable[[List[T]], List[R]],
        chunks: List[List[T]],
    ) -> List[R]:
        merged: List[R] = []
        with ProcessPoolExecutor(max_workers=self._workers) as pool:
            # map() preserves submission order — the ordered merge.
            for part in pool.map(fn, chunks):
                merged.extend(part)
        return merged


def split_evenly(items: Sequence[T], workers: int) -> List[Tuple[int, List[T]]]:
    """Convenience view of the shard plan as ``(index, chunk)`` pairs."""
    items = list(items)
    return [
        (s.index, items[s.start:s.stop])
        for s in plan_shards(len(items), resolve_workers(workers))
    ]

"""Content-addressed artifact cache for generated datasets.

Generation is deterministic in the config (that is the whole point of
the substream RNG contract), so an artifact is fully identified by a
hash of its configuration plus the serialisation schema version.  The
cache exploits that: ``load_or_build`` returns the cached JSONL artifact
when the fingerprint matches and transparently regenerates (and
persists) it otherwise.  Benchmarks and USaaS queries hit warm cache
instead of resimulating; changing any config field — or bumping
:data:`ARTIFACT_SCHEMA_VERSION` when the on-disk schema changes —
changes the fingerprint and therefore misses cleanly.

Corrupted entries are never fatal: a cache file that fails to load is
evicted and the artifact rebuilt from scratch, mirroring the
stale-cache salvage behaviour of the resilience layer (PR 1).
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError, ReproError

PathLike = Union[str, Path]

#: Bump whenever the JSONL serialisation of a cached artifact changes —
#: old entries then miss (and are rebuilt) instead of deserialising
#: into garbage.
ARTIFACT_SCHEMA_VERSION = "1"

#: Config fields that select *how* an artifact is computed, not *what*
#: it is.  They are excluded from the fingerprint so a parallel run and
#: a serial run share one cache entry (their outputs are byte-identical
#: by contract).
EXECUTION_ONLY_FIELDS = frozenset({"workers"})


def _canonical(value: Any) -> Any:
    """Reduce a config value to a JSON-stable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.name not in EXECUTION_ONLY_FIELDS
        }
    if isinstance(value, Mapping):
        return {str(_canonical(k)): _canonical(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0])
        )}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in value]
        return sorted(items, key=repr) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, (dt.date, dt.datetime)):
        return value.isoformat()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Objects without a stable field view (e.g. a QoeModel with numpy
    # internals) fall back to their repr — dataclasses cover everything
    # this repo actually caches.
    return repr(value)


def config_fingerprint(
    kind: str,
    config: Any,
    schema_version: str = ARTIFACT_SCHEMA_VERSION,
) -> str:
    """SHA-256 over the canonical config, the kind and the schema version."""
    payload = {
        "kind": kind,
        "schema_version": schema_version,
        "config": _canonical(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of the cache directory plus session counters.

    Attributes:
        entries: artifact files currently on disk.
        total_bytes: their combined size.
        hits / misses: ``load_or_build`` outcomes for this cache object.
        evictions: corrupted entries dropped and rebuilt.
        by_kind: entry count per artifact kind.
    """

    entries: int
    total_bytes: int
    hits: int
    misses: int
    evictions: int
    by_kind: Mapping[str, int]

    def summary(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_kind.items())
        ) or "none"
        return (
            f"{self.entries} entries / {self.total_bytes} bytes "
            f"({kinds}); session: {self.hits} hits, {self.misses} misses, "
            f"{self.evictions} evictions"
        )


class ArtifactCache:
    """Content-addressed store of generated artifacts under one root.

    Entries live at ``<root>/<kind>-<fingerprint16>.jsonl`` with a JSON
    sidecar recording the full fingerprint and the canonical config for
    inspection.  Writes go through the artifact's own atomic JSONL
    export, so a crash mid-build can never leave a truncated entry.
    """

    def __init__(
        self,
        root: PathLike,
        schema_version: str = ARTIFACT_SCHEMA_VERSION,
    ) -> None:
        self._root = Path(root)
        self._schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Failed deletions during evictions (raced with another
        #: process) — surfaced instead of silently swallowed.
        self.evict_races = 0
        #: How long load_or_build waits for a concurrent writer holding
        #: the entry's build lock before giving up (LockTimeoutError).
        self.lock_timeout_s = 300.0

    @property
    def root(self) -> Path:
        return self._root

    # -- addressing ------------------------------------------------------

    def fingerprint(self, kind: str, config: Any) -> str:
        return config_fingerprint(kind, config, self._schema_version)

    def path_for(self, kind: str, config: Any) -> Path:
        """Where the artifact for this (kind, config) lives on disk."""
        if not kind or any(c in kind for c in "/\\."):
            raise ConfigError(f"invalid artifact kind {kind!r}")
        digest = self.fingerprint(kind, config)
        return self._root / f"{kind}-{digest[:16]}.jsonl"

    # -- the main entry point -------------------------------------------

    def load_or_build(
        self,
        kind: str,
        config: Any,
        build: Callable[[], Any],
        load: Callable[[Path], Any],
        dump: Callable[[Any, Path], Any],
    ) -> Any:
        """Return the cached artifact, or build + persist it on a miss.

        ``load`` / ``dump`` adapt the artifact's own (de)serialisation —
        e.g. ``CallDataset.from_jsonl`` / ``CallDataset.to_jsonl``.  A
        cache file that fails to load (truncated, corrupted, written by
        an incompatible schema) is evicted and rebuilt; the cache never
        turns a warm path into a hard failure.

        Builds hold an advisory file lock on the entry, so two processes
        missing on the same fingerprint build it once: the second waits,
        re-checks, and loads the first's artifact.  (Both share one
        ``<entry>.jsonl.tmp`` sibling otherwise — interleaved writes.)
        """
        path = self.path_for(kind, config)
        artifact = self._try_load(path, load)
        if artifact is not None:
            return artifact
        from repro.io.locks import file_lock

        self._root.mkdir(parents=True, exist_ok=True)
        with file_lock(path, timeout_s=self.lock_timeout_s):
            # Double-checked: a concurrent writer may have finished the
            # build while this process waited on the lock.
            artifact = self._try_load(path, load)
            if artifact is not None:
                return artifact
            self.misses += 1
            artifact = build()
            dump(artifact, path)
            self._write_sidecar(path, kind, config)
        return artifact

    def _try_load(self, path: Path, load: Callable[[Path], Any]) -> Any:
        """Load the entry at ``path``; evict and return None when unusable."""
        if not path.exists():
            return None
        try:
            artifact = load(path)
        except (ReproError, ValueError, KeyError, OSError):
            self.evictions += 1
            self._evict(path)
            return None
        self.hits += 1
        return artifact

    # -- maintenance -----------------------------------------------------

    def invalidate(self, kind: Optional[str] = None) -> int:
        """Drop cached entries (all, or just one kind); returns the count."""
        dropped = 0
        for path, entry_kind in self._entries():
            if kind is None or entry_kind == kind:
                self._evict(path)
                dropped += 1
        return dropped

    def stats(self) -> CacheStats:
        entries = list(self._entries())
        by_kind: Dict[str, int] = {}
        total = 0
        for path, entry_kind in entries:
            by_kind[entry_kind] = by_kind.get(entry_kind, 0) + 1
            total += self._size_of(path)
        return CacheStats(
            entries=len(entries),
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            by_kind=by_kind,
        )

    # -- internals -------------------------------------------------------

    def _entries(self) -> List[Tuple[Path, str]]:
        if not self._root.is_dir():
            return []
        out: List[Tuple[Path, str]] = []
        for path in sorted(self._root.glob("*.jsonl")):
            kind = path.stem.rsplit("-", 1)[0]
            out.append((path, kind))
        return out

    def _sidecar(self, path: Path) -> Path:
        return path.with_suffix(".meta.json")

    def _size_of(self, path: Path) -> int:
        """Entry size in bytes; 0 when it raced with an eviction."""
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def _evict(self, path: Path) -> None:
        # Eviction is idempotent: a target already deleted (possibly by
        # a concurrent process) only bumps the race counter.
        for target in (path, self._sidecar(path)):
            try:
                os.unlink(target)
            except OSError:
                self.evict_races += 1

    def _write_sidecar(self, path: Path, kind: str, config: Any) -> None:
        from repro.io.jsonl import atomic_writer

        meta = {
            "kind": kind,
            "fingerprint": self.fingerprint(kind, config),
            "schema_version": self._schema_version,
            "created_unix": time.time(),
            "config": _canonical(config),
        }
        with atomic_writer(self._sidecar(path)) as f:
            f.write(json.dumps(meta, sort_keys=True, indent=2) + "\n")


def default_cache_root() -> Path:
    """The conventional cache location (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"

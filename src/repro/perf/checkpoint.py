"""Checkpointed resume for sharded generation runs.

A long parallel run should not lose everything to one crash, power cut
or Ctrl-C.  The :class:`CheckpointStore` gives
:class:`~repro.perf.parallel.ParallelMap` durable progress: each
completed shard is written to its own JSONL file (atomically, via
``.tmp`` + ``os.replace``) and recorded in a ``manifest.json`` that is
itself rewritten atomically after every commit — so at any instant the
directory holds a consistent set of fully-written shards.  A restarted
run passes the same store back in and re-executes only the shards the
manifest does not vouch for.

The manifest vouches with two hashes per shard (format documented in
DESIGN.md §7):

* the **shard fingerprint** — SHA-256 over ``run_key : index : start :
  stop``, where ``run_key`` is the artifact's config fingerprint
  (:func:`repro.perf.cache.config_fingerprint`).  Any change to the
  config, the schema version or the shard plan (e.g. a different
  ``--workers``) changes the fingerprint, so stale checkpoints are
  silently re-executed, never wrongly reused;
* the **output digest** — SHA-256 over the shard file's exact bytes,
  computed while writing.  A shard file that was truncated, edited or
  torn after commit fails verification and is dropped.

Resume is therefore safe by construction: a kept shard is byte-for-byte
the shard the original run produced, and the substream RNG contract
guarantees the re-executed shards are byte-identical to what the
interrupted run *would* have produced — so a resumed run's merged output
equals an uninterrupted run's, exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.io.jsonl import atomic_writer, json_default
from repro.perf.parallel import Shard

PathLike = Union[str, Path]

#: Bump when the manifest layout or shard file framing changes; old
#: checkpoint directories then re-execute cleanly instead of
#: deserialising into garbage.
CHECKPOINT_SCHEMA_VERSION = "1"

MANIFEST_NAME = "manifest.json"


def shard_fingerprint(run_key: str, shard: Shard) -> str:
    """SHA-256 identity of one shard of one run.

    Binds the run (config fingerprint) to the shard's position *and*
    extent, so a checkpoint taken under one shard plan can never be
    grafted onto another.
    """
    blob = f"{run_key}:{shard.index}:{shard.start}:{shard.stop}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Durable per-shard progress for one (run_key, shard plan) run.

    Args:
        root: checkpoint directory (created on first commit).
        run_key: identity of the run — use the artifact's config
            fingerprint so resume can never mix configs.
        encode: maps one in-memory record to a JSON-serialisable value
            (default: identity).
        decode: inverse of ``encode`` (default: identity).

    Counters:
        committed: shards written by this store object.
        resumed: shards served from disk after verification.
        invalid: manifest entries rejected (missing file, digest or
            fingerprint mismatch, wrong record count) and re-executed.
    """

    def __init__(
        self,
        root: PathLike,
        run_key: str,
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self._root = Path(root)
        self._run_key = str(run_key)
        self._encode = encode
        self._decode = decode
        self.committed = 0
        self.resumed = 0
        self.invalid = 0
        self._shards: Dict[int, Dict[str, Any]] = {}
        self._load_manifest()

    @property
    def root(self) -> Path:
        return self._root

    @property
    def run_key(self) -> str:
        return self._run_key

    # -- manifest ---------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self._root / MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, ValueError):
            # Missing or torn manifest: an empty checkpoint, not an
            # error — the run simply starts from scratch.
            return
        if not isinstance(data, dict):
            return
        if data.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            return
        if data.get("run_key") != self._run_key:
            # A checkpoint for a different config/schema: ignore it
            # wholesale rather than mix artifacts.
            return
        shards = data.get("shards")
        if not isinstance(shards, dict):
            return
        for key, entry in shards.items():
            try:
                index = int(key)
            except (TypeError, ValueError):
                continue
            if isinstance(entry, dict):
                self._shards[index] = entry

    def _write_manifest(self) -> None:
        self._root.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "run_key": self._run_key,
            "shards": {
                str(index): entry
                for index, entry in sorted(self._shards.items())
            },
        }
        with atomic_writer(self._manifest_path()) as f:
            f.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")

    # -- commit / load ----------------------------------------------------

    def _shard_file(self, shard: Shard) -> Path:
        return self._root / f"shard-{shard.index:05d}.jsonl"

    def commit(self, shard: Shard, records: List[Any]) -> None:
        """Durably record one completed shard.

        The shard file lands atomically, its digest is computed over the
        exact bytes written, and the manifest is rewritten atomically —
        a crash between any two steps leaves a consistent checkpoint
        (at worst the shard is re-executed on resume).
        """
        self._root.mkdir(parents=True, exist_ok=True)
        path = self._shard_file(shard)
        digest = hashlib.sha256()
        with atomic_writer(path) as f:
            for record in records:
                value = self._encode(record) if self._encode else record
                line = json.dumps(value, default=json_default) + "\n"
                digest.update(line.encode("utf-8"))
                f.write(line)
        self._shards[shard.index] = {
            "fingerprint": shard_fingerprint(self._run_key, shard),
            "digest": digest.hexdigest(),
            "n_records": len(records),
            "file": path.name,
        }
        self._write_manifest()
        self.committed += 1

    def load(self, shard: Shard) -> Optional[List[Any]]:
        """The shard's committed records, or None if it must re-execute.

        Verifies the manifest entry end to end — shard fingerprint,
        file presence, byte digest, record count — and drops the entry
        (counting it in ``invalid``) on any mismatch.
        """
        entry = self._shards.get(shard.index)
        if entry is None:
            return None
        expected = shard_fingerprint(self._run_key, shard)
        if entry.get("fingerprint") != expected:
            self._drop(shard.index)
            return None
        path = self._root / str(entry.get("file", ""))
        try:
            raw = path.read_bytes()
        except OSError:
            self._drop(shard.index)
            return None
        if hashlib.sha256(raw).hexdigest() != entry.get("digest"):
            self._drop(shard.index)
            return None
        records: List[Any] = []
        try:
            for line in raw.decode("utf-8").splitlines():
                if line.strip():
                    records.append(json.loads(line))
        except ValueError:
            self._drop(shard.index)
            return None
        if len(records) != entry.get("n_records"):
            self._drop(shard.index)
            return None
        if self._decode:
            records = [self._decode(r) for r in records]
        self.resumed += 1
        return records

    def _drop(self, index: int) -> None:
        self._shards.pop(index, None)
        self.invalid += 1

    # -- inspection / cleanup ---------------------------------------------

    def completed_indices(self) -> List[int]:
        """Shard indices the manifest currently vouches for."""
        return sorted(self._shards)

    def discard(self) -> int:
        """Delete the checkpoint's contents (run finished); returns leftovers.

        Foreign files (or a raced delete) are left in place and counted,
        never raised over — discarding a finished checkpoint must not be
        able to fail the run it just completed.
        """
        self._shards.clear()
        if not self._root.is_dir():
            return 0
        leftovers = 0
        for path in self._root.iterdir():
            try:
                os.unlink(path)
            except OSError:
                leftovers += 1
        if leftovers == 0:
            try:
                os.rmdir(self._root)
            except OSError:
                leftovers += 1
        return leftovers

    def summary(self) -> str:
        return (
            f"checkpoint {self._root}: {len(self._shards)} shard(s) held, "
            f"{self.committed} committed, {self.resumed} resumed, "
            f"{self.invalid} invalid"
        )

"""Per-shard watchdog: detect hung and straggling workers.

A parallel run is only as fast as its slowest shard, and only as
*reliable* as its ability to notice that a shard stopped making progress
at all.  The :class:`Watchdog` owns the per-shard time budget: the
executor stamps a start time before waiting on a shard and reports the
outcome afterwards; any shard over budget lands in the
:class:`StragglerReport` — either as ``"completed"`` (slow but done, its
result is kept because the substream contract makes it byte-identical
anyway) or ``"requeued"`` (hung or killed; the executor reclaims the
worker and re-runs the shard).

Time comes from an injectable :class:`~repro.resilience.clock.Clock`, so
the chaos suite drives a :class:`~repro.resilience.clock.ManualClock`
and a "30-second hang" costs the test suite nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.resilience.clock import Clock, MonotonicClock


@dataclass(frozen=True)
class StragglerRecord:
    """One shard observed over its time budget.

    Attributes:
        shard_index: which shard straggled.
        attempt: which attempt (counting from 1) blew the budget.
        elapsed_s: how long the attempt took (clock time).
        budget_s: the budget it was given.
        action: ``"completed"`` (late result kept) or ``"requeued"``
            (worker hung/killed; the shard was re-executed).
    """

    shard_index: int
    attempt: int
    elapsed_s: float
    budget_s: float
    action: str


@dataclass
class StragglerReport:
    """Every straggler a run produced, in observation order."""

    records: List[StragglerRecord] = field(default_factory=list)

    def add(self, record: StragglerRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def n_requeued(self) -> int:
        return sum(1 for r in self.records if r.action == "requeued")

    @property
    def n_slow(self) -> int:
        return sum(1 for r in self.records if r.action == "completed")

    def worst(self) -> Optional[StragglerRecord]:
        if not self.records:
            return None
        return max(self.records, key=lambda r: r.elapsed_s)

    def summary(self) -> str:
        if not self.records:
            return "no stragglers"
        worst = self.worst()
        return (
            f"{len(self.records)} straggler(s): {self.n_requeued} requeued, "
            f"{self.n_slow} slow-but-complete; worst shard "
            f"{worst.shard_index} at {worst.elapsed_s:.3f}s "
            f"(budget {worst.budget_s:.3f}s)"
        )


class Watchdog:
    """Times shard attempts against a budget and records stragglers.

    ``timeout_s=None`` disables the budget entirely — ``observe`` then
    never records anything, which is the default for small runs.
    """

    def __init__(
        self,
        timeout_s: Optional[float] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.timeout_s = timeout_s
        self._clock = clock or MonotonicClock()
        self.report = StragglerReport()

    def start(self) -> float:
        """Stamp the start of a shard attempt; pass the token to observe."""
        return self._clock.now()

    def expired(self, started: float) -> bool:
        """Has the budget for an attempt started at ``started`` passed?"""
        if self.timeout_s is None:
            return False
        return (self._clock.now() - started) > self.timeout_s

    def observe(
        self,
        shard_index: int,
        attempt: int,
        started: float,
        completed: bool,
    ) -> Optional[StragglerRecord]:
        """Record the attempt if it blew its budget; return the record."""
        if self.timeout_s is None:
            return None
        elapsed = self._clock.now() - started
        if elapsed <= self.timeout_s:
            return None
        record = StragglerRecord(
            shard_index=shard_index,
            attempt=attempt,
            elapsed_s=elapsed,
            budget_s=self.timeout_s,
            action="completed" if completed else "requeued",
        )
        self.report.add(record)
        return record

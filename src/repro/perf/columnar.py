"""Columnar (struct-of-arrays) query layer over the record datasets.

The §3/§4 analyses consume frozen dataclasses record by record; at the
ROADMAP's target scale the *read* path, not the generator, becomes the
bottleneck.  This module converts a :class:`~repro.telemetry.store.CallDataset`
and a Reddit corpus into numpy column blocks **once** — lazily, memoized
on the dataset object, and optionally persisted through the
content-addressed :class:`~repro.perf.cache.ArtifactCache` — so every
engagement curve, signal export and timeline reads contiguous arrays
with zero per-record ``getattr`` loops.

The contract (property-tested in ``tests/perf/test_columnar.py``): the
columns are the *same* float64 values the records carry, so any analysis
rewired on top of them is float-for-float identical to the record path.
See ``docs/performance.md`` §6 for the cache-key contract.
"""

from __future__ import annotations

import base64
import datetime as dt
import json
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.timeline import month_of
from repro.errors import SchemaError
from repro.nlp.sentiment import STRONG_THRESHOLD, SentimentAnalyzer, SentimentScores
from repro.telemetry.schema import (
    AGGREGATES,
    ENGAGEMENT_METRICS,
    NETWORK_METRICS,
    ParticipantRecord,
)
from repro.telemetry.store import CallDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.cache import ArtifactCache

#: Bump when the on-disk column serialisation changes; persisted blocks
#: from other versions then fail to load and are rebuilt by the cache.
COLUMNS_SCHEMA = 1

#: Attribute used to memoize built columns on the source dataset object.
_MEMO_ATTR = "_columnar_cache"


# -- serialisation helpers -------------------------------------------------


def _encode_f64(arr: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(arr, dtype="<f8").tobytes()
    ).decode("ascii")


def _decode_f64(data: str, n: int, name: str) -> np.ndarray:
    arr = np.frombuffer(base64.b64decode(data), dtype="<f8").copy()
    if len(arr) != n:
        raise SchemaError(f"column {name!r}: expected {n} values, got {len(arr)}")
    return arr


def _encode_i64(arr: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(arr, dtype="<i8").tobytes()
    ).decode("ascii")


def _decode_i64(data: str, n: int, name: str) -> np.ndarray:
    arr = np.frombuffer(base64.b64decode(data), dtype="<i8").copy()
    if len(arr) != n:
        raise SchemaError(f"column {name!r}: expected {n} values, got {len(arr)}")
    return arr


def _encode_bool(arr: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(arr.astype(np.uint8)).tobytes()
    ).decode("ascii")


def _decode_bool(data: str, n: int, name: str) -> np.ndarray:
    arr = np.frombuffer(base64.b64decode(data), dtype=np.uint8)
    if len(arr) != n:
        raise SchemaError(f"column {name!r}: expected {n} values, got {len(arr)}")
    return arr.astype(bool)


def _check_len(name: str, seq: Sequence, n: int) -> Sequence:
    if len(seq) != n:
        raise SchemaError(f"column {name!r}: expected {n} values, got {len(seq)}")
    return seq


# -- participant columns ---------------------------------------------------


@dataclass
class ParticipantColumns:
    """Struct-of-arrays view of participant sessions (plus call start).

    One row per participant session, in dataset order (calls in order,
    participants within each call in order) — the exact order
    :meth:`CallDataset.participants` yields.  Float columns hold the
    identical float64 values the records carry; ``rating`` uses NaN for
    the unrated majority.
    """

    call_id: List[str]
    user_id: List[str]
    platform: List[str]
    country: List[str]
    call_start: List[Optional[dt.datetime]]
    session_duration_s: np.ndarray
    presence_pct: np.ndarray
    cam_on_pct: np.ndarray
    mic_on_pct: np.ndarray
    conditioning: np.ndarray
    dropped_early: np.ndarray
    rating: np.ndarray
    network: Dict[str, Dict[str, np.ndarray]]

    def __len__(self) -> int:
        return len(self.call_id)

    def metric(self, name: str, stat: str = "mean") -> np.ndarray:
        """Column analogue of :meth:`ParticipantRecord.metric`."""
        try:
            return self.network[name][stat]
        except KeyError:
            raise SchemaError(f"no aggregate {name!r}/{stat!r}") from None

    def engagement_values(self, name: str) -> np.ndarray:
        """Engagement column; ``dropped_early`` maps to 0/100 like the
        record path's ``100.0 * float(p.dropped_early)``."""
        if name == "dropped_early":
            return self.dropped_early * 100.0
        if name not in ENGAGEMENT_METRICS:
            raise SchemaError(f"unknown engagement metric {name!r}")
        return getattr(self, name)

    def window_mask(self, windows: Iterable) -> np.ndarray:
        """Row mask for sessions inside every condition window.

        Windows are duck-typed (``.metric`` / ``.stat`` / ``.low`` /
        ``.high``) so this layer stays independent of
        :mod:`repro.engagement.cohort`; the comparisons are the exact
        ones :meth:`ConditionWindow.contains` performs.
        """
        mask = np.ones(len(self), dtype=bool)
        for w in windows:
            arr = self.metric(w.metric, w.stat)
            mask &= (arr >= w.low) & (arr <= w.high)
        return mask

    # -- construction ----------------------------------------------------

    @classmethod
    def from_dataset(cls, dataset: CallDataset) -> "ParticipantColumns":
        records: List[ParticipantRecord] = []
        starts: List[Optional[dt.datetime]] = []
        for call in dataset:
            for p in call.participants:
                records.append(p)
                starts.append(call.start)
        return cls.from_records(records, call_starts=starts)

    @classmethod
    def from_records(
        cls,
        records: Sequence[ParticipantRecord],
        call_starts: Optional[Sequence[Optional[dt.datetime]]] = None,
    ) -> "ParticipantColumns":
        n = len(records)
        if call_starts is None:
            call_starts = [None] * n
        elif len(call_starts) != n:
            raise SchemaError(
                f"call_starts has length {len(call_starts)}, expected {n}"
            )
        network: Dict[str, Dict[str, np.ndarray]] = {}
        for m in NETWORK_METRICS:
            network[m] = {
                s: np.fromiter(
                    (p.network[m][s] for p in records), dtype=float, count=n
                )
                for s in AGGREGATES
            }
        return cls(
            call_id=[p.call_id for p in records],
            user_id=[p.user_id for p in records],
            platform=[p.platform for p in records],
            country=[p.country for p in records],
            call_start=list(call_starts),
            session_duration_s=np.fromiter(
                (p.session_duration_s for p in records), dtype=float, count=n
            ),
            presence_pct=np.fromiter(
                (p.presence_pct for p in records), dtype=float, count=n
            ),
            cam_on_pct=np.fromiter(
                (p.cam_on_pct for p in records), dtype=float, count=n
            ),
            mic_on_pct=np.fromiter(
                (p.mic_on_pct for p in records), dtype=float, count=n
            ),
            conditioning=np.fromiter(
                (p.conditioning for p in records), dtype=float, count=n
            ),
            dropped_early=np.fromiter(
                (p.dropped_early for p in records), dtype=bool, count=n
            ),
            rating=np.fromiter(
                (
                    np.nan if p.rating is None else float(p.rating)
                    for p in records
                ),
                dtype=float,
                count=n,
            ),
            network=network,
        )

    @classmethod
    def concat(cls, chunks: Sequence["ParticipantColumns"]) -> "ParticipantColumns":
        """Stitch shard-built chunks back into one block, in chunk order.

        The vectorized generator builds one chunk per ParallelMap shard;
        concatenating in submission order reproduces dataset row order.
        """
        if not chunks:
            return cls.from_records([])
        if len(chunks) == 1:
            return chunks[0]
        network: Dict[str, Dict[str, np.ndarray]] = {
            m: {
                s: np.concatenate([c.network[m][s] for c in chunks])
                for s in AGGREGATES
            }
            for m in NETWORK_METRICS
        }
        return cls(
            call_id=[x for c in chunks for x in c.call_id],
            user_id=[x for c in chunks for x in c.user_id],
            platform=[x for c in chunks for x in c.platform],
            country=[x for c in chunks for x in c.country],
            call_start=[x for c in chunks for x in c.call_start],
            session_duration_s=np.concatenate(
                [c.session_duration_s for c in chunks]
            ),
            presence_pct=np.concatenate([c.presence_pct for c in chunks]),
            cam_on_pct=np.concatenate([c.cam_on_pct for c in chunks]),
            mic_on_pct=np.concatenate([c.mic_on_pct for c in chunks]),
            conditioning=np.concatenate([c.conditioning for c in chunks]),
            dropped_early=np.concatenate([c.dropped_early for c in chunks]),
            rating=np.concatenate([c.rating for c in chunks]),
            network=network,
        )

    # -- persistence -----------------------------------------------------

    def to_jsonl(self, path) -> None:
        from repro.io.jsonl import atomic_writer

        n = len(self)
        with atomic_writer(path) as f:
            f.write(json.dumps(
                {"_columnar": "participants", "schema": COLUMNS_SCHEMA, "n": n}
            ) + "\n")

            def col(name: str, kind: str, data) -> None:
                f.write(json.dumps(
                    {"name": name, "kind": kind, "data": data}
                ) + "\n")

            col("call_id", "str", self.call_id)
            col("user_id", "str", self.user_id)
            col("platform", "str", self.platform)
            col("country", "str", self.country)
            col("call_start", "dt", [
                None if t is None else t.isoformat() for t in self.call_start
            ])
            for name in (
                "session_duration_s", "presence_pct", "cam_on_pct",
                "mic_on_pct", "conditioning", "rating",
            ):
                col(name, "f64", _encode_f64(getattr(self, name)))
            col("dropped_early", "bool", _encode_bool(self.dropped_early))
            for m in NETWORK_METRICS:
                for s in AGGREGATES:
                    col(f"network:{m}:{s}", "f64",
                        _encode_f64(self.network[m][s]))

    @classmethod
    def from_jsonl(cls, path) -> "ParticipantColumns":
        header, columns = _read_columns(path, "participants")

        def str_col(name: str) -> List[str]:
            return list(_check_len(name, columns[name], n))

        try:
            n = int(header["n"])
            network: Dict[str, Dict[str, np.ndarray]] = {}
            for m in NETWORK_METRICS:
                network[m] = {
                    s: _decode_f64(
                        columns[f"network:{m}:{s}"], n, f"network:{m}:{s}"
                    )
                    for s in AGGREGATES
                }
            return cls(
                call_id=str_col("call_id"),
                user_id=str_col("user_id"),
                platform=str_col("platform"),
                country=str_col("country"),
                call_start=[
                    None if t is None else dt.datetime.fromisoformat(t)
                    for t in _check_len("call_start", columns["call_start"], n)
                ],
                session_duration_s=_decode_f64(
                    columns["session_duration_s"], n, "session_duration_s"
                ),
                presence_pct=_decode_f64(columns["presence_pct"], n, "presence_pct"),
                cam_on_pct=_decode_f64(columns["cam_on_pct"], n, "cam_on_pct"),
                mic_on_pct=_decode_f64(columns["mic_on_pct"], n, "mic_on_pct"),
                conditioning=_decode_f64(columns["conditioning"], n, "conditioning"),
                dropped_early=_decode_bool(
                    columns["dropped_early"], n, "dropped_early"
                ),
                rating=_decode_f64(columns["rating"], n, "rating"),
                network=network,
            )
        except KeyError as exc:
            raise SchemaError(f"{path}: missing column {exc}") from exc


# -- sentiment block -------------------------------------------------------


@dataclass
class SentimentBlock:
    """Per-post sentiment as columns, shared by every §4 analysis.

    ``scores`` keeps the exact :class:`SentimentScores` objects (for the
    per-post dict the timeline exposes); the float64 columns hold the
    identical values, so masks computed here match per-record property
    checks bit for bit.
    """

    scores: List[SentimentScores]
    positive: np.ndarray
    negative: np.ndarray
    neutral: np.ndarray
    strong_positive: np.ndarray = field(init=False)
    strong_negative: np.ndarray = field(init=False)
    negative_dominant: np.ndarray = field(init=False)
    polarity: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        # Same comparisons as SentimentScores.is_strong_* and the outage
        # monitor's `negative <= max(positive, neutral)` reject filter.
        self.strong_positive = self.positive >= STRONG_THRESHOLD
        self.strong_negative = self.negative >= STRONG_THRESHOLD
        self.negative_dominant = (
            (self.negative > self.positive) & (self.negative > self.neutral)
        )
        self.polarity = self.positive - self.negative

    def __len__(self) -> int:
        return len(self.scores)


# -- corpus columns --------------------------------------------------------


@dataclass
class CorpusColumns:
    """Struct-of-arrays view of a social corpus, plus the shared per-day
    index and (lazily) the shared sentiment block.

    One row per post, in corpus order (sorted by ``created``).  The four
    §4 analyses (sentiment timeline, outage monitor, speed tracker,
    fulcrum) all read this one block instead of re-scanning the corpus.
    """

    span_start: dt.date
    span_end: dt.date
    post_id: List[str]
    author: List[str]
    topic: List[str]
    full_text: List[str]
    created: List[dt.datetime]
    day_index: np.ndarray
    month: List[Tuple[int, int]]
    popularity: np.ndarray
    speed_indices: np.ndarray
    posts: Optional[List[Any]] = None
    _sentiment: Optional[SentimentBlock] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.post_id)

    @property
    def n_days(self) -> int:
        return (self.span_end - self.span_start).days + 1

    def speed_share_posts(self) -> List[Any]:
        """The posts carrying speed tests, in corpus order — the columnar
        equivalent of :meth:`RedditCorpus.speed_shares`."""
        if self.posts is None:
            raise SchemaError(
                "corpus columns loaded without posts; attach_posts() first"
            )
        return [self.posts[i] for i in self.speed_indices.tolist()]

    def attach_posts(self, posts: Sequence[Any]) -> None:
        """Re-attach post objects after a cache load (columns persist,
        posts come from the corpus the caller already holds)."""
        if len(posts) != len(self):
            raise SchemaError(
                f"cannot attach {len(posts)} posts to {len(self)} columns"
            )
        self.posts = list(posts)

    def sentiment(self, analyzer: Optional[SentimentAnalyzer] = None) -> SentimentBlock:
        """Score every post once and share the block.

        With the default analyzer (``None``) the block is memoized on
        this object, so the timeline, the outage monitor, the fulcrum
        and the USaaS social export all reuse one scoring pass.  An
        explicit analyzer scores fresh (it may be configured differently).
        """
        if analyzer is None:
            if self._sentiment is None:
                self._sentiment = SentimentBlock(
                    *SentimentAnalyzer().score_columns(self.full_text)
                )
            return self._sentiment
        return SentimentBlock(*analyzer.score_columns(self.full_text))

    # -- construction ----------------------------------------------------

    @classmethod
    def from_corpus(cls, corpus) -> "CorpusColumns":
        posts = list(corpus)
        start = corpus.config.span_start
        end = corpus.config.span_end
        n = len(posts)
        created = [p.created for p in posts]
        day_index = np.fromiter(
            ((c.date() - start).days for c in created), dtype=np.int64, count=n
        )
        return cls(
            span_start=start,
            span_end=end,
            post_id=[p.post_id for p in posts],
            author=[p.author for p in posts],
            topic=[p.topic for p in posts],
            full_text=[p.full_text for p in posts],
            created=created,
            day_index=day_index,
            month=[month_of(c.date()) for c in created],
            popularity=np.fromiter(
                (p.popularity for p in posts), dtype=float, count=n
            ),
            speed_indices=np.fromiter(
                (i for i, p in enumerate(posts) if p.speed_test is not None),
                dtype=np.int64,
            ),
            posts=posts,
        )

    @classmethod
    def concat(cls, chunks: Sequence["CorpusColumns"]) -> "CorpusColumns":
        """Stitch shard-built chunks into one block, in chunk order.

        All chunks must share the span (they are slices of one corpus
        config); ``speed_indices`` are re-offset into the merged row
        space.  ``posts`` merge only when every chunk carries them.
        Chunk order is preserved — callers that need corpus order
        (sorted by ``created``) sort afterwards.
        """
        if not chunks:
            raise SchemaError("CorpusColumns.concat needs at least one chunk")
        if len(chunks) == 1:
            return chunks[0]
        spans = {(c.span_start, c.span_end) for c in chunks}
        if len(spans) > 1:
            raise SchemaError(f"chunks span different ranges: {sorted(spans)}")
        offsets = np.cumsum([0] + [len(c) for c in chunks[:-1]])
        posts: Optional[List[Any]] = None
        if all(c.posts is not None for c in chunks):
            posts = [p for c in chunks for p in c.posts]
        return cls(
            span_start=chunks[0].span_start,
            span_end=chunks[0].span_end,
            post_id=[x for c in chunks for x in c.post_id],
            author=[x for c in chunks for x in c.author],
            topic=[x for c in chunks for x in c.topic],
            full_text=[x for c in chunks for x in c.full_text],
            created=[x for c in chunks for x in c.created],
            day_index=np.concatenate([c.day_index for c in chunks]),
            month=[x for c in chunks for x in c.month],
            popularity=np.concatenate([c.popularity for c in chunks]),
            speed_indices=np.concatenate(
                [c.speed_indices + off for c, off in zip(chunks, offsets)]
            ),
            posts=posts,
        )

    # -- persistence -----------------------------------------------------

    def to_jsonl(self, path) -> None:
        from repro.io.jsonl import atomic_writer

        with atomic_writer(path) as f:
            f.write(json.dumps({
                "_columnar": "corpus",
                "schema": COLUMNS_SCHEMA,
                "n": len(self),
                "span_start": self.span_start.isoformat(),
                "span_end": self.span_end.isoformat(),
            }) + "\n")

            def col(name: str, kind: str, data) -> None:
                f.write(json.dumps(
                    {"name": name, "kind": kind, "data": data}
                ) + "\n")

            col("post_id", "str", self.post_id)
            col("author", "str", self.author)
            col("topic", "str", self.topic)
            col("full_text", "str", self.full_text)
            col("created", "dt", [t.isoformat() for t in self.created])
            col("popularity", "f64", _encode_f64(self.popularity))
            col("speed_indices", "i64", _encode_i64(self.speed_indices))

    @classmethod
    def from_jsonl(cls, path) -> "CorpusColumns":
        header, columns = _read_columns(path, "corpus")
        try:
            n = int(header["n"])
            start = dt.date.fromisoformat(header["span_start"])
            end = dt.date.fromisoformat(header["span_end"])
            created = [
                dt.datetime.fromisoformat(t)
                for t in _check_len("created", columns["created"], n)
            ]
            return cls(
                span_start=start,
                span_end=end,
                post_id=list(_check_len("post_id", columns["post_id"], n)),
                author=list(_check_len("author", columns["author"], n)),
                topic=list(_check_len("topic", columns["topic"], n)),
                full_text=list(_check_len("full_text", columns["full_text"], n)),
                created=created,
                day_index=np.fromiter(
                    ((c.date() - start).days for c in created),
                    dtype=np.int64, count=n,
                ),
                month=[month_of(c.date()) for c in created],
                popularity=_decode_f64(columns["popularity"], n, "popularity"),
                speed_indices=np.frombuffer(
                    base64.b64decode(columns["speed_indices"]), dtype="<i8"
                ).copy(),
                posts=None,
            )
        except KeyError as exc:
            raise SchemaError(f"{path}: missing column {exc}") from exc


def _read_columns(path, expected: str) -> Tuple[dict, Dict[str, Any]]:
    """Parse a columnar JSONL file into (header, {name: data})."""
    header: Optional[dict] = None
    columns: Dict[str, Any] = {}
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise SchemaError(f"{path}:{line_no}: bad JSON: {exc}") from exc
            if header is None:
                if record.get("_columnar") != expected:
                    raise SchemaError(
                        f"{path}: not a {expected!r} columnar file"
                    )
                if record.get("schema") != COLUMNS_SCHEMA:
                    raise SchemaError(
                        f"{path}: columnar schema {record.get('schema')!r}, "
                        f"expected {COLUMNS_SCHEMA}"
                    )
                header = record
                continue
            try:
                columns[record["name"]] = record["data"]
            except KeyError as exc:
                raise SchemaError(
                    f"{path}:{line_no}: column record missing {exc}"
                ) from exc
    if header is None:
        raise SchemaError(f"{path}: missing columnar header line")
    return header, columns


# -- factories (memoized + cacheable) --------------------------------------


ParticipantSource = Union[CallDataset, "ParticipantColumns",
                          Iterable[ParticipantRecord]]


def participant_columns(
    source: ParticipantSource,
    cache: Optional["ArtifactCache"] = None,
    config: Any = None,
) -> ParticipantColumns:
    """Columns for a dataset — built once, memoized on the dataset.

    ``source`` may be a :class:`CallDataset` (memoized on the object,
    invalidated by :meth:`CallDataset.append`), already-built
    :class:`ParticipantColumns` (returned as-is), or any iterable of
    participant records (built ad hoc, no memo).  With ``cache`` and the
    generating ``config``, the block is persisted through the artifact
    cache under kind ``participant-columns`` — ``config`` must be the
    config that produced ``source`` (same fingerprint contract as the
    dataset entry itself).
    """
    if isinstance(source, ParticipantColumns):
        return source
    if isinstance(source, CallDataset):
        token = source.n_participants
        memo = source.__dict__.get(_MEMO_ATTR)
        if memo is not None and memo[0] == token:
            return memo[1]
        if cache is not None and config is not None:
            cols = cache.load_or_build(
                "participant-columns",
                config,
                build=lambda: ParticipantColumns.from_dataset(source),
                load=ParticipantColumns.from_jsonl,
                dump=lambda c, path: c.to_jsonl(path),
            )
        else:
            cols = ParticipantColumns.from_dataset(source)
        source.__dict__[_MEMO_ATTR] = (token, cols)
        return cols
    return ParticipantColumns.from_records(list(source))


def corpus_columns(corpus, cache: Optional["ArtifactCache"] = None) -> CorpusColumns:
    """Columns for a corpus — built once, memoized on the corpus object.

    ``corpus`` is duck-typed (iteration in sorted-post order plus a
    ``config`` with the span) so this layer does not import
    :mod:`repro.social`.  With ``cache``, the block persists under kind
    ``corpus-columns`` keyed by the corpus config; on a cache hit the
    post objects are re-attached from the corpus in hand.
    """
    if isinstance(corpus, CorpusColumns):
        return corpus
    token = len(corpus)
    memo = getattr(corpus, _MEMO_ATTR, None)
    if memo is not None and memo[0] == token:
        return memo[1]
    if cache is not None:
        cols = cache.load_or_build(
            "corpus-columns",
            corpus.config,
            build=lambda: CorpusColumns.from_corpus(corpus),
            load=CorpusColumns.from_jsonl,
            dump=lambda c, path: c.to_jsonl(path),
        )
        if cols.posts is None:
            cols.attach_posts(corpus.posts())
    else:
        cols = CorpusColumns.from_corpus(corpus)
    corpus.__dict__[_MEMO_ATTR] = (token, cols)
    return cols

"""Performance subsystem: crash-safe sharded execution and caching.

The two data factories (call telemetry and the r/Starlink corpus) run
every unit of work — a call, a day — on its own RNG substream, which
makes them order-free and therefore shardable.  This package provides:

* :class:`ParallelMap` / :func:`plan_shards` — the sharded executor
  with an ordered merge, per-shard retry (:class:`ExecutionPolicy`), a
  hung-worker :class:`Watchdog` and graceful in-process fallback;
* :class:`CheckpointStore` — durable per-shard progress, so an
  interrupted run resumed with ``--resume`` re-executes only the
  missing shards;
* :class:`ArtifactCache` — content-addressed persistence of generated
  datasets keyed on a config fingerprint + schema version.

See ``docs/performance.md`` for the architecture (and its §5 for the
failure and resume model).
"""

from repro.perf.cache import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactCache,
    CacheStats,
    config_fingerprint,
    default_cache_root,
)
from repro.perf.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    shard_fingerprint,
)
from repro.perf.parallel import (
    DEFAULT_CHUNKS_PER_WORKER,
    ExecutionPolicy,
    ExecutionReport,
    ParallelMap,
    Shard,
    plan_shards,
    resolve_workers,
    split_evenly,
)
from repro.perf.watchdog import StragglerRecord, StragglerReport, Watchdog

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactCache",
    "CacheStats",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointStore",
    "config_fingerprint",
    "default_cache_root",
    "DEFAULT_CHUNKS_PER_WORKER",
    "ExecutionPolicy",
    "ExecutionReport",
    "ParallelMap",
    "Shard",
    "StragglerRecord",
    "StragglerReport",
    "Watchdog",
    "plan_shards",
    "resolve_workers",
    "shard_fingerprint",
    "split_evenly",
]

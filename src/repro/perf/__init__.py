"""Performance subsystem: crash-safe sharded execution and caching.

The two data factories (call telemetry and the r/Starlink corpus) run
every unit of work — a call, a day — on its own RNG substream, which
makes them order-free and therefore shardable.  This package provides:

* :class:`ParallelMap` / :func:`plan_shards` — the sharded executor
  with an ordered merge, per-shard retry (:class:`ExecutionPolicy`), a
  hung-worker :class:`Watchdog` and graceful in-process fallback;
* :class:`CheckpointStore` — durable per-shard progress, so an
  interrupted run resumed with ``--resume`` re-executes only the
  missing shards;
* :class:`ArtifactCache` — content-addressed persistence of generated
  datasets keyed on a config fingerprint + schema version;
* :mod:`repro.perf.columnar` — the struct-of-arrays query layer the
  analysis read paths run on (:func:`participant_columns`,
  :func:`corpus_columns`).

See ``docs/performance.md`` for the architecture (its §4 for the
failure and resume model, §6 for the columnar layer).
"""

from repro.perf.cache import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactCache,
    CacheStats,
    config_fingerprint,
    default_cache_root,
)
from repro.perf.columnar import (
    COLUMNS_SCHEMA,
    CorpusColumns,
    ParticipantColumns,
    SentimentBlock,
    corpus_columns,
    participant_columns,
)
from repro.perf.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    shard_fingerprint,
)
from repro.perf.parallel import (
    DEFAULT_CHUNKS_PER_WORKER,
    ExecutionPolicy,
    ExecutionReport,
    ParallelMap,
    Shard,
    plan_shards,
    resolve_workers,
    split_evenly,
)
from repro.perf.watchdog import StragglerRecord, StragglerReport, Watchdog

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactCache",
    "CacheStats",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointStore",
    "COLUMNS_SCHEMA",
    "CorpusColumns",
    "config_fingerprint",
    "corpus_columns",
    "default_cache_root",
    "DEFAULT_CHUNKS_PER_WORKER",
    "ExecutionPolicy",
    "ExecutionReport",
    "ParallelMap",
    "ParticipantColumns",
    "participant_columns",
    "SentimentBlock",
    "Shard",
    "StragglerRecord",
    "StragglerReport",
    "Watchdog",
    "plan_shards",
    "resolve_workers",
    "shard_fingerprint",
    "split_evenly",
]

"""Performance subsystem: sharded parallel execution and artifact caching.

The two data factories (call telemetry and the r/Starlink corpus) run
every unit of work — a call, a day — on its own RNG substream, which
makes them order-free and therefore shardable.  This package provides:

* :class:`ParallelMap` / :func:`plan_shards` — the sharded executor
  with an ordered merge and graceful in-process fallback;
* :class:`ArtifactCache` — content-addressed persistence of generated
  datasets keyed on a config fingerprint + schema version.

See ``docs/performance.md`` for the architecture.
"""

from repro.perf.cache import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactCache,
    CacheStats,
    config_fingerprint,
    default_cache_root,
)
from repro.perf.parallel import (
    DEFAULT_CHUNKS_PER_WORKER,
    ParallelMap,
    Shard,
    plan_shards,
    resolve_workers,
    split_evenly,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactCache",
    "CacheStats",
    "config_fingerprint",
    "default_cache_root",
    "DEFAULT_CHUNKS_PER_WORKER",
    "ParallelMap",
    "Shard",
    "plan_shards",
    "resolve_workers",
    "split_evenly",
]

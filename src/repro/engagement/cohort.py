"""Confounder controls: cohort filtering and condition windows.

§3.1: *"To tackle confounders, we study only enterprise calls during
business hours (9 AM - 8 PM EST) on weekdays with 3+ participants, all in
the US."*  §3.2: *"While evaluating one network condition metric, we try
to analyze the calls where other metrics are roughly constant (latency
between 0 - 40 ms, loss rate between 0 - 0.2%, jitter between 0 - 5 ms,
and bandwidth between 3 - 4 Mbps)."*

Both controls are implemented here as reusable, explicit objects so the
benchmark ablations (DESIGN.md §5) can switch them off and show what the
curves look like without them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import AnalysisError
from repro.telemetry.schema import NETWORK_METRICS, ParticipantRecord
from repro.telemetry.store import CallDataset


@dataclass(frozen=True)
class CohortFilter:
    """The paper's call-level cohort definition."""

    enterprise_only: bool = True
    business_hours_only: bool = True
    weekdays_only: bool = True
    min_participants: int = 3
    countries: Optional[frozenset] = frozenset({"US"})
    start_hour: int = 9
    end_hour: int = 20

    def __post_init__(self) -> None:
        if self.min_participants < 1:
            raise AnalysisError("min_participants must be >= 1")
        if not 0 <= self.start_hour < self.end_hour <= 24:
            raise AnalysisError("invalid business-hours window")

    def apply(self, dataset: CallDataset) -> CallDataset:
        def keep(call) -> bool:
            if self.enterprise_only and not call.is_enterprise:
                return False
            if self.weekdays_only and call.start.weekday() >= 5:
                return False
            if self.business_hours_only and not (
                self.start_hour <= call.start.hour < self.end_hour
            ):
                return False
            if call.size < self.min_participants:
                return False
            if self.countries is not None and not all(
                c in self.countries for c in call.countries
            ):
                return False
            return True

        return dataset.filter_calls(keep)

    @classmethod
    def permissive(cls) -> "CohortFilter":
        """No filtering at all — the ablation baseline."""
        return cls(
            enterprise_only=False,
            business_hours_only=False,
            weekdays_only=False,
            min_participants=1,
            countries=None,
        )


@dataclass(frozen=True)
class ConditionWindow:
    """An inclusive [low, high] window on one per-session network metric."""

    metric: str
    low: float
    high: float
    stat: str = "mean"

    def __post_init__(self) -> None:
        if self.metric not in NETWORK_METRICS:
            raise AnalysisError(f"unknown network metric {self.metric!r}")
        if self.high < self.low:
            raise AnalysisError(f"window high {self.high} < low {self.low}")

    def contains(self, participant: ParticipantRecord) -> bool:
        value = participant.metric(self.metric, self.stat)
        return self.low <= value <= self.high


# The paper's §3.2 control windows, keyed by metric.
PAPER_CONTROL_WINDOWS: Dict[str, ConditionWindow] = {
    "latency_ms": ConditionWindow("latency_ms", 0.0, 40.0),
    "loss_pct": ConditionWindow("loss_pct", 0.0, 0.2),
    "jitter_ms": ConditionWindow("jitter_ms", 0.0, 5.0),
    "bandwidth_mbps": ConditionWindow("bandwidth_mbps", 3.0, 4.0),
}


def control_windows_except(target_metric: str) -> List[ConditionWindow]:
    """Control windows for every network metric except the one under study."""
    if target_metric not in NETWORK_METRICS:
        raise AnalysisError(f"unknown network metric {target_metric!r}")
    return [w for m, w in PAPER_CONTROL_WINDOWS.items() if m != target_metric]


def apply_windows(
    participants: Iterable[ParticipantRecord],
    windows: Iterable[ConditionWindow],
) -> List[ParticipantRecord]:
    """Keep sessions inside every window."""
    window_list = list(windows)
    return [
        p for p in participants if all(w.contains(p) for w in window_list)
    ]

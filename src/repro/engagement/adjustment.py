"""§6 "Are networks to blame always?" — confounder adjustment.

The paper's future-work list opens with confounding: platform, meeting
size and long-term conditioning all move user actions independently of
the network.  A naive engagement-vs-latency curve therefore mixes two
effects: the network's causal impact, and the changing *composition* of
who sits in each latency bin (mobile users have worse networks *and*
lower baseline engagement).

This module provides the two standard observational fixes:

* **stratified curves** — one engagement curve per confounder stratum,
  so within-stratum comparisons are composition-free;
* **direct standardisation** — a single adjusted curve re-weighted to a
  fixed reference mix of strata, comparable across bins by construction.

``confounder_gap`` quantifies how much adjustment mattered: the mean
absolute difference between raw and adjusted curves, in engagement
points.  An "effective USaaS should take into account all such
confounders" — this is the taking-into-account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.stats import BinnedCurve, bin_statistic
from repro.errors import AnalysisError
from repro.telemetry.schema import (
    ENGAGEMENT_METRICS,
    NETWORK_METRICS,
    ParticipantRecord,
)

StratumFn = Callable[[ParticipantRecord], str]


def stratify_by_platform(participant: ParticipantRecord) -> str:
    return participant.platform


def stratify_by_device_class(participant: ParticipantRecord) -> str:
    return "mobile" if "mobile" in participant.platform else "pc"


def stratify_by_conditioning(participant: ParticipantRecord) -> str:
    """Low/mid/high long-term network expectations."""
    if participant.conditioning < 1 / 3:
        return "hardened"
    if participant.conditioning < 2 / 3:
        return "average"
    return "sensitive"


@dataclass(frozen=True)
class AdjustedCurve:
    """Raw vs confounder-adjusted engagement curve.

    Attributes:
        raw: the unadjusted curve over all sessions.
        adjusted: the directly-standardised curve (fixed stratum mix).
        strata: per-stratum curves.
        reference_mix: the stratum weights used for standardisation
            (overall population shares).
    """

    raw: BinnedCurve
    adjusted: BinnedCurve
    strata: Dict[str, BinnedCurve]
    reference_mix: Dict[str, float]

    def confounder_gap(self) -> float:
        """Mean |raw − adjusted| over bins where both are finite."""
        mask = ~(np.isnan(self.raw.stat) | np.isnan(self.adjusted.stat))
        if not mask.any():
            raise AnalysisError("no commonly populated bins")
        return float(np.abs(self.raw.stat[mask] - self.adjusted.stat[mask]).mean())


def adjusted_curve(
    participants: Iterable[ParticipantRecord],
    network_metric: str,
    engagement_metric: str,
    edges: Sequence[float],
    stratify: StratumFn = stratify_by_platform,
    network_stat: str = "mean",
    min_stratum_bin_count: int = 5,
) -> AdjustedCurve:
    """Compute raw, per-stratum, and standardised engagement curves.

    Direct standardisation: the adjusted value of bin *b* is
    ``sum_s w_s * mean_{s,b}`` where ``w_s`` is stratum *s*'s share of the
    whole population and ``mean_{s,b}`` its engagement mean in bin *b*.
    Bins where any stratum is too thin are left NaN rather than silently
    extrapolated.
    """
    if network_metric not in NETWORK_METRICS:
        raise AnalysisError(f"unknown network metric {network_metric!r}")
    if engagement_metric not in ENGAGEMENT_METRICS:
        raise AnalysisError(f"unknown engagement metric {engagement_metric!r}")
    pool: List[ParticipantRecord] = list(participants)
    if not pool:
        raise AnalysisError("no participants to analyse")

    keys = [p.metric(network_metric, network_stat) for p in pool]
    values = [getattr(p, engagement_metric) for p in pool]
    raw = bin_statistic(keys, values, edges)

    by_stratum: Dict[str, List[ParticipantRecord]] = {}
    for p in pool:
        by_stratum.setdefault(stratify(p), []).append(p)
    if len(by_stratum) < 2:
        raise AnalysisError(
            "stratification produced fewer than two strata — nothing to adjust"
        )
    reference_mix = {
        name: len(members) / len(pool) for name, members in by_stratum.items()
    }

    strata: Dict[str, BinnedCurve] = {}
    for name, members in by_stratum.items():
        strata[name] = bin_statistic(
            [p.metric(network_metric, network_stat) for p in members],
            [getattr(p, engagement_metric) for p in members],
            edges,
        )

    n_bins = raw.n_bins
    adjusted_stat = np.full(n_bins, np.nan)
    adjusted_counts = np.zeros(n_bins, dtype=int)
    for b in range(n_bins):
        total = 0.0
        ok = True
        for name, curve in strata.items():
            if curve.counts[b] < min_stratum_bin_count or np.isnan(curve.stat[b]):
                ok = False
                break
            total += reference_mix[name] * curve.stat[b]
        if ok:
            adjusted_stat[b] = total
            adjusted_counts[b] = sum(c.counts[b] for c in strata.values())
    adjusted = BinnedCurve(
        edges=raw.edges, centers=raw.centers,
        stat=adjusted_stat, counts=adjusted_counts,
    )
    return AdjustedCurve(
        raw=raw, adjusted=adjusted, strata=strata, reference_mix=reference_mix
    )


def composition_bias_demo(
    participants: Iterable[ParticipantRecord],
    network_metric: str = "latency_ms",
    engagement_metric: str = "mic_on_pct",
    edges: Sequence[float] = (0, 100, 200, 300),
    stratify: StratumFn = stratify_by_device_class,
) -> Dict[str, float]:
    """Quantify how much of the raw slope is composition, not causation.

    Returns the raw and adjusted first-to-last-bin drops; their difference
    is the composition bias the naive analysis would misattribute to the
    network.
    """
    result = adjusted_curve(
        participants, network_metric, engagement_metric, edges,
        stratify=stratify,
    )

    def drop(curve: BinnedCurve) -> float:
        finite = np.where(~np.isnan(curve.stat))[0]
        if len(finite) < 2:
            raise AnalysisError("curve needs two finite bins")
        first, last = curve.stat[finite[0]], curve.stat[finite[-1]]
        if first <= 0:
            raise AnalysisError("first bin non-positive")
        return float(100.0 * (first - last) / first)

    raw_drop = drop(result.raw)
    adjusted_drop = drop(result.adjusted)
    return {
        "raw_drop_pct": raw_drop,
        "adjusted_drop_pct": adjusted_drop,
        "composition_bias_pct": raw_drop - adjusted_drop,
    }

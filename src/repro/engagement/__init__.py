"""The §3 analysis pipeline: user actions as implicit network measurement.

Given a :class:`~repro.telemetry.store.CallDataset` (real or synthetic —
the pipeline only sees the record schema), this package reproduces every
analysis in the paper's §3:

* :mod:`repro.engagement.cohort` — the confounder controls (§3.1's call
  dataset definition and the hold-other-metrics-constant windows).
* :mod:`repro.engagement.curves` — engagement vs each network metric
  (Fig. 1).
* :mod:`repro.engagement.compound` — the latency×loss Presence grid
  (Fig. 2).
* :mod:`repro.engagement.platform` — per-platform sensitivity (Fig. 3).
* :mod:`repro.engagement.mos_link` — engagement↔MOS correlation (Fig. 4).
* :mod:`repro.engagement.predictor` — MOS prediction from engagement +
  network conditions (the §5 model "omitted for brevity").
"""

from repro.engagement.adjustment import (
    AdjustedCurve,
    adjusted_curve,
    composition_bias_demo,
)
from repro.engagement.binning import curve_matrix, engagement_curve
from repro.engagement.early_warning import (
    DetectionOutcome,
    DriftDetector,
    detection_latency_experiment,
    run_detector,
)
from repro.engagement.cohort import CohortFilter, ConditionWindow, control_windows_except
from repro.engagement.compound import CompoundGrid, compound_presence_grid
from repro.engagement.curves import DEFAULT_EDGES, Fig1Result, fig1_curves
from repro.engagement.metrics import engagement_frame
from repro.engagement.mos_link import MosCorrelation, mos_by_engagement
from repro.engagement.platform import platform_curves
from repro.engagement.predictor import MosPredictor, PredictionReport

__all__ = [
    "AdjustedCurve",
    "CohortFilter",
    "DetectionOutcome",
    "DriftDetector",
    "adjusted_curve",
    "composition_bias_demo",
    "detection_latency_experiment",
    "run_detector",
    "CompoundGrid",
    "ConditionWindow",
    "DEFAULT_EDGES",
    "Fig1Result",
    "MosCorrelation",
    "MosPredictor",
    "PredictionReport",
    "compound_presence_grid",
    "control_windows_except",
    "curve_matrix",
    "engagement_curve",
    "engagement_frame",
    "fig1_curves",
    "mos_by_engagement",
    "platform_curves",
]

"""Fig. 1 reproduction: engagement vs latency / loss / jitter / bandwidth.

Each panel bins cohort sessions along one network metric (holding the
other three inside the paper's control windows) and reports the mean of
each engagement metric per bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.stats import BinnedCurve
from repro.engagement.binning import curve_matrix
from repro.engagement.cohort import ConditionWindow, control_windows_except
from repro.engagement.metrics import normalize_to_best
from repro.errors import AnalysisError
from repro.perf.columnar import participant_columns
from repro.telemetry.schema import ENGAGEMENT_METRICS, ParticipantRecord

# Panel x-axis edges matching the ranges shown in Fig. 1.
DEFAULT_EDGES: Dict[str, np.ndarray] = {
    "latency_ms": np.linspace(0, 300, 11),
    "loss_pct": np.linspace(0, 2.0, 9),
    "jitter_ms": np.linspace(0, 12.0, 9),
    "bandwidth_mbps": np.linspace(0.25, 4.25, 9),
}


@dataclass(frozen=True)
class Fig1Result:
    """All four panels: ``curves[network_metric][engagement_metric]``."""

    curves: Dict[str, Dict[str, BinnedCurve]]

    def panel(self, network_metric: str) -> Dict[str, BinnedCurve]:
        if network_metric not in self.curves:
            raise AnalysisError(f"no panel for {network_metric!r}")
        return self.curves[network_metric]

    def relative_drop_pct(
        self, network_metric: str, engagement_metric: str
    ) -> float:
        """Percentage drop of the curve from its best bin to its last bin.

        This is the number behind statements like "Mic On reduces by more
        than 25%" — the loss of engagement at the worst end of the axis
        relative to the best value along the curve.
        """
        curve = self.panel(network_metric)[engagement_metric]
        normalized = normalize_to_best(curve.stat)
        finite = np.where(~np.isnan(normalized))[0]
        if len(finite) == 0:
            raise AnalysisError("curve has no finite bins")
        return float(100.0 - normalized[finite[-1]])

    def slope(
        self,
        network_metric: str,
        engagement_metric: str,
        x_low: float,
        x_high: float,
    ) -> float:
        """Least-squares slope of the curve over [x_low, x_high].

        Used to verify the "steeper until 150 ms, plateau after" claim for
        Mic On vs latency.
        """
        curve = self.panel(network_metric)[engagement_metric]
        mask = (
            (curve.centers >= x_low)
            & (curve.centers <= x_high)
            & ~np.isnan(curve.stat)
        )
        if mask.sum() < 2:
            raise AnalysisError(
                f"not enough bins in [{x_low}, {x_high}] to fit a slope"
            )
        return float(np.polyfit(curve.centers[mask], curve.stat[mask], 1)[0])


def fig1_curves(
    participants: Iterable[ParticipantRecord],
    edges: Optional[Dict[str, np.ndarray]] = None,
    use_control_windows: bool = True,
    network_stat: str = "mean",
    min_bin_count: int = 5,
    include_drop: bool = False,
) -> Fig1Result:
    """Compute all four Fig. 1 panels.

    Args:
        participants: cohort-filtered sessions.
        edges: per-metric bin edges; defaults to ``DEFAULT_EDGES``.
        use_control_windows: hold the other three metrics inside the
            paper's windows (False = the DESIGN.md ablation).
        include_drop: additionally compute the drop-off-rate curve, used
            for the §3.2 "at 3%+ loss the chance of dropping off increases"
            observation.
    """
    cols = participant_columns(participants)
    if len(cols) == 0:
        raise AnalysisError("no participants to analyse")
    edge_map = dict(DEFAULT_EDGES)
    if edges:
        edge_map.update(edges)

    engagement_names = list(ENGAGEMENT_METRICS)
    if include_drop:
        engagement_names.append("dropped_early")

    windows: Optional[Dict[str, List[ConditionWindow]]] = (
        {m: control_windows_except(m) for m in edge_map}
        if use_control_windows
        else None
    )
    return Fig1Result(curves=curve_matrix(
        cols,
        edge_map,
        engagement_metrics=engagement_names,
        control_windows=windows,
        network_stat=network_stat,
        min_bin_count=min_bin_count,
    ))

"""§5's MOS predictor: ratings from engagement + network conditions.

The paper mentions (*"omitted for brevity"*) using AI/ML to predict MOS
from user engagement and network conditions — the piece that lets USaaS
turn abundant implicit signals into the sparse explicit metric every
stakeholder already understands.  This module implements it as ridge
regression with standardised features (closed-form, numpy only), plus an
evaluation harness comparing a network-only feature set against
network+engagement, quantifying how much signal the user actions add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.stats import pearson
from repro.errors import AnalysisError, InsufficientRatingsError
from repro.rng import derive
from repro.telemetry.schema import (
    ENGAGEMENT_METRICS,
    NETWORK_METRICS,
    ParticipantRecord,
)

NETWORK_FEATURES: Tuple[str, ...] = NETWORK_METRICS
ENGAGEMENT_FEATURES: Tuple[str, ...] = ENGAGEMENT_METRICS
ALL_FEATURES: Tuple[str, ...] = NETWORK_FEATURES + ENGAGEMENT_FEATURES


@dataclass(frozen=True)
class PredictionReport:
    """Held-out evaluation of a fitted predictor."""

    mae: float
    rmse: float
    correlation: float
    n_train: int
    n_test: int
    features: Tuple[str, ...]


class MosPredictor:
    """Ridge regression from session features to the 1–5 rating.

    Features are standardised on the training data; the closed-form
    solution ``(X'X + lambda I)^-1 X'y`` keeps the implementation free of
    external ML dependencies.
    """

    def __init__(
        self,
        features: Sequence[str] = ALL_FEATURES,
        l2: float = 1.0,
        network_stat: str = "mean",
    ) -> None:
        unknown = [f for f in features if f not in ALL_FEATURES]
        if unknown:
            raise AnalysisError(f"unknown features: {unknown}")
        if not features:
            raise AnalysisError("at least one feature required")
        if l2 < 0:
            raise AnalysisError("l2 must be non-negative")
        self._features = tuple(features)
        self._l2 = l2
        self._network_stat = network_stat
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._sd: Optional[np.ndarray] = None
        self._intercept: float = 0.0

    @property
    def features(self) -> Tuple[str, ...]:
        return self._features

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def _design(self, sessions: List[ParticipantRecord]) -> np.ndarray:
        columns = []
        for name in self._features:
            if name in NETWORK_FEATURES:
                columns.append([p.metric(name, self._network_stat) for p in sessions])
            else:
                columns.append([getattr(p, name) for p in sessions])
        return np.array(columns, dtype=float).T

    def fit(self, sessions: Iterable[ParticipantRecord]) -> "MosPredictor":
        rated = [p for p in sessions if p.rating is not None]
        if len(rated) < len(self._features) + 2:
            raise InsufficientRatingsError(len(rated), len(self._features) + 2)
        x = self._design(rated)
        y = np.array([float(p.rating) for p in rated])
        self._mean = x.mean(axis=0)
        sd = x.std(axis=0)
        sd[sd == 0] = 1.0
        self._sd = sd
        xs = (x - self._mean) / self._sd
        n_features = xs.shape[1]
        gram = xs.T @ xs + self._l2 * np.eye(n_features)
        self._weights = np.linalg.solve(gram, xs.T @ (y - y.mean()))
        self._intercept = float(y.mean())
        return self

    def predict(self, sessions: Iterable[ParticipantRecord]) -> np.ndarray:
        if not self.is_fitted:
            raise AnalysisError("predictor is not fitted")
        pool = list(sessions)
        if not pool:
            return np.array([])
        xs = (self._design(pool) - self._mean) / self._sd
        raw = xs @ self._weights + self._intercept
        return np.clip(raw, 1.0, 5.0)

    def weights(self) -> Dict[str, float]:
        """Standardised coefficient per feature (importance proxy)."""
        if not self.is_fitted:
            raise AnalysisError("predictor is not fitted")
        return dict(zip(self._features, (float(w) for w in self._weights)))


def kfold_evaluate(
    sessions: Iterable[ParticipantRecord],
    features: Sequence[str] = ALL_FEATURES,
    k: int = 5,
    l2: float = 1.0,
    seed: int = 0,
) -> PredictionReport:
    """K-fold cross-validated evaluation (pooled out-of-fold predictions).

    More stable than a single split for the modest rated-session counts
    realistic sampling rates produce.  The fold assignment comes from
    the ``derive(seed, "predictor", "kfold")`` substream, so a given
    seed yields a byte-identical split (and report) across runs and
    across worker counts — the same discipline every other seeded path
    in the repo follows.
    """
    if k < 2:
        raise AnalysisError("k must be >= 2")
    rated = [p for p in sessions if p.rating is not None]
    if len(rated) < 4 * k:
        raise InsufficientRatingsError(len(rated), 4 * k)
    rng = derive(seed, "predictor", "kfold")
    order = rng.permutation(len(rated))
    folds = np.array_split(order, k)

    predictions = np.empty(len(rated))
    for fold in folds:
        test_idx = set(int(i) for i in fold)
        train = [rated[i] for i in range(len(rated)) if i not in test_idx]
        model = MosPredictor(features=features, l2=l2).fit(train)
        fold_sessions = [rated[int(i)] for i in fold]
        predictions[fold] = model.predict(fold_sessions)

    actual = np.array([float(p.rating) for p in rated])
    errors = predictions - actual
    return PredictionReport(
        mae=float(np.abs(errors).mean()),
        rmse=float(np.sqrt((errors**2).mean())),
        correlation=pearson(predictions, actual),
        n_train=len(rated) - len(folds[0]),
        n_test=len(rated),
        features=tuple(features),
    )


def train_test_evaluate(
    sessions: Iterable[ParticipantRecord],
    features: Sequence[str] = ALL_FEATURES,
    test_share: float = 0.3,
    l2: float = 1.0,
    seed: int = 0,
) -> PredictionReport:
    """Split the rated sessions, fit, and evaluate on the held-out part.

    The split comes from the ``derive(seed, "predictor", "split")``
    substream, so it is byte-identical across runs and worker counts.
    """
    if not 0 < test_share < 1:
        raise AnalysisError("test_share must be in (0, 1)")
    rated = [p for p in sessions if p.rating is not None]
    if len(rated) < 20:
        raise InsufficientRatingsError(len(rated), 20)
    rng = derive(seed, "predictor", "split")
    order = rng.permutation(len(rated))
    n_test = max(1, int(len(rated) * test_share))
    test = [rated[i] for i in order[:n_test]]
    train = [rated[i] for i in order[n_test:]]

    model = MosPredictor(features=features, l2=l2).fit(train)
    predictions = model.predict(test)
    actual = np.array([float(p.rating) for p in test])
    errors = predictions - actual
    correlation = pearson(predictions, actual) if len(test) >= 2 else 0.0
    return PredictionReport(
        mae=float(np.abs(errors).mean()),
        rmse=float(np.sqrt((errors**2).mean())),
        correlation=correlation,
        n_train=len(train),
        n_test=len(test),
        features=tuple(features),
    )

"""Fig. 3 reproduction: platform-dependent sensitivity to network loss.

§3.2: *"Different platforms (PC/mobile, operating system, etc.) have
different impacts on user sensitivity to network performance. ... Users
joining calls on their mobile devices tend to drop off sooner ... than
users on PCs."*
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.stats import BinnedCurve
from repro.engagement.binning import engagement_curve
from repro.engagement.cohort import ConditionWindow, control_windows_except
from repro.errors import AnalysisError
from repro.telemetry.schema import ParticipantRecord


def platform_curves(
    participants: Iterable[ParticipantRecord],
    network_metric: str = "loss_pct",
    engagement_metric: str = "presence_pct",
    edges: Sequence[float] = tuple(np.linspace(0, 3.0, 7)),
    use_control_windows: bool = True,
    min_bin_count: int = 5,
    min_platform_sessions: int = 30,
) -> Dict[str, BinnedCurve]:
    """One engagement-vs-condition curve per platform.

    Platforms with fewer than ``min_platform_sessions`` sessions are
    omitted (their curves would be noise).
    """
    pool = list(participants)
    if not pool:
        raise AnalysisError("no participants to analyse")
    windows: Optional[list] = (
        control_windows_except(network_metric) if use_control_windows else None
    )
    by_platform: Dict[str, list] = {}
    for p in pool:
        by_platform.setdefault(p.platform, []).append(p)

    curves: Dict[str, BinnedCurve] = {}
    for platform_key, sessions in sorted(by_platform.items()):
        if len(sessions) < min_platform_sessions:
            continue
        curves[platform_key] = engagement_curve(
            sessions,
            network_metric,
            engagement_metric,
            edges,
            control_windows=windows,
            min_bin_count=min_bin_count,
        )
    if not curves:
        raise AnalysisError("no platform had enough sessions")
    return curves


def sensitivity_ranking(curves: Dict[str, BinnedCurve]) -> Dict[str, float]:
    """Per-platform engagement drop (%) from first to last finite bin.

    Larger = more sensitive.  The paper's claim is that mobile platforms
    rank above PCs.
    """
    ranking: Dict[str, float] = {}
    for platform_key, curve in curves.items():
        finite = np.where(~np.isnan(curve.stat))[0]
        if len(finite) < 2:
            continue
        first, last = curve.stat[finite[0]], curve.stat[finite[-1]]
        if first <= 0:
            continue
        ranking[platform_key] = float(100.0 * (first - last) / first)
    if not ranking:
        raise AnalysisError("no platform curve had two finite bins")
    return ranking

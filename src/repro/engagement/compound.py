"""Fig. 2 reproduction: compounding impact of latency × loss on Presence.

§3.2: *"user Presence percentage could dip by as much as ~50% for certain
combinations of latency and loss relative to the best value across all
such combinations."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.telemetry.schema import ParticipantRecord


@dataclass(frozen=True)
class CompoundGrid:
    """A 2-D grid of a per-cell statistic over (latency, loss) bins.

    Attributes:
        latency_edges / loss_edges: bin edges of the two axes.
        stat: cell means, shape (n_latency_bins, n_loss_bins); NaN where
            a cell has fewer than the minimum sample count.
        counts: per-cell sample counts.
    """

    latency_edges: np.ndarray
    loss_edges: np.ndarray
    stat: np.ndarray
    counts: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.stat.shape

    def best(self) -> float:
        finite = self.stat[~np.isnan(self.stat)]
        if len(finite) == 0:
            raise AnalysisError("grid has no populated cells")
        return float(finite.max())

    def worst(self) -> float:
        finite = self.stat[~np.isnan(self.stat)]
        if len(finite) == 0:
            raise AnalysisError("grid has no populated cells")
        return float(finite.min())

    def max_dip_pct(self) -> float:
        """Worst-cell dip relative to the best cell — Fig. 2's headline."""
        best = self.best()
        if best <= 0:
            raise AnalysisError("best cell is non-positive; dip undefined")
        return float(100.0 * (best - self.worst()) / best)

    def relative(self) -> np.ndarray:
        """Grid values as % of the best cell."""
        return 100.0 * self.stat / self.best()


def compound_presence_grid(
    participants: Iterable[ParticipantRecord],
    latency_edges: Sequence[float] = (0, 50, 100, 150, 200, 250, 300),
    loss_edges: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0),
    value_metric: str = "presence_pct",
    network_stat: str = "mean",
    min_cell_count: int = 5,
) -> CompoundGrid:
    """Mean engagement per joint (latency, loss) cell."""
    lat_edges = np.asarray(latency_edges, dtype=float)
    loss_edge_arr = np.asarray(loss_edges, dtype=float)
    for name, arr in (("latency_edges", lat_edges), ("loss_edges", loss_edge_arr)):
        if len(arr) < 2 or not np.all(np.diff(arr) > 0):
            raise AnalysisError(f"{name} must be strictly increasing, length >= 2")

    pool = list(participants)
    if not pool:
        raise AnalysisError("no participants to analyse")
    latency = np.array([p.metric("latency_ms", network_stat) for p in pool])
    loss = np.array([p.metric("loss_pct", network_stat) for p in pool])
    values = np.array([getattr(p, value_metric) for p in pool], dtype=float)

    n_lat, n_loss = len(lat_edges) - 1, len(loss_edge_arr) - 1
    lat_idx = np.searchsorted(lat_edges, latency, side="right") - 1
    loss_idx = np.searchsorted(loss_edge_arr, loss, side="right") - 1
    lat_idx[latency == lat_edges[-1]] = n_lat - 1
    loss_idx[loss == loss_edge_arr[-1]] = n_loss - 1
    in_range = (lat_idx >= 0) & (lat_idx < n_lat) & (loss_idx >= 0) & (loss_idx < n_loss)

    stat = np.full((n_lat, n_loss), np.nan)
    counts = np.zeros((n_lat, n_loss), dtype=int)
    for i in range(n_lat):
        for j in range(n_loss):
            cell = values[in_range & (lat_idx == i) & (loss_idx == j)]
            counts[i, j] = len(cell)
            if len(cell) >= min_cell_count:
                stat[i, j] = float(cell.mean())
    return CompoundGrid(
        latency_edges=lat_edges,
        loss_edges=loss_edge_arr,
        stat=stat,
        counts=counts,
    )

"""Engagement as an early-warning signal for call-quality regressions.

§3.3: *"While MOS scores are sampled and delayed, these correlations show
that user engagement could be considered as early and more readily
available indication of call quality."*  This module operationalises that
claim: a sequential detector watches a per-day stream of session
aggregates and raises when the metric departs from its learned baseline.

The statistical asymmetry the paper points at is *sample size*: every
session contributes engagement, while only ~0.1–1 % contribute a rating —
so for the same false-alarm rate, an engagement-based detector confirms a
regression days earlier than a MOS-based one.
:func:`detection_latency_experiment` measures exactly that on simulated
pre/post-regression traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


@dataclass
class DriftDetector:
    """Sequential mean-shift detector over daily summaries.

    A Welford-style baseline (mean and variance of the *daily mean*) is
    frozen after ``warmup_days``; afterwards each day's mean is converted
    to a z-score using the standard error implied by that day's own
    sample count, and an alarm is raised after ``consecutive_days`` days
    beyond ``z_threshold``.  The per-day sample count is what gives the
    dense metric its head start.

    Attributes:
        warmup_days: days used to learn the baseline.
        z_threshold: per-day |z| needed to count as suspicious.
        consecutive_days: suspicious days in a row needed to alarm.
        direction: ``"drop"`` (engagement regressions), ``"rise"``, or
            ``"both"``.
    """

    warmup_days: int = 14
    z_threshold: float = 3.0
    consecutive_days: int = 2
    direction: str = "drop"
    _n_days: int = field(default=0, repr=False)
    _mean: float = field(default=0.0, repr=False)
    _m2: float = field(default=0.0, repr=False)
    _within_var_sum: float = field(default=0.0, repr=False)
    _streak: int = field(default=0, repr=False)
    _alarmed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.warmup_days < 3:
            raise AnalysisError("warmup_days must be >= 3")
        if self.z_threshold <= 0:
            raise AnalysisError("z_threshold must be positive")
        if self.consecutive_days < 1:
            raise AnalysisError("consecutive_days must be >= 1")
        if self.direction not in ("drop", "rise", "both"):
            raise AnalysisError(f"unknown direction {self.direction!r}")

    @property
    def is_warmed_up(self) -> bool:
        return self._n_days >= self.warmup_days

    @property
    def has_alarmed(self) -> bool:
        return self._alarmed

    def observe(self, values: Sequence[float]) -> Optional[float]:
        """Feed one day of per-session values; returns the day's z-score
        once warmed up (None during warmup or for empty days)."""
        arr = np.asarray(values, dtype=float)
        if len(arr) == 0:
            return None
        if not np.isfinite(arr).all():
            raise AnalysisError("daily values must be finite")
        day_mean = float(arr.mean())
        day_var = float(arr.var(ddof=1)) if len(arr) > 1 else 0.0

        if not self.is_warmed_up:
            self._n_days += 1
            delta = day_mean - self._mean
            self._mean += delta / self._n_days
            self._m2 += delta * (day_mean - self._mean)
            self._within_var_sum += day_var
            return None

        # Baseline within-day variance (average across warmup days).
        within_var = self._within_var_sum / self.warmup_days
        # Standard error of today's mean under the baseline distribution,
        # floored by day-to-day baseline wobble.
        se_today = math.sqrt(max(within_var / len(arr), 1e-12))
        between_sd = math.sqrt(max(self._m2 / max(1, self._n_days - 1), 0.0))
        scale = max(se_today, between_sd, 1e-9)
        z = (day_mean - self._mean) / scale

        suspicious = (
            (self.direction == "drop" and z <= -self.z_threshold)
            or (self.direction == "rise" and z >= self.z_threshold)
            or (self.direction == "both" and abs(z) >= self.z_threshold)
        )
        self._streak = self._streak + 1 if suspicious else 0
        if self._streak >= self.consecutive_days:
            self._alarmed = True
        return float(z)


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of running a detector over a regression scenario.

    ``days_to_detect`` is measured from the regression onset; None means
    the detector never fired within the horizon.
    """

    metric: str
    days_to_detect: Optional[int]
    false_alarm: bool


def run_detector(
    daily_values: Sequence[Sequence[float]],
    onset_day: int,
    metric: str,
    detector: Optional[DriftDetector] = None,
) -> DetectionOutcome:
    """Stream a scenario through a detector and report detection latency.

    Args:
        daily_values: per-day lists of per-session values.
        onset_day: index of the first degraded day (alarms strictly
            before it count as false alarms).
        metric: label for the outcome.
    """
    if not 0 <= onset_day <= len(daily_values):
        raise AnalysisError("onset_day outside the scenario horizon")
    detector = detector or DriftDetector()
    for day, values in enumerate(daily_values):
        detector.observe(values)
        if detector.has_alarmed:
            if day < onset_day:
                return DetectionOutcome(metric=metric, days_to_detect=None,
                                        false_alarm=True)
            return DetectionOutcome(
                metric=metric, days_to_detect=day - onset_day,
                false_alarm=False,
            )
    return DetectionOutcome(metric=metric, days_to_detect=None,
                            false_alarm=False)


def detection_latency_experiment(
    rng: np.random.Generator,
    n_days: int = 60,
    onset_day: int = 40,
    sessions_per_day: int = 400,
    mos_sample_rate: float = 0.01,
    engagement_drop: float = 6.0,
    mos_drop: float = 0.35,
    baseline_engagement: float = 48.0,
    engagement_sd: float = 18.0,
    baseline_mos: float = 4.0,
    mos_sd: float = 0.8,
) -> Dict[str, DetectionOutcome]:
    """Engagement-based vs MOS-based regression detection, head to head.

    Simulates a service where a quality regression ships on ``onset_day``:
    mean engagement drops by ``engagement_drop`` points (observed for
    every session) and mean rating drops by ``mos_drop`` stars (observed
    for ``mos_sample_rate`` of sessions).  Both detectors run with the
    same settings; the returned outcomes expose the latency gap the
    paper's "early indication" argument predicts.
    """
    if not 0 < mos_sample_rate <= 1:
        raise AnalysisError("mos_sample_rate must be in (0, 1]")
    engagement_days: List[List[float]] = []
    mos_days: List[List[float]] = []
    for day in range(n_days):
        degraded = day >= onset_day
        eng_mean = baseline_engagement - (engagement_drop if degraded else 0.0)
        engagement_days.append(list(
            np.clip(rng.normal(eng_mean, engagement_sd, size=sessions_per_day),
                    0, 100)
        ))
        n_rated = rng.binomial(sessions_per_day, mos_sample_rate)
        mos_mean = baseline_mos - (mos_drop if degraded else 0.0)
        mos_days.append(list(
            np.clip(rng.normal(mos_mean, mos_sd, size=n_rated), 1, 5)
        ))
    return {
        "engagement": run_detector(
            engagement_days, onset_day, "engagement",
            DriftDetector(warmup_days=14),
        ),
        "mos": run_detector(
            mos_days, onset_day, "mos",
            DriftDetector(warmup_days=14),
        ),
    }

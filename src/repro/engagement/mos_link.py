"""Fig. 4 reproduction: user engagement correlates with explicit MOS.

§3.3: *"The user engagement metrics correlate well with the MOS ... While
Presence shows the strongest correlation with MOS, Cam On and Mic On also
show similar trends."*

The analysis takes the (sparse) rated subset, bins sessions by normalized
engagement, and reports the mean rating (MOS) per bin, plus rank
correlations per engagement metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.core.stats import BinnedCurve, bin_statistic, spearman
from repro.errors import AnalysisError
from repro.telemetry.schema import ENGAGEMENT_METRICS, ParticipantRecord


@dataclass(frozen=True)
class MosCorrelation:
    """Per-engagement-metric MOS curves and correlations.

    Attributes:
        curves: normalized-engagement → mean-rating curve per metric.
        correlations: Spearman rank correlation per metric, computed on
            the raw (unbinned) rated sessions.
        n_rated: how many rated sessions went in.
    """

    curves: Dict[str, BinnedCurve]
    correlations: Dict[str, float]
    n_rated: int

    def strongest_metric(self) -> str:
        """The engagement metric with the largest rank correlation."""
        if not self.correlations:
            raise AnalysisError("no correlations computed")
        return max(self.correlations, key=lambda m: self.correlations[m])


def mos_by_engagement(
    participants: Iterable[ParticipantRecord],
    n_bins: int = 10,
    min_bin_count: int = 5,
    statistic: str = "mean",
) -> MosCorrelation:
    """Compute the Fig. 4 curves from the rated subset of sessions.

    Engagement is normalized per metric to [0, 100] (% of the maximum
    observed value) so the three metrics share an x-axis, as in the
    paper's figure.  ``statistic`` is any registered reducer name
    (``mean``, ``trimmed_mean``, ``winsorized_mean``,
    ``median_of_means``, ...) — the robust variants bound how far a
    rating-fraud campaign can bend each bin (see docs/integrity.md).
    """
    rated: List[ParticipantRecord] = [
        p for p in participants if p.rating is not None
    ]
    if len(rated) < max(2 * n_bins, 20):
        raise AnalysisError(
            f"only {len(rated)} rated sessions — not enough for a "
            f"{n_bins}-bin MOS analysis"
        )
    ratings = np.array([float(p.rating) for p in rated])

    curves: Dict[str, BinnedCurve] = {}
    correlations: Dict[str, float] = {}
    edges = np.linspace(0, 100, n_bins + 1)
    for name in ENGAGEMENT_METRICS:
        values = np.array([getattr(p, name) for p in rated], dtype=float)
        peak = values.max()
        if peak <= 0:
            raise AnalysisError(f"engagement metric {name} is all zero")
        normalized = 100.0 * values / peak
        curve = bin_statistic(normalized, ratings, edges, statistic=statistic)
        stat = curve.stat.copy()
        stat[curve.counts < min_bin_count] = np.nan
        curves[name] = BinnedCurve(
            edges=curve.edges, centers=curve.centers,
            stat=stat, counts=curve.counts,
        )
        correlations[name] = spearman(values, ratings)
    return MosCorrelation(
        curves=curves, correlations=correlations, n_rated=len(rated)
    )

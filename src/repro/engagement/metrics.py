"""Conversion from participant records to analysis-ready arrays."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.telemetry.schema import (
    ENGAGEMENT_METRICS,
    NETWORK_METRICS,
    ParticipantRecord,
)


def engagement_frame(
    participants: Iterable[ParticipantRecord],
    network_stat: str = "mean",
) -> Dict[str, np.ndarray]:
    """Build a column dictionary from participant sessions.

    Columns: the three engagement metrics, the four network metrics (at
    the chosen per-session aggregate — the paper reports results on the
    mean but notes the same trends for P95), ``dropped_early``, ``rating``
    (NaN when absent) and ``conditioning``.
    """
    parts: List[ParticipantRecord] = list(participants)
    if not parts:
        raise AnalysisError("no participants to analyse")
    frame: Dict[str, np.ndarray] = {}
    for name in ENGAGEMENT_METRICS:
        frame[name] = np.array([getattr(p, name) for p in parts], dtype=float)
    for metric in NETWORK_METRICS:
        frame[metric] = np.array(
            [p.metric(metric, network_stat) for p in parts], dtype=float
        )
    frame["dropped_early"] = np.array(
        [p.dropped_early for p in parts], dtype=float
    )
    frame["rating"] = np.array(
        [p.rating if p.rating is not None else np.nan for p in parts], dtype=float
    )
    frame["conditioning"] = np.array([p.conditioning for p in parts], dtype=float)
    return frame


def normalize_to_best(stat: Sequence[float]) -> np.ndarray:
    """Scale a curve so its best (largest) non-NaN value is 100.

    The paper's Fig. 4 x-axis is "normalized" engagement; several of its
    headline numbers ("reduce by ~20%") are relative to the best bin.
    """
    arr = np.asarray(stat, dtype=float)
    finite = arr[~np.isnan(arr)]
    if len(finite) == 0:
        raise AnalysisError("cannot normalize an all-NaN curve")
    best = finite.max()
    if best <= 0:
        raise AnalysisError("cannot normalize a non-positive curve")
    return 100.0 * arr / best

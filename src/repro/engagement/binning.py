"""Engagement-vs-condition binning: the Fig. 1 primitive."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.stats import BinnedCurve, bin_statistic
from repro.engagement.cohort import ConditionWindow, apply_windows
from repro.errors import AnalysisError
from repro.telemetry.schema import (
    ENGAGEMENT_METRICS,
    NETWORK_METRICS,
    ParticipantRecord,
)


def engagement_curve(
    participants: Iterable[ParticipantRecord],
    network_metric: str,
    engagement_metric: str,
    edges: Sequence[float],
    control_windows: Optional[Iterable[ConditionWindow]] = None,
    network_stat: str = "mean",
    statistic: str = "mean",
    min_bin_count: int = 1,
) -> BinnedCurve:
    """Bin sessions by a network metric and summarise an engagement metric.

    Args:
        participants: sessions to analyse (already cohort-filtered).
        network_metric: x-axis metric, one of ``NETWORK_METRICS``.
        engagement_metric: y-axis metric, one of ``ENGAGEMENT_METRICS``
            or ``"dropped_early"`` (the §3.2 drop-off observation).
        edges: x-axis bin edges.
        control_windows: hold-other-metrics-constant filters; pass
            :func:`repro.engagement.cohort.control_windows_except` output
            for the paper's methodology, or None to skip (ablation).
        network_stat: which per-session aggregate to bin on (the paper
            uses the mean, noting the same trends hold for P95).
        statistic: per-bin reduction of the engagement metric.
        min_bin_count: bins with fewer samples get NaN (statistically
            meaningless points stay visibly absent rather than noisy).
    """
    if network_metric not in NETWORK_METRICS:
        raise AnalysisError(f"unknown network metric {network_metric!r}")
    valid_engagement = ENGAGEMENT_METRICS + ("dropped_early",)
    if engagement_metric not in valid_engagement:
        raise AnalysisError(f"unknown engagement metric {engagement_metric!r}")

    pool = list(participants)
    if control_windows is not None:
        pool = apply_windows(pool, control_windows)
    if not pool:
        raise AnalysisError(
            f"no sessions left for {network_metric} after control windows"
        )

    keys = [p.metric(network_metric, network_stat) for p in pool]
    if engagement_metric == "dropped_early":
        values = [100.0 * float(p.dropped_early) for p in pool]
    else:
        values = [getattr(p, engagement_metric) for p in pool]
    curve = bin_statistic(keys, values, edges, statistic=statistic)
    if min_bin_count > 1:
        stat = curve.stat.copy()
        stat[curve.counts < min_bin_count] = np.nan
        curve = BinnedCurve(
            edges=curve.edges, centers=curve.centers,
            stat=stat, counts=curve.counts,
        )
    return curve

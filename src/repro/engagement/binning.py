"""Engagement-vs-condition binning: the Fig. 1 primitive.

Two input shapes, one contract.  :func:`engagement_curve` accepts either
an iterable of participant records (the original path) or a columnar
source (a :class:`~repro.telemetry.store.CallDataset` or prebuilt
:class:`~repro.perf.columnar.ParticipantColumns`), and the two paths are
float-for-float identical — property-tested in
``tests/perf/test_columnar.py``.  :func:`curve_matrix` is the columnar
fast path for a whole Fig. 1-style grid: each network metric is binned
once and every engagement column is reduced against that one grouping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.stats import BinnedCurve, bin_grouping, bin_statistic
from repro.engagement.cohort import ConditionWindow, apply_windows
from repro.errors import AnalysisError
from repro.perf.columnar import ParticipantColumns, participant_columns
from repro.telemetry.schema import (
    ENGAGEMENT_METRICS,
    NETWORK_METRICS,
    ParticipantRecord,
)
from repro.telemetry.store import CallDataset

ParticipantPool = Union[
    CallDataset, ParticipantColumns, Iterable[ParticipantRecord]
]


def _mask_sparse_bins(curve: BinnedCurve, min_bin_count: int) -> BinnedCurve:
    """NaN out bins with fewer than ``min_bin_count`` samples."""
    if min_bin_count <= 1:
        return curve
    stat = curve.stat.copy()
    stat[curve.counts < min_bin_count] = np.nan
    return BinnedCurve(
        edges=curve.edges, centers=curve.centers,
        stat=stat, counts=curve.counts,
    )


def engagement_curve(
    participants: ParticipantPool,
    network_metric: str,
    engagement_metric: str,
    edges: Sequence[float],
    control_windows: Optional[Iterable[ConditionWindow]] = None,
    network_stat: str = "mean",
    statistic: str = "mean",
    min_bin_count: int = 1,
) -> BinnedCurve:
    """Bin sessions by a network metric and summarise an engagement metric.

    Args:
        participants: sessions to analyse (already cohort-filtered) — an
            iterable of records, a ``CallDataset``, or prebuilt
            ``ParticipantColumns`` (the latter two take the zero-getattr
            columnar path).
        network_metric: x-axis metric, one of ``NETWORK_METRICS``.
        engagement_metric: y-axis metric, one of ``ENGAGEMENT_METRICS``
            or ``"dropped_early"`` (the §3.2 drop-off observation).
        edges: x-axis bin edges.
        control_windows: hold-other-metrics-constant filters; pass
            :func:`repro.engagement.cohort.control_windows_except` output
            for the paper's methodology, or None to skip (ablation).
        network_stat: which per-session aggregate to bin on (the paper
            uses the mean, noting the same trends hold for P95).
        statistic: per-bin reduction of the engagement metric.
        min_bin_count: bins with fewer samples get NaN (statistically
            meaningless points stay visibly absent rather than noisy).
    """
    if network_metric not in NETWORK_METRICS:
        raise AnalysisError(f"unknown network metric {network_metric!r}")
    valid_engagement = ENGAGEMENT_METRICS + ("dropped_early",)
    if engagement_metric not in valid_engagement:
        raise AnalysisError(f"unknown engagement metric {engagement_metric!r}")

    if isinstance(participants, (ParticipantColumns, CallDataset)):
        cols = participant_columns(participants)
        keys = cols.metric(network_metric, network_stat)
        values = cols.engagement_values(engagement_metric)
        if control_windows is not None:
            mask = cols.window_mask(control_windows)
            keys = keys[mask]
            values = values[mask]
        if len(keys) == 0:
            raise AnalysisError(
                f"no sessions left for {network_metric} after control windows"
            )
        curve = bin_statistic(keys, values, edges, statistic=statistic)
        return _mask_sparse_bins(curve, min_bin_count)

    keys: List[float] = []
    values: List[float] = []
    if control_windows is not None:
        pool = apply_windows(list(participants), control_windows)
    else:
        pool = participants  # stream; no list() materialisation needed
    if engagement_metric == "dropped_early":
        for p in pool:
            keys.append(p.metric(network_metric, network_stat))
            values.append(100.0 * float(p.dropped_early))
    else:
        for p in pool:
            keys.append(p.metric(network_metric, network_stat))
            values.append(getattr(p, engagement_metric))
    if not keys:
        raise AnalysisError(
            f"no sessions left for {network_metric} after control windows"
        )
    curve = bin_statistic(keys, values, edges, statistic=statistic)
    return _mask_sparse_bins(curve, min_bin_count)


def curve_matrix(
    participants: ParticipantPool,
    edges: Dict[str, Sequence[float]],
    engagement_metrics: Optional[Sequence[str]] = None,
    control_windows: Optional[Dict[str, Iterable[ConditionWindow]]] = None,
    network_stat: str = "mean",
    statistic: str = "mean",
    min_bin_count: int = 1,
) -> Dict[str, Dict[str, BinnedCurve]]:
    """All engagement × network curves in one grouping pass per metric.

    The per-curve path bins the same key column M times (once per
    engagement metric); here each network metric in ``edges`` is binned
    **once** and every engagement column is reduced against that shared
    :class:`~repro.core.stats.BinGrouping`.  Output is
    ``{network_metric: {engagement_metric: BinnedCurve}}`` and every
    curve is bit-identical to the corresponding
    :func:`engagement_curve` call.

    Args:
        participants: as for :func:`engagement_curve`.
        edges: per-network-metric bin edges (also selects the panels).
        engagement_metrics: y-axis metrics; defaults to
            ``ENGAGEMENT_METRICS``.
        control_windows: optional per-network-metric window lists (e.g.
            ``{m: control_windows_except(m) for m in edges}``).
    """
    names = (
        list(engagement_metrics)
        if engagement_metrics is not None
        else list(ENGAGEMENT_METRICS)
    )
    for network_metric in edges:
        if network_metric not in NETWORK_METRICS:
            raise AnalysisError(f"unknown network metric {network_metric!r}")
    valid_engagement = ENGAGEMENT_METRICS + ("dropped_early",)
    for name in names:
        if name not in valid_engagement:
            raise AnalysisError(f"unknown engagement metric {name!r}")

    cols = participant_columns(participants)
    if len(cols) == 0:
        raise AnalysisError("no participants to analyse")

    value_columns = {name: cols.engagement_values(name) for name in names}
    curves: Dict[str, Dict[str, BinnedCurve]] = {}
    for network_metric, metric_edges in edges.items():
        keys = cols.metric(network_metric, network_stat)
        windows = (control_windows or {}).get(network_metric)
        if windows is not None:
            mask = cols.window_mask(windows)
            keys = keys[mask]
            panel_values = {n: col[mask] for n, col in value_columns.items()}
        else:
            panel_values = value_columns
        if len(keys) == 0:
            raise AnalysisError(
                f"no sessions left for {network_metric} after control windows"
            )
        grouping = bin_grouping(keys, metric_edges)
        curves[network_metric] = {
            name: _mask_sparse_bins(
                grouping.reduce(panel_values[name], statistic), min_bin_count
            )
            for name in names
        }
    return curves

"""ASCII table/series rendering for the benchmark harness.

Every benchmark prints the rows/series its paper figure reports; these
helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from repro.errors import AnalysisError

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Fixed-width table with a header rule."""
    row_list = [[_render(c) for c in row] for row in rows]
    for i, row in enumerate(row_list):
        if len(row) != len(headers):
            raise AnalysisError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in row_list:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in row_list:
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    pairs: Iterable[Tuple[Cell, Cell]],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Two-column rendering of a series (one figure line)."""
    return format_table([x_label, y_label], list(pairs), title=title)

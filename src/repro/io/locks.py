"""Advisory file locks for multi-process writers.

Two processes building the same artifact concurrently is a real
scenario — a benchmark sweep and a USaaS query both warming the
:class:`~repro.perf.cache.ArtifactCache`, or two resumed runs pointed at
one checkpoint directory.  Atomic renames already make each individual
write safe; the lock adds *mutual exclusion around the build itself*, so
the second writer waits and then reads the first writer's artifact
instead of redundantly (and concurrently) rebuilding into the same
temporary path.

:func:`file_lock` prefers ``fcntl.flock`` (kernel-managed; evaporates if
the holder dies) and degrades to an ``O_CREAT | O_EXCL`` lockfile on
platforms without ``fcntl``.  The fallback breaks stale locks by age, so
a crashed holder cannot wedge every future writer.  Waiting is polled on
an injectable :class:`~repro.resilience.clock.Clock`; running out of
budget raises :class:`~repro.errors.LockTimeoutError`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import LockTimeoutError
from repro.resilience.clock import Clock, MonotonicClock

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

PathLike = Union[str, Path]

#: How long between acquisition attempts while waiting.
DEFAULT_POLL_S = 0.02

#: A fallback lockfile older than this is presumed orphaned by a crashed
#: holder and broken.  Generous: no legitimate build holds a lock for
#: ten minutes.
STALE_LOCK_S = 600.0


@contextmanager
def file_lock(
    path: PathLike,
    timeout_s: float = 30.0,
    poll_s: float = DEFAULT_POLL_S,
    clock: Optional[Clock] = None,
) -> Iterator[None]:
    """Hold an exclusive advisory lock at ``<path>.lock``.

    Cooperating writers (this library's own cache and checkpoint code)
    serialise on it; foreign readers are unaffected — the artifact
    itself is still published by atomic rename.

    Raises:
        LockTimeoutError: the lock was not acquired within ``timeout_s``.
    """
    lock_path = Path(str(path) + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    clock = clock or MonotonicClock()
    deadline = clock.now() + timeout_s
    if fcntl is not None:
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if clock.now() >= deadline:
                        raise LockTimeoutError(
                            f"could not lock {lock_path} within "
                            f"{timeout_s:.1f}s"
                        ) from None
                    clock.sleep(poll_s)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        return
    # Fallback: exclusive-create lockfile.  Unlike flock, a crashed
    # holder leaves the file behind, so age out stale ones.
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            break
        except FileExistsError:
            _break_stale(lock_path)
            if clock.now() >= deadline:
                raise LockTimeoutError(
                    f"could not lock {lock_path} within {timeout_s:.1f}s"
                ) from None
            clock.sleep(poll_s)
    try:
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        yield
    finally:
        try:
            os.unlink(lock_path)
        except OSError:
            pass  # already removed (broken as stale by a waiting peer)


def _break_stale(lock_path: Path) -> bool:
    """Remove a fallback lockfile abandoned by a crashed holder."""
    import time

    try:
        age = time.time() - lock_path.stat().st_mtime
    except OSError:
        return False
    if age <= STALE_LOCK_S:
        return False
    try:
        os.unlink(lock_path)
    except OSError:
        return False
    return True

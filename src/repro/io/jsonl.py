"""Line-delimited JSON helpers used by dataset stores and benchmarks.

Writes are crash-safe: records land in a ``.tmp`` sibling which is
``os.replace``\\ d into place, so an interrupted export can never leave a
truncated file behind.  Reads are strict by default; :func:`salvage_jsonl`
is the opt-in lenient path that quarantines bad lines with counts
instead of aborting the whole file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import SchemaError

PathLike = Union[str, Path]


def write_jsonl(path: PathLike, records: Iterable[Any]) -> int:
    """Atomically write one JSON value per line; returns the record count.

    The file appears at ``path`` only after every record has been
    written and flushed — a crash mid-export leaves the previous file
    (or nothing) in place, never a truncated one.
    """
    count = 0
    with atomic_writer(path) as f:
        for record in records:
            f.write(json.dumps(record, default=_default) + "\n")
            count += 1
    return count


class atomic_writer:
    """Context manager: write to ``<path>.tmp``, replace on clean exit.

    On an exception the temporary file is removed and the destination is
    untouched.  Usable by any text export, not just JSONL.
    """

    def __init__(self, path: PathLike, encoding: str = "utf-8") -> None:
        self._path = Path(path)
        self._tmp = self._path.with_name(self._path.name + ".tmp")
        self._encoding = encoding
        self._handle = None

    def __enter__(self):
        self._handle = open(self._tmp, "w", encoding=self._encoding)
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        if exc_type is None:
            os.replace(self._tmp, self._path)
        else:
            try:
                os.unlink(self._tmp)
            except OSError:
                pass  # destination untouched; a stray .tmp is harmless
        return False


def read_jsonl(path: PathLike) -> List[Any]:
    """Read all records; raises SchemaError with line numbers on bad JSON."""
    return list(iter_jsonl(path))


def iter_jsonl(path: PathLike) -> Iterator[Any]:
    """Stream records without loading the whole file."""
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError as exc:
                raise SchemaError(f"{path}:{line_no}: invalid JSON: {exc}") from exc


@dataclass(frozen=True)
class SalvageResult:
    """Outcome of a lenient read.

    Attributes:
        records: every record that parsed.
        n_bad: how many lines were quarantined.
        bad_lines: ``(line_no, error)`` per quarantined line.
        quarantine_path: where the raw bad lines were written (if asked).
    """

    records: Tuple[Any, ...]
    n_bad: int
    bad_lines: Tuple[Tuple[int, str], ...]
    quarantine_path: Optional[str] = None

    @property
    def clean(self) -> bool:
        return self.n_bad == 0


def salvage_jsonl(
    path: PathLike,
    quarantine: Optional[PathLike] = None,
    max_bad_fraction: float = 1.0,
    tail_only: bool = False,
) -> SalvageResult:
    """Lenient JSONL read: keep good lines, quarantine bad ones.

    The file is read as *bytes* and decoded line by line: a process
    killed mid-write can tear the final line inside a multibyte UTF-8
    character, and a text-mode read would then raise
    ``UnicodeDecodeError`` before salvage ever saw the good lines.
    Here such a line is quarantined like any other damage.

    Args:
        quarantine: optional path; raw bad lines are written there
            (atomically) for later inspection.
        max_bad_fraction: abort with SchemaError when more than this
            fraction of non-empty lines is bad — a file that is mostly
            garbage is a wrong file, not a damaged one.
        tail_only: only tolerate damage *after* the last good line.
            Append-only journals can tear exactly one way — a partial
            final write — so a bad line followed by a good one means
            the file is corrupt, not torn, and salvaging around it
            would silently drop committed records; raise SchemaError
            instead.
    """
    if not 0.0 <= max_bad_fraction <= 1.0:
        raise SchemaError("max_bad_fraction must be in [0, 1]")
    records: List[Any] = []
    bad: List[Tuple[int, str]] = []
    raw_bad: List[str] = []
    n_lines = 0
    raw = Path(path).read_bytes()
    for line_no, raw_line in enumerate(raw.split(b"\n"), 1):
        if not raw_line.strip():
            continue
        n_lines += 1
        try:
            line = raw_line.decode("utf-8")
        except UnicodeDecodeError as exc:
            bad.append((line_no, f"undecodable bytes: {exc}"))
            raw_bad.append(raw_line.decode("utf-8", errors="replace"))
            continue
        try:
            records.append(json.loads(line.strip()))
        except ValueError as exc:
            bad.append((line_no, f"invalid JSON: {exc}"))
            raw_bad.append(line.rstrip("\n"))
            continue
        if tail_only and bad:
            raise SchemaError(
                f"{path}: line {bad[0][0]} is bad but line {line_no} "
                f"parses — mid-file corruption, not a torn tail"
            )
    if n_lines and len(bad) / n_lines > max_bad_fraction:
        raise SchemaError(
            f"{path}: {len(bad)}/{n_lines} lines are bad "
            f"(over the {max_bad_fraction:.0%} salvage ceiling)"
        )
    quarantine_path: Optional[str] = None
    if quarantine is not None and raw_bad:
        with atomic_writer(quarantine) as f:
            for line in raw_bad:
                f.write(line + "\n")
        quarantine_path = str(quarantine)
    return SalvageResult(
        records=tuple(records),
        n_bad=len(bad),
        bad_lines=tuple(bad),
        quarantine_path=quarantine_path,
    )


def _default(value: Any) -> Any:
    """JSON fallback for dates and numpy scalars."""
    iso = getattr(value, "isoformat", None)
    if callable(iso):
        return iso()
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"cannot serialise {type(value).__name__}")


#: Public name for the shared ``json.dumps(default=...)`` fallback —
#: the checkpoint layer serialises shard records with exactly the
#: conventions :func:`write_jsonl` uses.
json_default = _default

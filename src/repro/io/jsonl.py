"""Line-delimited JSON helpers used by dataset stores and benchmarks."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Union

from repro.errors import SchemaError

PathLike = Union[str, Path]


def write_jsonl(path: PathLike, records: Iterable[Any]) -> int:
    """Write one JSON value per line; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for record in records:
            f.write(json.dumps(record, default=_default) + "\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> List[Any]:
    """Read all records; raises SchemaError with line numbers on bad JSON."""
    out: List[Any] = []
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError as exc:
                raise SchemaError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
    return out


def iter_jsonl(path: PathLike) -> Iterator[Any]:
    """Stream records without loading the whole file."""
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError as exc:
                raise SchemaError(f"{path}:{line_no}: invalid JSON: {exc}") from exc


def _default(value: Any) -> Any:
    """JSON fallback for dates and numpy scalars."""
    iso = getattr(value, "isoformat", None)
    if callable(iso):
        return iso()
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"cannot serialise {type(value).__name__}")

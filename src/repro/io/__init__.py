"""Persistence and report-rendering helpers."""

from repro.io.jsonl import (
    SalvageResult,
    atomic_writer,
    iter_jsonl,
    read_jsonl,
    salvage_jsonl,
    write_jsonl,
)
from repro.io.locks import file_lock
from repro.io.tables import format_series, format_table

__all__ = [
    "SalvageResult",
    "atomic_writer",
    "file_lock",
    "format_series",
    "format_table",
    "iter_jsonl",
    "read_jsonl",
    "salvage_jsonl",
    "write_jsonl",
]

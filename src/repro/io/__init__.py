"""Persistence and report-rendering helpers."""

from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.tables import format_series, format_table

__all__ = ["format_series", "format_table", "read_jsonl", "write_jsonl"]

"""The unified user-signal model at the heart of USaaS (§5).

The paper's framework consumes two families of user feedback:

* **implicit** signals — in-session user actions captured privately by an
  application (mute, camera-off, drop-off, session duration), and
* **explicit** signals — feedback users volunteer, either in-app (star
  ratings → MOS) or offline on social media (posts, speed-test shares).

Both are normalised here into :class:`Signal` records carrying a timestamp,
a source network/service, a named metric and a value, so the correlator can
join them without caring where they came from.
"""

from __future__ import annotations

import datetime as dt
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SchemaError


class SignalKind(enum.Enum):
    """Whether a user produced the signal deliberately."""

    IMPLICIT = "implicit"
    EXPLICIT = "explicit"


@dataclass(frozen=True)
class Signal:
    """One observation of user feedback.

    Attributes:
        kind: implicit (action) vs explicit (volunteered feedback).
        timestamp: when the signal was produced.
        network: the access network it pertains to (e.g. ``"starlink"``).
        service: the networked service, if any (e.g. ``"teams"``).
        metric: the signal's name (e.g. ``"presence"``, ``"sentiment_pos"``).
        value: numeric value of the signal.
        weight: aggregation weight (e.g. upvotes for a social post).
        attrs: free-form dimensions (platform, country, ...) used for
            cohorting; values must be strings to stay hashable/groupable.
    """

    kind: SignalKind
    timestamp: dt.datetime
    network: str
    metric: str
    value: float
    service: Optional[str] = None
    weight: float = 1.0
    attrs: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.network:
            raise SchemaError("signal requires a network")
        if not self.metric:
            raise SchemaError("signal requires a metric name")
        if self.weight < 0:
            raise SchemaError(f"weight must be non-negative, got {self.weight}")

    def attr(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    @property
    def date(self) -> dt.date:
        return self.timestamp.date()


def ImplicitSignal(
    timestamp: dt.datetime,
    network: str,
    metric: str,
    value: float,
    service: Optional[str] = None,
    weight: float = 1.0,
    **attrs: str,
) -> Signal:
    """Convenience constructor for implicit (user-action) signals."""
    return Signal(
        kind=SignalKind.IMPLICIT,
        timestamp=timestamp,
        network=network,
        metric=metric,
        value=value,
        service=service,
        weight=weight,
        attrs=tuple(sorted(attrs.items())),
    )


def ExplicitSignal(
    timestamp: dt.datetime,
    network: str,
    metric: str,
    value: float,
    service: Optional[str] = None,
    weight: float = 1.0,
    **attrs: str,
) -> Signal:
    """Convenience constructor for explicit (volunteered) signals."""
    return Signal(
        kind=SignalKind.EXPLICIT,
        timestamp=timestamp,
        network=network,
        metric=metric,
        value=value,
        service=service,
        weight=weight,
        attrs=tuple(sorted(attrs.items())),
    )


class SignalSeries:
    """An append-only collection of signals with simple filtering.

    This is the in-memory exchange format between signal *sources*
    (telemetry adapters, social adapters) and the USaaS correlator.
    """

    def __init__(self, signals: Iterable[Signal] = ()) -> None:
        self._signals: List[Signal] = list(signals)

    def __len__(self) -> int:
        return len(self._signals)

    def __iter__(self) -> Iterator[Signal]:
        return iter(self._signals)

    def append(self, signal: Signal) -> None:
        if not isinstance(signal, Signal):
            raise SchemaError(f"expected Signal, got {type(signal).__name__}")
        self._signals.append(signal)

    def extend(self, signals: Iterable[Signal]) -> None:
        for signal in signals:
            self.append(signal)

    def extend_columns(
        self,
        kind: Union[SignalKind, Sequence[SignalKind]],
        timestamps: Sequence[dt.datetime],
        network: Union[str, Sequence[str]],
        metric: Union[str, Sequence[str]],
        values: Sequence[float],
        service: Union[None, str, Sequence[Optional[str]]] = None,
        weight: Union[float, Sequence[float]] = 1.0,
        attrs: Sequence[Tuple[Tuple[str, str], ...]] = (),
    ) -> int:
        """Bulk-append one signal per row of the given columns.

        The columnar analogue of N :meth:`append` calls: every argument
        is either a scalar (broadcast to all rows) or a length-n column.
        ``attrs`` rows must already be sorted key tuples (what the
        ``ImplicitSignal``/``ExplicitSignal`` constructors produce);
        ``attrs=()`` broadcasts the empty tuple.  Values are validated
        with the same checks — and the same error messages — as
        :meth:`Signal.__post_init__`, then the Signal objects are built
        directly, skipping per-field dataclass machinery.  Returns the
        number of signals appended.
        """
        n = len(timestamps)

        def column(name: str, col, scalar: bool) -> list:
            if scalar:
                return [col] * n
            if isinstance(col, np.ndarray):
                col = col.tolist()
            else:
                col = list(col)
            if len(col) != n:
                raise SchemaError(
                    f"extend_columns: {name} has length {len(col)}, "
                    f"expected {n}"
                )
            return col

        kinds = column("kind", kind, isinstance(kind, SignalKind))
        networks = column("network", network, isinstance(network, str))
        metrics = column("metric", metric, isinstance(metric, str))
        value_col = column("values", values, False)
        services = column(
            "service", service, service is None or isinstance(service, str)
        )
        weights = column(
            "weight", weight, isinstance(weight, (int, float))
        )
        attrs_col = column("attrs", attrs, attrs == ())

        new_signals: List[Signal] = []
        for i in range(n):
            net = networks[i]
            met = metrics[i]
            w = weights[i]
            if not net:
                raise SchemaError("signal requires a network")
            if not met:
                raise SchemaError("signal requires a metric name")
            if w < 0:
                raise SchemaError(f"weight must be non-negative, got {w}")
            s = object.__new__(Signal)
            s.__dict__["kind"] = kinds[i]
            s.__dict__["timestamp"] = timestamps[i]
            s.__dict__["network"] = net
            s.__dict__["metric"] = met
            s.__dict__["value"] = value_col[i]
            s.__dict__["service"] = services[i]
            s.__dict__["weight"] = w
            s.__dict__["attrs"] = attrs_col[i]
            new_signals.append(s)
        self._signals.extend(new_signals)
        return n

    def filter(
        self,
        kind: Optional[SignalKind] = None,
        network: Optional[str] = None,
        service: Optional[str] = None,
        metric: Optional[str] = None,
        start: Optional[dt.datetime] = None,
        end: Optional[dt.datetime] = None,
        **attrs: str,
    ) -> "SignalSeries":
        """Return the subset matching every provided criterion."""
        def keep(s: Signal) -> bool:
            if kind is not None and s.kind is not kind:
                return False
            if network is not None and s.network != network:
                return False
            if service is not None and s.service != service:
                return False
            if metric is not None and s.metric != metric:
                return False
            if start is not None and s.timestamp < start:
                return False
            if end is not None and s.timestamp > end:
                return False
            return all(s.attr(k) == v for k, v in attrs.items())

        return SignalSeries(s for s in self._signals if keep(s))

    def metrics(self) -> List[str]:
        """Distinct metric names, sorted."""
        return sorted({s.metric for s in self._signals})

    def values(self) -> List[float]:
        return [s.value for s in self._signals]

    def weighted_mean(self) -> float:
        """Weight-aware mean of signal values."""
        if not self._signals:
            raise SchemaError("cannot average an empty signal series")
        total_weight = sum(s.weight for s in self._signals)
        if total_weight == 0:
            raise SchemaError("all signals have zero weight")
        return sum(s.value * s.weight for s in self._signals) / total_weight

    def daily_mean(self) -> Dict[dt.date, float]:
        """Per-day weighted mean — the join key for cross-signal queries."""
        sums: Dict[dt.date, float] = {}
        weights: Dict[dt.date, float] = {}
        for s in self._signals:
            sums[s.date] = sums.get(s.date, 0.0) + s.value * s.weight
            weights[s.date] = weights.get(s.date, 0.0) + s.weight
        return {
            day: sums[day] / weights[day] for day in sums if weights[day] > 0
        }

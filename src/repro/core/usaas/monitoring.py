"""Continuous monitoring: USaaS as an alarm service.

§6: *"Both service and network providers could proactively act based on
USaaS output."*  The batch ``answer()`` path tells a stakeholder what has
happened; this module watches a signal stream and tells them the moment
something *starts* happening, by replaying the series day by day through
the engagement drift detector.

:func:`watch_metric` returns every alarm the detector would have raised
across the series' history — running it daily in production amounts to
keeping only the last day's verdict.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.signals import SignalSeries
from repro.engagement.early_warning import DriftDetector
from repro.errors import AnalysisError


@dataclass(frozen=True)
class Alarm:
    """One raised alarm.

    Attributes:
        day: the day the alarm fired.
        metric: which metric drifted.
        z_score: that day's z-score against the learned baseline.
        day_mean: the day's mean metric value.
        n_signals: how many signals the day aggregated.
    """

    day: dt.date
    metric: str
    z_score: float
    day_mean: float
    n_signals: int


def watch_metric(
    series: SignalSeries,
    metric: str,
    detector: Optional[DriftDetector] = None,
    rearm: bool = True,
) -> List[Alarm]:
    """Replay a signal series through a drift detector.

    Args:
        series: the signal stream (any kind/network mix — filter first).
        metric: the metric to watch.
        detector: detector settings; default watches for drops.
        rearm: after an alarm, reset the streak so distinct episodes
            produce distinct alarms (False = first alarm only).

    Returns:
        Alarms in chronological order.
    """
    subset = series.filter(metric=metric)
    if len(subset) == 0:
        raise AnalysisError(f"no signals carry metric {metric!r}")
    by_day: Dict[dt.date, List[float]] = {}
    for signal in subset:
        by_day.setdefault(signal.date, []).append(signal.value)

    detector = detector or DriftDetector()
    alarms: List[Alarm] = []
    previously_alarmed = False
    for day in sorted(by_day):
        values = by_day[day]
        z = detector.observe(values)
        if detector.has_alarmed and not previously_alarmed:
            alarms.append(Alarm(
                day=day,
                metric=metric,
                z_score=float(z) if z is not None else float("nan"),
                day_mean=float(sum(values) / len(values)),
                n_signals=len(values),
            ))
            if rearm:
                detector._alarmed = False
                detector._streak = 0
            else:
                previously_alarmed = True
    return alarms

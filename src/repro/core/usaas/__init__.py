"""User Signals as-a-Service (USaaS) — the paper's §5 framework.

USaaS sits between signal *sources* (applications with implicit user
actions, social platforms with explicit posts) and stakeholders (network
operators, service providers).  A stakeholder poses a
:class:`~repro.core.usaas.query.UsaasQuery` — which network, which
service, which metrics — and the service:

1. pulls matching signals from every registered source
   (:mod:`repro.core.usaas.registry`),
2. scrubs identifiers and enforces aggregation floors
   (:mod:`repro.core.usaas.privacy` — "We do not use any PII"),
3. corrects social-media bias by de-duplicating authors and capping
   popularity weights (:mod:`repro.core.usaas.bias`, §6),
4. correlates implicit and explicit series over time
   (:mod:`repro.core.usaas.correlator`),
5. distils findings into ranked :class:`~repro.core.usaas.insights.Insight`
   objects and a plain-text summary (:mod:`repro.core.usaas.summarize`
   standing in for the paper's LLM step).
"""

from repro.core.usaas.adapters import (
    FallbackSentimentChain,
    social_signals,
    social_signals_records,
    telemetry_signals,
    telemetry_signals_records,
)
from repro.core.usaas.bias import BiasCorrector
from repro.core.usaas.correlator import CorrelationFinding, correlate_series
from repro.core.usaas.insights import Insight
from repro.core.usaas.monitoring import Alarm, watch_metric
from repro.core.usaas.privacy import PrivacyGuard, scrub_author
from repro.core.usaas.query import UsaasQuery
from repro.core.usaas.registry import SignalSourceRegistry
from repro.core.usaas.service import (
    ComparisonReport,
    MetricComparison,
    UsaasReport,
    UsaasService,
)
from repro.core.usaas.summarize import summarize_insights

__all__ = [
    "Alarm",
    "BiasCorrector",
    "FallbackSentimentChain",
    "ComparisonReport",
    "MetricComparison",
    "watch_metric",
    "CorrelationFinding",
    "Insight",
    "PrivacyGuard",
    "SignalSourceRegistry",
    "UsaasQuery",
    "UsaasReport",
    "UsaasService",
    "correlate_series",
    "scrub_author",
    "social_signals",
    "social_signals_records",
    "summarize_insights",
    "telemetry_signals",
    "telemetry_signals_records",
]

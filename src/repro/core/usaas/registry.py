"""Signal-source registry: where USaaS pulls its inputs from."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from repro.core.signals import SignalSeries
from repro.errors import QueryError

SourceFn = Callable[[], SignalSeries]


class SignalSourceRegistry:
    """Named, lazily-evaluated signal sources.

    Sources are callables returning a :class:`SignalSeries` so that
    expensive exports (scoring a whole corpus) only run when a query
    actually needs them; results are cached per source.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, SourceFn] = {}
        self._cache: Dict[str, SignalSeries] = {}

    def register(self, name: str, source: SourceFn) -> None:
        if not name:
            raise QueryError("source name must be non-empty")
        if name in self._sources:
            raise QueryError(f"source {name!r} already registered")
        if not callable(source):
            raise QueryError(f"source {name!r} must be callable")
        self._sources[name] = source

    def unregister(self, name: str) -> None:
        if name not in self._sources:
            raise QueryError(f"source {name!r} not registered")
        del self._sources[name]
        self._cache.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._sources)

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def __len__(self) -> int:
        return len(self._sources)

    def series(self, name: str) -> SignalSeries:
        if name not in self._sources:
            raise QueryError(f"source {name!r} not registered")
        if name not in self._cache:
            self._cache[name] = self._sources[name]()
        return self._cache[name]

    def all_series(self) -> Iterator[Tuple[str, SignalSeries]]:
        for name in self.names():
            yield name, self.series(name)

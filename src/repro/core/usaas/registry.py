"""Signal-source registry: where USaaS pulls its inputs from."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.signals import SignalSeries
from repro.errors import QueryError, SchemaError

SourceFn = Callable[[], SignalSeries]


class SignalSourceRegistry:
    """Named, lazily-evaluated signal sources.

    Sources are callables returning a :class:`SignalSeries` so that
    expensive exports (scoring a whole corpus) only run when a query
    actually needs them; results are cached per source.

    Cache coherence rules:

    * a source that raises **never** populates the cache — the exception
      propagates and the next call re-runs the source;
    * a source that returns the wrong type never populates the cache;
    * every successful fetch also updates a *last-good* slot that
      survives :meth:`invalidate`, so the resilient ingestion path can
      serve stale data while a source is down.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, SourceFn] = {}
        self._cache: Dict[str, SignalSeries] = {}
        self._last_good: Dict[str, SignalSeries] = {}

    def register(self, name: str, source: SourceFn) -> None:
        if not name:
            raise QueryError("source name must be non-empty")
        if name in self._sources:
            raise QueryError(f"source {name!r} already registered")
        if not callable(source):
            raise QueryError(f"source {name!r} must be callable")
        self._sources[name] = source

    def unregister(self, name: str) -> None:
        if name not in self._sources:
            raise QueryError(f"source {name!r} not registered")
        del self._sources[name]
        self._cache.pop(name, None)
        self._last_good.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._sources)

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def __len__(self) -> int:
        return len(self._sources)

    # -- fetching ---------------------------------------------------------

    def load(self, name: str) -> SignalSeries:
        """Run the source *without* caching; validates the return type.

        The guarded ingestion path uses this per attempt and only
        :meth:`commit`\\ s a result that arrived within budget.
        """
        if name not in self._sources:
            raise QueryError(f"source {name!r} not registered")
        series = self._sources[name]()
        if not isinstance(series, SignalSeries):
            raise SchemaError(
                f"source {name!r} returned "
                f"{type(series).__name__}, expected SignalSeries"
            )
        return series

    def commit(self, name: str, series: SignalSeries) -> None:
        """Store a successfully-fetched series (cache + last-good)."""
        if name not in self._sources:
            raise QueryError(f"source {name!r} not registered")
        if not isinstance(series, SignalSeries):
            raise SchemaError("commit requires a SignalSeries")
        self._cache[name] = series
        self._last_good[name] = series

    def series(self, name: str) -> SignalSeries:
        """Cached fetch: load + commit on first use."""
        if name not in self._sources:
            raise QueryError(f"source {name!r} not registered")
        if name not in self._cache:
            self.commit(name, self.load(name))
        return self._cache[name]

    def all_series(self) -> Iterator[Tuple[str, SignalSeries]]:
        for name in self.names():
            yield name, self.series(name)

    # -- cache coherence --------------------------------------------------

    def cached(self, name: str) -> bool:
        return name in self._cache

    def last_good(self, name: str) -> Optional[SignalSeries]:
        """The most recent successfully-committed series, if any.

        Survives :meth:`invalidate` — this is the stale-fallback value
        the resilient path serves while a source is down.
        """
        return self._last_good.get(name)

    def invalidate(self, name: str) -> None:
        """Drop the cached value so the next fetch re-runs the source.

        Keeps the last-good slot: invalidation means "the data may be
        out of date", not "the data never existed".
        """
        if name not in self._sources:
            raise QueryError(f"source {name!r} not registered")
        self._cache.pop(name, None)

    def refresh(self, name: Optional[str] = None) -> None:
        """Invalidate and eagerly re-fetch one source (or all of them).

        A refresh that raises leaves the cache empty for that source but
        keeps the previous last-good value available for fallback.
        """
        targets = [name] if name is not None else self.names()
        for target in targets:
            self.invalidate(target)
            self.commit(target, self.load(target))

"""Adapters: domain datasets → unified signal series.

These are the ingestion shims a real USaaS deployment would run next to
each source: the conferencing service exports per-session user actions
(implicit) and ratings (explicit); the social pipeline exports per-post
sentiment polarity weighted by popularity.
"""

from __future__ import annotations

import datetime as dt
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.signals import (
    ExplicitSignal,
    ImplicitSignal,
    Signal,
    SignalKind,
    SignalSeries,
)
from repro.core.usaas.privacy import scrub_author
from repro.errors import QueryError, SchemaError
from repro.nlp.sentiment import SentimentAnalyzer, SentimentScores
from repro.perf.columnar import corpus_columns, participant_columns
from repro.resilience.policy import Fallback
from repro.social.corpus import RedditCorpus
from repro.telemetry.store import CallDataset


class FallbackSentimentChain:
    """Sentiment scoring with graceful degradation.

    A real deployment scores posts with a hosted service (an Azure-style
    text-analytics API); when that dependency is down the pipeline must
    keep producing polarity signals rather than dropping the whole
    social feed.  This chain tries each ``(name, scorer)`` in order and
    always ends at the offline lexicon
    :class:`~repro.nlp.sentiment.SentimentAnalyzer`, which cannot fail
    on valid text.  It is a drop-in for the ``analyzer=`` argument of
    :func:`social_signals` (only ``.score`` is required).

        chain = FallbackSentimentChain(("azure", azure_scorer))
        series = social_signals(corpus, analyzer=chain)
        chain.served_by  # {"azure": 812, "offline-lexicon": 44}
    """

    OFFLINE = "offline-lexicon"

    def __init__(self, *scorers, offline: Optional[SentimentAnalyzer] = None):
        offline = offline or SentimentAnalyzer()
        links = tuple(scorers) + ((self.OFFLINE, offline.score),)
        self._chain = Fallback(*links)
        self.fallback_calls = 0

    @property
    def served_by(self) -> Dict[str, int]:
        """How many calls each link answered."""
        return dict(self._chain.served_by)

    @property
    def degraded(self) -> bool:
        """True once any call was served by a non-primary link."""
        return self.fallback_calls > 0

    def score(self, text: str) -> SentimentScores:
        result = self._chain.call(text)
        if not isinstance(result.value, SentimentScores):
            raise SchemaError(
                f"sentiment scorer {result.used!r} returned "
                f"{type(result.value).__name__}, expected SentimentScores"
            )
        if result.degraded:
            self.fallback_calls += 1
        return result.value


#: Per-participant signal layout: four implicit rows, then the sparse
#: explicit rating row.  Order matters — it is the record-path order.
_TELEMETRY_METRICS = np.array(
    ["presence", "cam_on", "mic_on", "drop_off", "rating"], dtype=object
)
_TELEMETRY_KINDS = np.array(
    [SignalKind.IMPLICIT] * 4 + [SignalKind.EXPLICIT], dtype=object
)


def telemetry_signals(
    dataset: CallDataset,
    network: str,
    service: str = "teams",
    network_of: Optional[Callable] = None,
) -> SignalSeries:
    """Export a call dataset as implicit (+ sparse explicit) signals.

    A plain ``CallDataset`` with a single ``network`` label takes the
    columnar bulk-export path (signal-for-signal identical to
    :func:`telemetry_signals_records`, which remains the reference
    implementation and handles per-participant ``network_of``).

    Args:
        network: network label for every session, unless ``network_of``
            is given.
        network_of: optional ``participant -> network-name`` attribution
            function (a real deployment would map client IPs to ASes).
    """
    if not network and network_of is None:
        raise QueryError("either network or network_of is required")
    if isinstance(dataset, CallDataset) and network_of is None:
        return _telemetry_signals_columnar(dataset, network, service)
    return telemetry_signals_records(dataset, network, service, network_of)


def telemetry_signals_records(
    dataset: CallDataset,
    network: str,
    service: str = "teams",
    network_of: Optional[Callable] = None,
) -> SignalSeries:
    """Record-at-a-time reference implementation of :func:`telemetry_signals`."""
    if not network and network_of is None:
        raise QueryError("either network or network_of is required")
    series = SignalSeries()
    for call in dataset:
        for p in call.participants:
            net = network_of(p) if network_of is not None else network
            author = scrub_author(p.user_id)
            common = dict(
                service=service,
                platform=p.platform,
                country=p.country,
                user=author,
            )
            ts = call.start
            series.append(ImplicitSignal(ts, net, "presence", p.presence_pct, **common))
            series.append(ImplicitSignal(ts, net, "cam_on", p.cam_on_pct, **common))
            series.append(ImplicitSignal(ts, net, "mic_on", p.mic_on_pct, **common))
            series.append(
                ImplicitSignal(ts, net, "drop_off", 100.0 * p.dropped_early, **common)
            )
            if p.rating is not None:
                series.append(
                    ExplicitSignal(ts, net, "rating", float(p.rating), **common)
                )
    return series


def _telemetry_signals_columnar(
    dataset: CallDataset, network: str, service: str
) -> SignalSeries:
    cols = participant_columns(dataset)
    n = len(cols)
    series = SignalSeries()
    if n == 0:
        return series

    # Interleave: participant i contributes rows [starts[i], starts[i]+sizes[i])
    # — 4 implicit signals plus the rating row when one exists — so the
    # flat signal order equals the nested record-path loops exactly.
    rated = ~np.isnan(cols.rating)
    sizes = 4 + rated.astype(np.int64)
    starts = np.cumsum(sizes) - sizes
    total = int(sizes.sum())
    row = np.repeat(np.arange(n), sizes)
    pos = np.arange(total) - starts[row]

    vmat = np.empty((5, n))
    vmat[0] = cols.presence_pct
    vmat[1] = cols.cam_on_pct
    vmat[2] = cols.mic_on_pct
    vmat[3] = 100.0 * cols.dropped_early
    vmat[4] = cols.rating  # NaN rows are never selected (pos 4 needs rated)

    scrubbed: Dict[str, str] = {}
    attrs_rows = []
    for i in range(n):
        uid = cols.user_id[i]
        author = scrubbed.get(uid)
        if author is None:
            author = scrub_author(uid)
            scrubbed[uid] = author
        attrs_rows.append((
            ("country", cols.country[i]),
            ("platform", cols.platform[i]),
            ("user", author),
        ))

    row_list = row.tolist()
    series.extend_columns(
        _TELEMETRY_KINDS[pos].tolist(),
        [cols.call_start[r] for r in row_list],
        network,
        _TELEMETRY_METRICS[pos].tolist(),
        vmat[pos, row],
        service=service,
        weight=1.0,
        attrs=[attrs_rows[r] for r in row_list],
    )
    return series


def social_signals(
    corpus: RedditCorpus,
    network: str = "starlink",
    scores: Optional[Dict[str, SentimentScores]] = None,
    analyzer: Optional[SentimentAnalyzer] = None,
    service_of_topic: Optional[Dict[str, str]] = None,
) -> SignalSeries:
    """Export a social corpus as explicit sentiment signals.

    Each post becomes one ``sentiment_polarity`` signal in [-1, 1],
    weighted by popularity (upvotes + comments), so that one viral thread
    counts for the crowd behind it — which is also why the bias corrector
    exists downstream.

    A plain corpus scored by the lexicon analyzer takes the columnar
    path, sharing the corpus-wide sentiment block with the §4 analyses;
    precomputed ``scores`` or a custom scorer (e.g.
    :class:`FallbackSentimentChain`) fall back to
    :func:`social_signals_records`, the reference implementation.
    """
    if (
        scores is None
        and isinstance(corpus, RedditCorpus)
        and (analyzer is None or isinstance(analyzer, SentimentAnalyzer))
    ):
        return _social_signals_columnar(
            corpus, network, analyzer, service_of_topic
        )
    return social_signals_records(
        corpus, network, scores, analyzer, service_of_topic
    )


def social_signals_records(
    corpus: RedditCorpus,
    network: str = "starlink",
    scores: Optional[Dict[str, SentimentScores]] = None,
    analyzer: Optional[SentimentAnalyzer] = None,
    service_of_topic: Optional[Dict[str, str]] = None,
) -> SignalSeries:
    """Post-at-a-time reference implementation of :func:`social_signals`."""
    analyzer = analyzer or SentimentAnalyzer()
    series = SignalSeries()
    for post in corpus:
        s = scores.get(post.post_id) if scores else None
        if s is None:
            s = analyzer.score(post.full_text)
        service = (service_of_topic or {}).get(post.topic)
        series.append(
            ExplicitSignal(
                post.created,
                network,
                "sentiment_polarity",
                s.polarity,
                service=service,
                weight=max(1.0, post.popularity),
                user=scrub_author(post.author),
                topic=post.topic,
            )
        )
        if post.speed_test is not None:
            series.append(
                ExplicitSignal(
                    post.created,
                    network,
                    "reported_downlink_mbps",
                    post.speed_test.download_mbps,
                    user=scrub_author(post.author),
                    topic=post.topic,
                )
            )
    return series


_SOCIAL_METRICS = np.array(
    ["sentiment_polarity", "reported_downlink_mbps"], dtype=object
)


def _social_signals_columnar(
    corpus: RedditCorpus,
    network: str,
    analyzer: Optional[SentimentAnalyzer],
    service_of_topic: Optional[Dict[str, str]],
) -> SignalSeries:
    cols = corpus_columns(corpus)
    n = len(cols)
    series = SignalSeries()
    if n == 0:
        return series
    block = cols.sentiment(analyzer)

    # Interleave: one polarity signal per post, plus the speed-report
    # signal right after it for posts carrying a speed test — the exact
    # record-path order.
    has_speed = np.zeros(n, dtype=np.int64)
    has_speed[cols.speed_indices] = 1
    sizes = 1 + has_speed
    starts = np.cumsum(sizes) - sizes
    total = int(sizes.sum())
    row = np.repeat(np.arange(n), sizes)
    pos = np.arange(total) - starts[row]

    vmat = np.empty((2, n))
    vmat[0] = block.polarity
    vmat[1] = np.nan
    speed_idx = cols.speed_indices.tolist()
    vmat[1, cols.speed_indices] = np.fromiter(
        (cols.posts[i].speed_test.download_mbps for i in speed_idx),
        dtype=float,
        count=len(speed_idx),
    )
    wmat = np.empty((2, n))
    wmat[0] = np.maximum(1.0, cols.popularity)
    wmat[1] = 1.0

    topic_service = service_of_topic or {}
    scrubbed: Dict[str, str] = {}
    attrs_rows = []
    services_row = []
    for i in range(n):
        author = scrubbed.get(cols.author[i])
        if author is None:
            author = scrub_author(cols.author[i])
            scrubbed[cols.author[i]] = author
        attrs_rows.append((("topic", cols.topic[i]), ("user", author)))
        services_row.append(topic_service.get(cols.topic[i]))

    row_list = row.tolist()
    pos_list = pos.tolist()
    series.extend_columns(
        SignalKind.EXPLICIT,
        [cols.created[r] for r in row_list],
        network,
        _SOCIAL_METRICS[pos].tolist(),
        vmat[pos, row],
        service=[
            services_row[r] if p == 0 else None
            for p, r in zip(pos_list, row_list)
        ],
        weight=wmat[pos, row],
        attrs=[attrs_rows[r] for r in row_list],
    )
    return series

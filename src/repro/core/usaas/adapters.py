"""Adapters: domain datasets → unified signal series.

These are the ingestion shims a real USaaS deployment would run next to
each source: the conferencing service exports per-session user actions
(implicit) and ratings (explicit); the social pipeline exports per-post
sentiment polarity weighted by popularity.
"""

from __future__ import annotations

import datetime as dt
from typing import Callable, Dict, Optional

from repro.core.signals import ExplicitSignal, ImplicitSignal, Signal, SignalSeries
from repro.core.usaas.privacy import scrub_author
from repro.errors import QueryError, SchemaError
from repro.nlp.sentiment import SentimentAnalyzer, SentimentScores
from repro.resilience.policy import Fallback
from repro.social.corpus import RedditCorpus
from repro.telemetry.store import CallDataset


class FallbackSentimentChain:
    """Sentiment scoring with graceful degradation.

    A real deployment scores posts with a hosted service (an Azure-style
    text-analytics API); when that dependency is down the pipeline must
    keep producing polarity signals rather than dropping the whole
    social feed.  This chain tries each ``(name, scorer)`` in order and
    always ends at the offline lexicon
    :class:`~repro.nlp.sentiment.SentimentAnalyzer`, which cannot fail
    on valid text.  It is a drop-in for the ``analyzer=`` argument of
    :func:`social_signals` (only ``.score`` is required).

        chain = FallbackSentimentChain(("azure", azure_scorer))
        series = social_signals(corpus, analyzer=chain)
        chain.served_by  # {"azure": 812, "offline-lexicon": 44}
    """

    OFFLINE = "offline-lexicon"

    def __init__(self, *scorers, offline: Optional[SentimentAnalyzer] = None):
        offline = offline or SentimentAnalyzer()
        links = tuple(scorers) + ((self.OFFLINE, offline.score),)
        self._chain = Fallback(*links)
        self.fallback_calls = 0

    @property
    def served_by(self) -> Dict[str, int]:
        """How many calls each link answered."""
        return dict(self._chain.served_by)

    @property
    def degraded(self) -> bool:
        """True once any call was served by a non-primary link."""
        return self.fallback_calls > 0

    def score(self, text: str) -> SentimentScores:
        result = self._chain.call(text)
        if not isinstance(result.value, SentimentScores):
            raise SchemaError(
                f"sentiment scorer {result.used!r} returned "
                f"{type(result.value).__name__}, expected SentimentScores"
            )
        if result.degraded:
            self.fallback_calls += 1
        return result.value


def telemetry_signals(
    dataset: CallDataset,
    network: str,
    service: str = "teams",
    network_of: Optional[Callable] = None,
) -> SignalSeries:
    """Export a call dataset as implicit (+ sparse explicit) signals.

    Args:
        network: network label for every session, unless ``network_of``
            is given.
        network_of: optional ``participant -> network-name`` attribution
            function (a real deployment would map client IPs to ASes).
    """
    if not network and network_of is None:
        raise QueryError("either network or network_of is required")
    series = SignalSeries()
    for call in dataset:
        for p in call.participants:
            net = network_of(p) if network_of is not None else network
            author = scrub_author(p.user_id)
            common = dict(
                service=service,
                platform=p.platform,
                country=p.country,
                user=author,
            )
            ts = call.start
            series.append(ImplicitSignal(ts, net, "presence", p.presence_pct, **common))
            series.append(ImplicitSignal(ts, net, "cam_on", p.cam_on_pct, **common))
            series.append(ImplicitSignal(ts, net, "mic_on", p.mic_on_pct, **common))
            series.append(
                ImplicitSignal(ts, net, "drop_off", 100.0 * p.dropped_early, **common)
            )
            if p.rating is not None:
                series.append(
                    ExplicitSignal(ts, net, "rating", float(p.rating), **common)
                )
    return series


def social_signals(
    corpus: RedditCorpus,
    network: str = "starlink",
    scores: Optional[Dict[str, SentimentScores]] = None,
    analyzer: Optional[SentimentAnalyzer] = None,
    service_of_topic: Optional[Dict[str, str]] = None,
) -> SignalSeries:
    """Export a social corpus as explicit sentiment signals.

    Each post becomes one ``sentiment_polarity`` signal in [-1, 1],
    weighted by popularity (upvotes + comments), so that one viral thread
    counts for the crowd behind it — which is also why the bias corrector
    exists downstream.
    """
    analyzer = analyzer or SentimentAnalyzer()
    series = SignalSeries()
    for post in corpus:
        s = scores.get(post.post_id) if scores else None
        if s is None:
            s = analyzer.score(post.full_text)
        service = (service_of_topic or {}).get(post.topic)
        series.append(
            ExplicitSignal(
                post.created,
                network,
                "sentiment_polarity",
                s.polarity,
                service=service,
                weight=max(1.0, post.popularity),
                user=scrub_author(post.author),
                topic=post.topic,
            )
        )
        if post.speed_test is not None:
            series.append(
                ExplicitSignal(
                    post.created,
                    network,
                    "reported_downlink_mbps",
                    post.speed_test.download_mbps,
                    user=scrub_author(post.author),
                    topic=post.topic,
                )
            )
    return series

"""Cross-signal correlation: do implicit and explicit feedback agree?

The correlator joins two signal series on their daily means and reports
Pearson correlation, optionally scanning a small lag window — explicit
feedback (social posts, ratings) often trails the network event that
implicit actions react to instantly.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.signals import SignalSeries
from repro.core.stats import pearson
from repro.errors import AnalysisError


@dataclass(frozen=True)
class CorrelationFinding:
    """Result of correlating two daily-mean series.

    Attributes:
        metric_a / metric_b: the two metrics involved.
        correlation: Pearson r at the best lag.
        best_lag_days: lag (of b relative to a) maximising |r|; positive
            means b trails a.
        n_days: overlapping days used.
    """

    metric_a: str
    metric_b: str
    correlation: float
    best_lag_days: int
    n_days: int

    @property
    def strength(self) -> str:
        r = abs(self.correlation)
        if r >= 0.7:
            return "strong"
        if r >= 0.4:
            return "moderate"
        if r >= 0.2:
            return "weak"
        return "negligible"


def _joined(
    a_daily: Dict[dt.date, float],
    b_daily: Dict[dt.date, float],
    lag_days: int,
) -> Tuple[np.ndarray, np.ndarray]:
    xs: List[float] = []
    ys: List[float] = []
    lag = dt.timedelta(days=lag_days)
    for day, value in a_daily.items():
        shifted = day + lag
        if shifted in b_daily:
            xs.append(value)
            ys.append(b_daily[shifted])
    return np.asarray(xs), np.asarray(ys)


def correlate_series(
    a: SignalSeries,
    b: SignalSeries,
    metric_a: str,
    metric_b: str,
    max_lag_days: int = 3,
    min_overlap_days: int = 10,
) -> CorrelationFinding:
    """Correlate the daily means of two signal series over a lag window."""
    if max_lag_days < 0:
        raise AnalysisError("max_lag_days must be >= 0")
    a_daily = a.filter(metric=metric_a).daily_mean()
    b_daily = b.filter(metric=metric_b).daily_mean()
    if not a_daily or not b_daily:
        raise AnalysisError(
            f"no data for {metric_a!r} or {metric_b!r}"
        )
    best: Optional[CorrelationFinding] = None
    for lag in range(-max_lag_days, max_lag_days + 1):
        xs, ys = _joined(a_daily, b_daily, lag)
        if len(xs) < min_overlap_days:
            continue
        r = pearson(xs, ys)
        if best is None or abs(r) > abs(best.correlation):
            best = CorrelationFinding(
                metric_a=metric_a,
                metric_b=metric_b,
                correlation=r,
                best_lag_days=lag,
                n_days=len(xs),
            )
    if best is None:
        raise AnalysisError(
            f"fewer than {min_overlap_days} overlapping days between "
            f"{metric_a!r} and {metric_b!r} at every lag"
        )
    return best

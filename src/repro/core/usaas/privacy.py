"""Privacy enforcement: no PII, aggregation floors.

The paper closes with *"Privacy & ethics: We do not use any PII in our
analyses"* and §5 insists insights be *aggregated*.  Two mechanisms:

* :func:`scrub_author` — identifiers are one-way hashed before they ever
  enter a signal series, so joins are possible but re-identification
  from the service's outputs is not;
* :class:`PrivacyGuard` — any aggregate released by the service must
  cover at least ``min_users`` distinct (hashed) users, otherwise the
  operation raises :class:`~repro.errors.PrivacyError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.signals import SignalSeries
from repro.errors import PrivacyError

_SCRUB_PREFIX = "u_"


def scrub_author(identifier: str) -> str:
    """One-way hash of a user identifier (stable within a deployment)."""
    if not identifier:
        raise PrivacyError("cannot scrub an empty identifier")
    digest = hashlib.sha256(identifier.encode("utf-8")).hexdigest()[:12]
    return f"{_SCRUB_PREFIX}{digest}"


def is_scrubbed(identifier: str) -> bool:
    return identifier.startswith(_SCRUB_PREFIX)


@dataclass(frozen=True)
class PrivacyGuard:
    """Aggregation floor enforcement.

    Attributes:
        min_users: smallest distinct-user count an aggregate may cover.
    """

    min_users: int = 10

    def __post_init__(self) -> None:
        if self.min_users < 1:
            raise PrivacyError("min_users must be >= 1")

    def distinct_users(self, series: SignalSeries) -> int:
        return len({s.attr("user") for s in series if s.attr("user")})

    def check(self, series: SignalSeries, context: str = "aggregate") -> None:
        """Raise PrivacyError when the series is too narrow to release."""
        users = self.distinct_users(series)
        if users < self.min_users:
            raise PrivacyError(
                f"{context}: only {users} distinct users "
                f"(floor is {self.min_users})"
            )

    def assert_scrubbed(self, series: SignalSeries) -> None:
        """Raise when any signal carries an unscrubbed user identifier."""
        for signal in series:
            user = signal.attr("user")
            if user and not is_scrubbed(user):
                raise PrivacyError(
                    f"signal at {signal.timestamp} carries raw identifier"
                )

"""The USaaS facade: query in, privacy-safe insights out.

Fig. 8 of the paper: network changes produce implicit and explicit user
signals; USaaS collects both, finds correlations, and shares user-centric
insights back with network and service providers.  :class:`UsaasService`
is that loop:

    service = UsaasService()
    service.register_source("teams", lambda: telemetry_signals(...))
    service.register_source("reddit", lambda: social_signals(...))
    report = service.answer(UsaasQuery(network="starlink", service="teams"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.signals import SignalKind, SignalSeries
from repro.core.usaas.bias import BiasCorrector
from repro.core.usaas.correlator import CorrelationFinding, correlate_series
from repro.core.usaas.insights import Insight, confidence_from
from repro.core.usaas.privacy import PrivacyGuard
from repro.core.usaas.query import UsaasQuery
from repro.core.usaas.registry import SignalSourceRegistry
from repro.core.usaas.summarize import summarize_insights
from repro.errors import (
    AnalysisError,
    DegradedServiceError,
    PrivacyError,
    QueryError,
)
from repro.resilience.clock import Clock
from repro.resilience.executor import ResilienceConfig, SourceExecutor
from repro.resilience.health import SourceHealth

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.integrity.report import IntegritySection
    from repro.serving.deadline import Deadline


@dataclass(frozen=True)
class UsaasReport:
    """Everything returned for one query.

    ``source_health`` is a point-in-time snapshot per registered source;
    ``degraded`` is True when at least one source failed or was served
    stale — the insights then cover only the surviving feeds — **or**
    when the integrity check downgraded confidence (contaminated
    contributions moved the naive aggregate away from its robust twin).
    ``integrity`` carries that check's evidence (None when the answer
    had no explicit signals to score).
    """

    query: UsaasQuery
    insights: Tuple[Insight, ...]
    correlations: Tuple[CorrelationFinding, ...]
    summary: str
    n_implicit: int
    n_explicit: int
    source_health: Tuple[SourceHealth, ...] = ()
    degraded: bool = False
    integrity: Optional["IntegritySection"] = None

    def health_table(self) -> str:
        """Fixed-width per-source health table (CLI / log friendly)."""
        from repro.resilience.health import health_table

        return health_table(iter(self.source_health))

    def integrity_table(self) -> str:
        """Fixed-width trust/integrity table ('' without explicit data)."""
        if self.integrity is None:
            return ""
        return self.integrity.table()


@dataclass(frozen=True)
class GatherResult:
    """Guarded-gather outcome: merged pool + per-source accounting."""

    pool: SignalSeries
    health: Tuple[SourceHealth, ...]
    degraded: bool
    survivors: Tuple[str, ...]
    failed: Tuple[str, ...]
    stale: Tuple[str, ...]


class UsaasService:
    """Registry + privacy + bias + correlation, behind one ``answer()``.

    Ingestion is fault-isolated: each registered source runs behind a
    retry policy and circuit breaker (see :mod:`repro.resilience`), so
    one raising or hanging feed degrades the answer instead of aborting
    it.  ``resilience`` tunes that behaviour; ``clock`` injects time for
    deterministic tests.
    """

    def __init__(
        self,
        privacy: Optional[PrivacyGuard] = None,
        bias: Optional[BiasCorrector] = None,
        resilience: Optional[ResilienceConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self._registry = SignalSourceRegistry()
        self._privacy = privacy or PrivacyGuard()
        self._bias = bias or BiasCorrector()
        self._executor = SourceExecutor(resilience or ResilienceConfig(), clock)

    @property
    def registry(self) -> SignalSourceRegistry:
        return self._registry

    @property
    def executor(self) -> SourceExecutor:
        return self._executor

    def source_health(self) -> Tuple[SourceHealth, ...]:
        """Current per-source health snapshot (accumulated across queries)."""
        return self._executor.ledger.snapshot()

    def register_source(self, name: str, source) -> None:
        self._registry.register(name, source)

    # -- query execution -------------------------------------------------

    def _gather(
        self, query: UsaasQuery, deadline: Optional["Deadline"] = None
    ) -> GatherResult:
        """Pull every source through the guard stack; never raises for a
        failing source — degradation is decided by the caller's config.

        ``deadline`` (the serving layer's per-query budget) is passed
        into every fetch: once it expires, remaining sources fail fast
        instead of burning their full retry schedules, so a late answer
        degrades rather than running arbitrarily long."""
        merged = SignalSeries()
        survivors: List[str] = []
        failed: List[str] = []
        stale: List[str] = []
        for name in self._registry.names():
            outcome = self._executor.fetch(self._registry, name, deadline)
            if outcome.usable:
                survivors.append(name)
                if outcome.stale:
                    stale.append(name)
                merged.extend(outcome.series.filter(
                    network=query.network,
                    start=query.start,
                    end=query.end,
                ))
            else:
                failed.append(name)
        config = self._executor.config
        if failed and config.strict:
            raise DegradedServiceError(
                f"strict mode: source(s) failed: {', '.join(failed)}"
            )
        if len(survivors) < config.min_sources:
            raise DegradedServiceError(
                f"only {len(survivors)} of {len(self._registry)} sources "
                f"survived (min_sources={config.min_sources}); "
                f"failed: {', '.join(failed) or 'none'}"
            )
        return GatherResult(
            pool=merged,
            health=self._executor.ledger.snapshot(),
            degraded=bool(failed or stale),
            survivors=tuple(survivors),
            failed=tuple(failed),
            stale=tuple(stale),
        )

    def answer(
        self,
        query: UsaasQuery,
        deadline: Optional["Deadline"] = None,
    ) -> UsaasReport:
        """Run a query end to end.

        ``deadline`` bounds ingestion time (see
        :class:`repro.serving.Deadline`): expired budgets cut retries
        and backoff short so the answer degrades instead of overrunning.

        Raises:
            QueryError: no sources registered.
            PrivacyError: the matching population is below the floor.
            DegradedServiceError: fewer than ``min_sources`` sources
                survived ingestion (or any failed under ``strict``).
        """
        if query.kind != "insights":
            raise QueryError(
                f"UsaasService.answer handles only insights queries; "
                f"kind={query.kind!r} must be submitted to a UsaasServer "
                f"configured with a prediction engine"
            )
        if len(self._registry) == 0:
            raise QueryError("no signal sources registered")
        gathered = self._gather(query, deadline)
        pool = gathered.pool
        guard = (
            PrivacyGuard(query.min_users)
            if query.min_users is not None
            else self._privacy
        )
        guard.assert_scrubbed(pool)
        guard.check(pool, context=f"query({query.network})")
        pool = self._bias.apply(pool)

        implicit = pool.filter(kind=SignalKind.IMPLICIT, service=query.service)
        explicit = pool.filter(kind=SignalKind.EXPLICIT)

        insights: List[Insight] = []
        correlations: List[CorrelationFinding] = []

        # Level insights for each requested implicit metric.
        for metric in query.implicit_metrics:
            subset = implicit.filter(metric=metric)
            if len(subset) == 0:
                continue
            mean = subset.weighted_mean()
            insights.append(
                Insight(
                    kind="level",
                    statement=(
                        f"{metric} on {query.network}"
                        f"{' for ' + query.service if query.service else ''} "
                        f"averages {mean:.1f} over {len(subset)} sessions"
                    ),
                    confidence=confidence_from(len(subset), 0.5),
                    evidence=(("mean", float(mean)), ("n", float(len(subset)))),
                )
            )
            if query.breakdown:
                insights.extend(
                    self._breakdown_insights(subset, metric, query.breakdown)
                )

        # Cross-signal correlations: every implicit x explicit pair.
        for implicit_metric in query.implicit_metrics:
            for explicit_metric in query.explicit_metrics:
                try:
                    finding = correlate_series(
                        implicit, explicit, implicit_metric, explicit_metric
                    )
                except AnalysisError:
                    continue
                correlations.append(finding)
                if finding.strength == "negligible":
                    continue
                direction = "tracks" if finding.correlation > 0 else "moves against"
                lag_note = (
                    f" (explicit feedback trails by {finding.best_lag_days}d)"
                    if finding.best_lag_days > 0 else ""
                )
                insights.append(
                    Insight(
                        kind="correlation",
                        statement=(
                            f"{explicit_metric} {direction} {implicit_metric} "
                            f"(r={finding.correlation:+.2f}, "
                            f"{finding.n_days} days){lag_note}"
                        ),
                        confidence=confidence_from(
                            finding.n_days, finding.correlation
                        ),
                        evidence=(
                            ("r", finding.correlation),
                            ("lag_days", float(finding.best_lag_days)),
                            ("n_days", float(finding.n_days)),
                        ),
                    )
                )

        # Anomaly insight: worst explicit-sentiment day.
        sentiment = explicit.filter(metric="sentiment_polarity")
        if len(sentiment) > 0:
            daily = sentiment.daily_mean()
            if daily:
                worst_day = min(daily, key=lambda d: daily[d])
                if daily[worst_day] < -0.2:
                    insights.append(
                        Insight(
                            kind="anomaly",
                            statement=(
                                f"explicit sentiment bottomed out on "
                                f"{worst_day.isoformat()} "
                                f"(mean polarity {daily[worst_day]:+.2f})"
                            ),
                            confidence=confidence_from(
                                len(sentiment), daily[worst_day]
                            ),
                            evidence=(("polarity", daily[worst_day]),),
                        )
                    )

        integrity = self._integrity_section(explicit)
        integrity_downgraded = integrity is not None and integrity.downgraded

        summary = summarize_insights(insights, query.network)
        if gathered.degraded:
            notes = []
            if gathered.failed:
                notes.append(f"failed: {', '.join(gathered.failed)}")
            if gathered.stale:
                notes.append(f"stale: {', '.join(gathered.stale)}")
            summary += (
                f"\n[degraded] {len(gathered.survivors)}/"
                f"{len(self._registry)} sources served this answer "
                f"({'; '.join(notes)})"
            )
        if integrity_downgraded:
            summary += (
                f"\n[degraded] integrity: "
                f"{integrity.n_flagged}/{integrity.n_units} contributors "
                f"flagged (est. contamination "
                f"{integrity.contamination_estimate:.1%}); naive "
                f"{integrity.naive_value:.3f} vs robust "
                f"{integrity.robust_value:.3f} — trust the robust figure"
            )
        return UsaasReport(
            query=query,
            insights=tuple(insights),
            correlations=tuple(correlations),
            summary=summary,
            n_implicit=len(implicit),
            n_explicit=len(explicit),
            source_health=gathered.health,
            degraded=gathered.degraded or integrity_downgraded,
            integrity=integrity,
        )

    def _integrity_section(
        self, explicit: SignalSeries
    ) -> Optional["IntegritySection"]:
        """Trust-score explicit contributors; None without explicit data.

        Scores every ``user``-attributed explicit signal
        (:func:`repro.integrity.trust.score_signal_units`), then compares
        the naive mean of the primary explicit aggregate (ratings when
        present, else sentiment polarity) against its trust-weighted
        trimmed mean.  A divergence or contamination estimate above the
        documented thresholds downgrades the answer's confidence.
        """
        from repro.core.stats import trimmed_mean
        from repro.integrity.report import build_section
        from repro.integrity.trust import (
            contamination_estimate,
            score_signal_units,
        )

        scores = score_signal_units(explicit)
        if not scores:
            return None
        subset = explicit.filter(metric="rating")
        statistic_target = "rating"
        if len(subset) == 0:
            subset = explicit.filter(metric="sentiment_polarity")
            statistic_target = "sentiment_polarity"
        if len(subset) == 0:
            return None
        values: List[float] = []
        kept: List[float] = []
        for signal in subset:
            unit = signal.attr("user")
            trust = scores[unit].trust if unit in scores else 1.0
            values.append(signal.value)
            if trust > 0:
                kept.append(signal.value)
        if not kept:
            return None
        flags = sorted({
            flag for score in scores.values() for flag in score.flags
        })
        return build_section(
            n_units=len(scores),
            n_flagged=sum(1 for s in scores.values() if s.trust < 1.0),
            contamination=contamination_estimate(scores),
            naive_value=float(np.mean(values)),
            robust_value=float(trimmed_mean(np.array(kept, dtype=float))),
            statistic=f"trimmed_mean[{statistic_target}]",
            flags=tuple(flags),
        )

    def _breakdown_insights(
        self,
        subset: SignalSeries,
        metric: str,
        attribute: str,
        min_group_size: int = 20,
    ) -> List[Insight]:
        """Per-attribute-value level insights (with a size floor)."""
        groups: Dict[str, List[float]] = {}
        for signal in subset:
            value = signal.attr(attribute)
            if value is not None:
                groups.setdefault(value, []).append(signal.value)
        insights: List[Insight] = []
        for name, values in sorted(groups.items()):
            if len(values) < min_group_size:
                continue
            mean = float(np.mean(values))
            insights.append(
                Insight(
                    kind="level",
                    statement=(
                        f"{metric} for {attribute}={name} averages "
                        f"{mean:.1f} over {len(values)} sessions"
                    ),
                    confidence=confidence_from(len(values), 0.4),
                    evidence=(("mean", mean), ("n", float(len(values)))),
                )
            )
        return insights

    def compare(
        self,
        network_a: str,
        network_b: str,
        service: Optional[str] = None,
        metrics: Tuple[str, ...] = ("presence", "cam_on", "mic_on"),
    ) -> "ComparisonReport":
        """The paper's worked comparison, generalised: network A vs B.

        For each implicit metric, reports both means and a standardised
        effect size (Cohen's d); positive deltas mean network A is higher.
        """
        if network_a == network_b:
            raise QueryError("compare needs two distinct networks")
        rows: List[MetricComparison] = []
        pools = {}
        for network in (network_a, network_b):
            query = UsaasQuery(network=network, service=service,
                               implicit_metrics=metrics)
            pool = self._gather(query).pool
            self._privacy.assert_scrubbed(pool)
            self._privacy.check(pool, context=f"compare({network})")
            pools[network] = self._bias.apply(pool).filter(
                kind=SignalKind.IMPLICIT, service=service
            )
        for metric in metrics:
            values_a = pools[network_a].filter(metric=metric).values()
            values_b = pools[network_b].filter(metric=metric).values()
            if len(values_a) < 2 or len(values_b) < 2:
                continue
            mean_a, mean_b = float(np.mean(values_a)), float(np.mean(values_b))
            pooled_sd = float(np.sqrt(
                (np.var(values_a, ddof=1) + np.var(values_b, ddof=1)) / 2
            ))
            effect = (mean_a - mean_b) / pooled_sd if pooled_sd > 0 else 0.0
            rows.append(MetricComparison(
                metric=metric, mean_a=mean_a, mean_b=mean_b,
                n_a=len(values_a), n_b=len(values_b),
                effect_size=float(effect),
            ))
        if not rows:
            raise AnalysisError("no metric had enough data on both networks")
        return ComparisonReport(
            network_a=network_a, network_b=network_b, metrics=tuple(rows)
        )


@dataclass(frozen=True)
class MetricComparison:
    """One metric's A-vs-B comparison (positive effect = A higher)."""

    metric: str
    mean_a: float
    mean_b: float
    n_a: int
    n_b: int
    effect_size: float

    @property
    def magnitude(self) -> str:
        d = abs(self.effect_size)
        if d >= 0.8:
            return "large"
        if d >= 0.5:
            return "medium"
        if d >= 0.2:
            return "small"
        return "negligible"


@dataclass(frozen=True)
class ComparisonReport:
    """Full A-vs-B comparison across metrics."""

    network_a: str
    network_b: str
    metrics: Tuple[MetricComparison, ...]

    def worst_gap(self) -> MetricComparison:
        """The metric where A trails B the most (most negative effect)."""
        return min(self.metrics, key=lambda m: m.effect_size)

    def summary(self) -> str:
        lines = [f"{self.network_a} vs {self.network_b}:"]
        for m in self.metrics:
            direction = "ahead" if m.effect_size > 0 else "behind"
            lines.append(
                f"  {m.metric}: {m.mean_a:.1f} vs {m.mean_b:.1f} "
                f"({self.network_a} {direction}, d={m.effect_size:+.2f}, "
                f"{m.magnitude})"
            )
        return "\n".join(lines)



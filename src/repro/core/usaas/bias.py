"""Social-media bias correction (§6 "The social network bias").

Social feedback over-represents three things: loud users (many posts),
viral threads (huge popularity weights), and extreme feelings (delighted
or furious users post; the satisfied middle doesn't).  USaaS can't fix
the last one without ground truth, but it can stop the first two from
multiplying it:

* **author de-duplication** — at most ``per_author_daily_cap`` signals
  per (hashed) author per day count;
* **weight winsorisation** — popularity weights are capped at the
  ``weight_cap_quantile`` of the weight distribution, so one viral
  thread can't dominate a month.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.signals import Signal, SignalSeries
from repro.errors import ConfigError


@dataclass(frozen=True)
class BiasCorrector:
    """Debiasing parameters.

    Attributes:
        per_author_daily_cap: max signals per author per day (0 = off).
        weight_cap_quantile: winsorisation quantile for weights in
            (0, 1]; 1.0 disables capping.
    """

    per_author_daily_cap: int = 3
    weight_cap_quantile: float = 0.95

    def __post_init__(self) -> None:
        if self.per_author_daily_cap < 0:
            raise ConfigError("per_author_daily_cap must be >= 0")
        if not 0 < self.weight_cap_quantile <= 1:
            raise ConfigError("weight_cap_quantile must be in (0, 1]")

    def apply(self, series: SignalSeries) -> SignalSeries:
        """Return the debiased series (original untouched)."""
        signals: List[Signal] = list(series)
        if not signals:
            return SignalSeries()

        if self.per_author_daily_cap > 0:
            seen: Dict[Tuple[str, object], int] = {}
            kept: List[Signal] = []
            for signal in signals:
                author = signal.attr("user") or "?"
                key = (author, signal.date)
                seen[key] = seen.get(key, 0) + 1
                if seen[key] <= self.per_author_daily_cap:
                    kept.append(signal)
            signals = kept

        if self.weight_cap_quantile < 1 and signals:
            weights = np.array([s.weight for s in signals])
            cap = float(np.quantile(weights, self.weight_cap_quantile))
            cap = max(cap, 1.0)
            signals = [
                Signal(
                    kind=s.kind,
                    timestamp=s.timestamp,
                    network=s.network,
                    metric=s.metric,
                    value=s.value,
                    service=s.service,
                    weight=min(s.weight, cap),
                    attrs=s.attrs,
                )
                for s in signals
            ]
        return SignalSeries(signals)

"""The USaaS query surface.

§5: *"The queries could take as input the network/service under
consideration, network performance metrics and possible user actions of
interest, application QoE metrics, etc."*
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import QueryError

#: Supported query kinds: ``insights`` is §5's level/correlation/anomaly
#: answer (served by :meth:`UsaasService.answer`); ``predict_mos`` asks
#: for per-session MOS predictions and is served by a
#: :class:`~repro.serving.server.UsaasServer` carrying a prediction
#: engine (optionally micro-batched).
QUERY_KINDS: Tuple[str, ...] = ("insights", "predict_mos")


@dataclass(frozen=True)
class UsaasQuery:
    """One stakeholder question.

    Attributes:
        network: the access network of interest (e.g. ``"starlink"``).
        service: the networked service, or None for network-wide signals.
        implicit_metrics: user-action metrics to pull (e.g. ``presence``).
        explicit_metrics: volunteered-feedback metrics (e.g.
            ``sentiment_polarity``, ``rating``).
        start / end: time range; None means unbounded.
        min_users: privacy floor override (None uses the service default).
        breakdown: optional signal attribute (e.g. ``"platform"``,
            ``"country"``) to split level insights by — §5's "deep
            insights" knob.
        kind: which query family this is (:data:`QUERY_KINDS`).
        rows: for ``predict_mos`` only — session row indices into the
            serving engine's columnar block (None = every session).
    """

    network: str
    service: Optional[str] = None
    implicit_metrics: Tuple[str, ...] = ("presence", "cam_on", "mic_on")
    explicit_metrics: Tuple[str, ...] = ("sentiment_polarity",)
    start: Optional[dt.datetime] = None
    end: Optional[dt.datetime] = None
    min_users: Optional[int] = None
    breakdown: Optional[str] = None
    kind: str = "insights"
    rows: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.network:
            raise QueryError("query requires a network")
        if self.kind not in QUERY_KINDS:
            raise QueryError(
                f"unknown query kind {self.kind!r}; "
                f"expected one of {QUERY_KINDS}"
            )
        if self.rows is not None:
            if self.kind != "predict_mos":
                raise QueryError(
                    "rows apply only to predict_mos queries"
                )
            rows = tuple(int(r) for r in self.rows)
            if not rows:
                raise QueryError(
                    "predict_mos rows must be non-empty (None = all)"
                )
            if any(r < 0 for r in rows):
                raise QueryError("predict_mos rows must be non-negative")
            object.__setattr__(self, "rows", rows)
        if not self.implicit_metrics and not self.explicit_metrics:
            raise QueryError("query must request at least one metric")
        if self.start is not None and self.end is not None:
            start_aware = self.start.tzinfo is not None
            end_aware = self.end.tzinfo is not None
            if start_aware != end_aware:
                raise QueryError(
                    "query start/end mix a tz-aware and a tz-naive "
                    "datetime; make both aware (attach tzinfo) or both "
                    "naive"
                )
            if self.end < self.start:
                raise QueryError("query end precedes start")
        if self.min_users is not None and self.min_users < 1:
            raise QueryError("min_users must be >= 1")

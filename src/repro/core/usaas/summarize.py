"""Deterministic insight summarisation.

§5 suggests incorporating generative AI to summarise contextual user
feedback; offline this is a careful template renderer over the structured
insights — the pipeline position is identical, the prose is just less
florid.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.usaas.insights import Insight
from repro.errors import AnalysisError

_CONFIDENCE_WORD = (
    (0.8, "high-confidence"),
    (0.55, "moderate-confidence"),
    (0.0, "preliminary"),
)


def _confidence_word(confidence: float) -> str:
    for floor, word in _CONFIDENCE_WORD:
        if confidence >= floor:
            return word
    raise AnalysisError(f"bad confidence {confidence}")


def summarize_insights(
    insights: Sequence[Insight],
    network: str,
    max_items: int = 5,
) -> str:
    """Render a ranked plain-text digest of the findings."""
    if max_items < 1:
        raise AnalysisError("max_items must be >= 1")
    if not insights:
        return (
            f"USaaS digest for {network}: no findings met the reporting "
            f"thresholds in the queried window."
        )
    ranked = sorted(insights, key=lambda i: -i.confidence)[:max_items]
    lines: List[str] = [f"USaaS digest for {network}:"]
    for rank, insight in enumerate(ranked, start=1):
        lines.append(
            f"  {rank}. [{_confidence_word(insight.confidence)}] "
            f"{insight.statement}"
        )
    remaining = len(insights) - len(ranked)
    if remaining > 0:
        lines.append(f"  (+{remaining} lower-confidence findings withheld)")
    return "\n".join(lines)

"""Insight objects: what USaaS hands back to stakeholders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Insight:
    """One aggregated, privacy-safe finding.

    Attributes:
        kind: machine-readable category (``correlation``, ``level``,
            ``anomaly``).
        statement: human-readable finding.
        confidence: 0–1 confidence, driven by sample size and effect
            strength.
        evidence: numeric backing (correlation values, counts, means).
    """

    kind: str
    statement: str
    confidence: float
    evidence: Tuple[Tuple[str, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in ("correlation", "level", "anomaly"):
            raise AnalysisError(f"unknown insight kind {self.kind!r}")
        if not 0 <= self.confidence <= 1:
            raise AnalysisError("confidence must be in [0, 1]")
        if not self.statement:
            raise AnalysisError("insight needs a statement")

    def evidence_dict(self) -> Dict[str, float]:
        return dict(self.evidence)


def confidence_from(n_samples: int, effect: float, n_ref: int = 200) -> float:
    """A simple, monotone confidence heuristic.

    Grows with sample size (saturating around ``n_ref``) and with effect
    magnitude; bounded away from certainty because USaaS is observational.
    """
    if n_samples < 0:
        raise AnalysisError("n_samples must be >= 0")
    size_term = n_samples / (n_samples + n_ref)
    effect_term = min(1.0, abs(effect))
    return round(min(0.95, 0.2 + 0.5 * size_term + 0.3 * effect_term), 3)

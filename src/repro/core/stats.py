"""Statistical primitives shared by the engagement and social pipelines.

These are deliberately small, dependency-light implementations (numpy only)
of the operations the paper performs: binning sessions by a network metric
and reporting a per-bin statistic (Fig. 1–4), rank and linear correlation
(Fig. 4, §5), and bootstrap confidence intervals used by our benchmark
harness to decide whether an observed shape is stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class BinnedCurve:
    """A per-bin summary of ``values`` grouped by ``key``.

    Attributes:
        edges: bin edges, length ``n_bins + 1``.
        centers: bin mid-points, length ``n_bins``.
        stat: the per-bin statistic (NaN for empty bins).
        counts: number of samples per bin.
    """

    edges: np.ndarray
    centers: np.ndarray
    stat: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.centers) + 1:
            raise AnalysisError("edges must have exactly one more entry than centers")
        if len(self.centers) != len(self.stat) or len(self.stat) != len(self.counts):
            raise AnalysisError("centers, stat and counts must have equal length")

    @property
    def n_bins(self) -> int:
        return len(self.centers)

    def nonempty(self) -> "BinnedCurve":
        """Return a copy restricted to bins that actually contain samples."""
        mask = self.counts > 0
        if mask.all():
            return self
        # Edges cannot be sliced consistently for arbitrary masks; keep
        # per-bin geometry by rebuilding degenerate edges around centers.
        centers = self.centers[mask]
        widths = np.diff(self.edges)[mask]
        edges = np.concatenate([centers - widths / 2, [centers[-1] + widths[-1] / 2]]) \
            if len(centers) else np.array([0.0])
        return BinnedCurve(
            edges=edges,
            centers=centers,
            stat=self.stat[mask],
            counts=self.counts[mask],
        )

    def as_rows(self) -> list:
        """Rows of ``(center, stat, count)`` — handy for table printing."""
        return [
            (float(c), float(s), int(n))
            for c, s, n in zip(self.centers, self.stat, self.counts)
        ]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a bootstrap percentile confidence interval."""

    estimate: float
    low: float
    high: float
    n_resamples: int
    confidence: float = field(default=0.95)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def _as_1d(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise AnalysisError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def trimmed_mean(values: Sequence[float], trim: float = 0.1) -> float:
    """Mean after discarding the ``trim`` fraction from *each* tail.

    The classic robust location estimate: sort, drop ``floor(trim * n)``
    samples from both ends, average the rest.  Breakdown point =
    ``trim`` — any contamination fraction strictly below ``trim`` can
    move the estimate only by a bounded amount, because every
    contaminated sample lands in a discarded tail (adversaries gain
    nothing by hiding in the middle: displacing a clean sample into the
    kept set moves the mean by at most one in-range value).
    """
    if not 0.0 <= trim < 0.5:
        raise AnalysisError(f"trim must be in [0, 0.5), got {trim}")
    arr = _as_1d(values, "values")
    if len(arr) == 0:
        raise AnalysisError("cannot take a trimmed mean of an empty sequence")
    g = int(trim * len(arr))
    if 2 * g >= len(arr):
        g = (len(arr) - 1) // 2
    ordered = np.sort(arr, kind="stable")
    return float(np.mean(ordered[g:len(arr) - g]))


def winsorized_mean(values: Sequence[float], trim: float = 0.1) -> float:
    """Mean after clamping each tail to its ``trim``-quantile neighbour.

    Like :func:`trimmed_mean` but the ``floor(trim * n)`` most extreme
    samples per side are *replaced* by the nearest kept order statistic
    instead of dropped, so the sample size (and hence the variance
    behaviour) is preserved.  Breakdown point = ``trim``, same argument
    as the trimmed mean: outliers beyond the clamp rank cannot move the
    clamp values themselves.
    """
    if not 0.0 <= trim < 0.5:
        raise AnalysisError(f"trim must be in [0, 0.5), got {trim}")
    arr = _as_1d(values, "values")
    if len(arr) == 0:
        raise AnalysisError(
            "cannot take a winsorized mean of an empty sequence"
        )
    g = int(trim * len(arr))
    if 2 * g >= len(arr):
        g = (len(arr) - 1) // 2
    ordered = np.sort(arr, kind="stable")
    if g > 0:
        ordered[:g] = ordered[g]
        ordered[len(arr) - g:] = ordered[len(arr) - g - 1]
    return float(np.mean(ordered))


def median_of_means(values: Sequence[float], n_blocks: int = 5) -> float:
    """Median of the means of ``n_blocks`` contiguous blocks.

    The samples are split (in their given order, deterministically) into
    ``n_blocks`` near-equal contiguous blocks; each block is averaged
    and the median of the block means is returned.  Breakdown point:
    the estimate survives as long as fewer than ``ceil(n_blocks / 2)``
    blocks are contaminated — under adversarial placement one bad
    sample can poison one block, so the worst-case tolerated fraction
    is ``(ceil(n_blocks / 2) - 1) / n`` of the samples; under random
    ε-contamination most blocks stay majority-clean for small ε, which
    is the regime the integrity soak exercises.
    """
    if n_blocks < 1:
        raise AnalysisError(f"n_blocks must be >= 1, got {n_blocks}")
    arr = _as_1d(values, "values")
    if len(arr) == 0:
        raise AnalysisError(
            "cannot take a median-of-means of an empty sequence"
        )
    k = min(n_blocks, len(arr))
    block_means = [float(np.mean(block)) for block in np.array_split(arr, k)]
    return float(np.median(block_means))


def _trimmed_mean_default(a) -> float:
    return trimmed_mean(a)


def _winsorized_mean_default(a) -> float:
    return winsorized_mean(a)


def _median_of_means_default(a) -> float:
    return median_of_means(a)


_REDUCERS: dict = {
    "mean": np.mean,
    "median": np.median,
    "p95": lambda a: np.percentile(a, 95),
    "count": len,
    # Robust location estimates (repro.integrity): registered here so
    # every consumer of BinGrouping.reduce / bin_statistic — record and
    # columnar curve paths alike — accepts them by name, with the same
    # bit-identical member ordering as the naive reducers.
    "trimmed_mean": _trimmed_mean_default,
    "winsorized_mean": _winsorized_mean_default,
    "median_of_means": _median_of_means_default,
}


def resolve_statistic(name: str) -> Callable:
    """The reducer behind a statistic name (shared with BinGrouping).

    Lets :mod:`repro.integrity` apply the exact same callable to a flat
    value column that the curve paths apply per bin, so a robust MOS or
    polarity aggregate matches its binned counterpart bit for bit.
    """
    if name not in _REDUCERS:
        raise AnalysisError(f"unknown statistic {name!r}")
    return _REDUCERS[name]


@dataclass(frozen=True)
class BinGrouping:
    """The key-side half of :func:`bin_statistic`, reusable across values.

    Binning the key (searchsorted + stable sort by bin) is the expensive
    part of a curve; the grouping captures it once so many value columns
    can be reduced against the same key — the engine under
    :func:`repro.engagement.curve_matrix`.

    ``order`` is a stable sort of the in-range sample indices by bin, so
    each bin's slice visits members in original sample order — exactly
    the sequence the naive per-bin mask produced, which keeps reductions
    bit-identical to the record path.
    """

    edges: np.ndarray
    centers: np.ndarray
    order: np.ndarray
    counts: np.ndarray
    _starts: np.ndarray
    n_keys: int

    @property
    def n_bins(self) -> int:
        return len(self.centers)

    def reduce(self, values: Sequence[float], statistic: str = "mean") -> BinnedCurve:
        """Summarise one value column against the captured grouping."""
        val_arr = _as_1d(values, "values")
        if self.n_keys != len(val_arr):
            raise AnalysisError(
                f"key and values must align: {self.n_keys} != {len(val_arr)}"
            )
        if statistic not in _REDUCERS:
            raise AnalysisError(f"unknown statistic {statistic!r}")
        reducer: Callable = _REDUCERS[statistic]

        stat = np.full(self.n_bins, np.nan)
        sorted_vals = val_arr[self.order]
        for b in range(self.n_bins):
            start = self._starts[b]
            members = sorted_vals[start : start + self.counts[b]]
            if len(members):
                stat[b] = float(reducer(members))
        return BinnedCurve(
            edges=self.edges,
            centers=self.centers,
            stat=stat,
            counts=self.counts.copy(),
        )


def bin_grouping(key: Sequence[float], edges: Sequence[float]) -> BinGrouping:
    """Bin ``key`` by ``edges`` once, for reuse across value columns.

    Samples with a key outside ``[edges[0], edges[-1]]`` are dropped, which
    matches the paper's practice of restricting each panel to a fixed range.
    """
    key_arr = _as_1d(key, "key")
    edge_arr = np.asarray(edges, dtype=float)
    if edge_arr.ndim != 1 or len(edge_arr) < 2:
        raise AnalysisError("edges must contain at least two values")
    if not np.all(np.diff(edge_arr) > 0):
        raise AnalysisError("edges must be strictly increasing")

    n_bins = len(edge_arr) - 1
    idx = np.searchsorted(edge_arr, key_arr, side="right") - 1
    # Fold the right edge into the final bin so edges[-1] is inclusive.
    idx[key_arr == edge_arr[-1]] = n_bins - 1
    in_range = (idx >= 0) & (idx < n_bins)

    sel = np.flatnonzero(in_range)
    order = sel[np.argsort(idx[sel], kind="stable")]
    counts = np.bincount(idx[sel], minlength=n_bins).astype(int)
    starts = np.concatenate([[0], np.cumsum(counts[:-1])])
    centers = (edge_arr[:-1] + edge_arr[1:]) / 2
    return BinGrouping(
        edges=edge_arr,
        centers=centers,
        order=order,
        counts=counts,
        _starts=starts,
        n_keys=len(key_arr),
    )


def bin_statistic(
    key: Sequence[float],
    values: Sequence[float],
    edges: Sequence[float],
    statistic: str = "mean",
) -> BinnedCurve:
    """Group ``values`` by which bin of ``edges`` their ``key`` falls in.

    This is the workhorse behind every Fig. 1-style plot: ``key`` is a
    per-session network metric, ``values`` is a per-session engagement
    metric, and the result is the engagement curve over the metric.

    Args:
        key: per-sample bin key (e.g. mean session latency, ms).
        values: per-sample value to summarise (e.g. Presence, %).
        edges: monotonically increasing bin edges.
        statistic: ``"mean"``, ``"median"``, ``"p95"``, or ``"count"``.

    Numpy float arrays pass through without copying; Python lists are
    converted once.  Samples with a key outside ``[edges[0], edges[-1]]``
    are dropped, which matches the paper's practice of restricting each
    panel to a fixed range.
    """
    key_arr = _as_1d(key, "key")
    val_arr = _as_1d(values, "values")
    if len(key_arr) != len(val_arr):
        raise AnalysisError(
            f"key and values must align: {len(key_arr)} != {len(val_arr)}"
        )
    return bin_grouping(key_arr, edges).reduce(val_arr, statistic)


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson linear correlation coefficient.

    Returns 0.0 when either input is constant (correlation undefined),
    which keeps downstream ranking logic total.
    """
    x_arr = _as_1d(x, "x")
    y_arr = _as_1d(y, "y")
    if len(x_arr) != len(y_arr):
        raise AnalysisError("x and y must have equal length")
    if len(x_arr) < 2:
        raise AnalysisError("correlation needs at least two samples")
    if np.std(x_arr) == 0 or np.std(y_arr) == 0:
        return 0.0
    return float(np.corrcoef(x_arr, y_arr)[0, 1])


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share their mean rank), 1-based."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        mean_rank = (i + j) / 2 + 1
        ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over average ranks)."""
    x_arr = _as_1d(x, "x")
    y_arr = _as_1d(y, "y")
    if len(x_arr) != len(y_arr):
        raise AnalysisError("x and y must have equal length")
    if len(x_arr) < 2:
        raise AnalysisError("correlation needs at least two samples")
    return pearson(_ranks(x_arr), _ranks(y_arr))


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile with validation; q in [0, 100]."""
    if not 0 <= q <= 100:
        raise AnalysisError(f"percentile q must be in [0, 100], got {q}")
    arr = _as_1d(values, "values")
    if len(arr) == 0:
        raise AnalysisError("cannot take a percentile of an empty sequence")
    return float(np.percentile(arr, q))


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapResult:
    """Percentile-bootstrap confidence interval for ``statistic(values)``.

    Used by the Fig. 7 stability analysis (the paper checks that monthly
    median downlink speeds barely move when 5–10 % of the data is dropped).
    """
    arr = _as_1d(values, "values")
    if len(arr) == 0:
        raise AnalysisError("cannot bootstrap an empty sequence")
    if not 0 < confidence < 1:
        raise AnalysisError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise AnalysisError("n_resamples must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    estimate = float(statistic(arr))
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = arr[rng.integers(0, len(arr), size=len(arr))]
        resampled[i] = statistic(sample)
    alpha = (1 - confidence) / 2
    return BootstrapResult(
        estimate=estimate,
        low=float(np.percentile(resampled, 100 * alpha)),
        high=float(np.percentile(resampled, 100 * (1 - alpha))),
        n_resamples=n_resamples,
        confidence=confidence,
    )

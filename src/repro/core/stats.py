"""Statistical primitives shared by the engagement and social pipelines.

These are deliberately small, dependency-light implementations (numpy only)
of the operations the paper performs: binning sessions by a network metric
and reporting a per-bin statistic (Fig. 1–4), rank and linear correlation
(Fig. 4, §5), and bootstrap confidence intervals used by our benchmark
harness to decide whether an observed shape is stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class BinnedCurve:
    """A per-bin summary of ``values`` grouped by ``key``.

    Attributes:
        edges: bin edges, length ``n_bins + 1``.
        centers: bin mid-points, length ``n_bins``.
        stat: the per-bin statistic (NaN for empty bins).
        counts: number of samples per bin.
    """

    edges: np.ndarray
    centers: np.ndarray
    stat: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.centers) + 1:
            raise AnalysisError("edges must have exactly one more entry than centers")
        if len(self.centers) != len(self.stat) or len(self.stat) != len(self.counts):
            raise AnalysisError("centers, stat and counts must have equal length")

    @property
    def n_bins(self) -> int:
        return len(self.centers)

    def nonempty(self) -> "BinnedCurve":
        """Return a copy restricted to bins that actually contain samples."""
        mask = self.counts > 0
        if mask.all():
            return self
        # Edges cannot be sliced consistently for arbitrary masks; keep
        # per-bin geometry by rebuilding degenerate edges around centers.
        centers = self.centers[mask]
        widths = np.diff(self.edges)[mask]
        edges = np.concatenate([centers - widths / 2, [centers[-1] + widths[-1] / 2]]) \
            if len(centers) else np.array([0.0])
        return BinnedCurve(
            edges=edges,
            centers=centers,
            stat=self.stat[mask],
            counts=self.counts[mask],
        )

    def as_rows(self) -> list:
        """Rows of ``(center, stat, count)`` — handy for table printing."""
        return [
            (float(c), float(s), int(n))
            for c, s, n in zip(self.centers, self.stat, self.counts)
        ]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a bootstrap percentile confidence interval."""

    estimate: float
    low: float
    high: float
    n_resamples: int
    confidence: float = field(default=0.95)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def _as_1d(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise AnalysisError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


_REDUCERS: dict = {
    "mean": np.mean,
    "median": np.median,
    "p95": lambda a: np.percentile(a, 95),
    "count": len,
}


@dataclass(frozen=True)
class BinGrouping:
    """The key-side half of :func:`bin_statistic`, reusable across values.

    Binning the key (searchsorted + stable sort by bin) is the expensive
    part of a curve; the grouping captures it once so many value columns
    can be reduced against the same key — the engine under
    :func:`repro.engagement.curve_matrix`.

    ``order`` is a stable sort of the in-range sample indices by bin, so
    each bin's slice visits members in original sample order — exactly
    the sequence the naive per-bin mask produced, which keeps reductions
    bit-identical to the record path.
    """

    edges: np.ndarray
    centers: np.ndarray
    order: np.ndarray
    counts: np.ndarray
    _starts: np.ndarray
    n_keys: int

    @property
    def n_bins(self) -> int:
        return len(self.centers)

    def reduce(self, values: Sequence[float], statistic: str = "mean") -> BinnedCurve:
        """Summarise one value column against the captured grouping."""
        val_arr = _as_1d(values, "values")
        if self.n_keys != len(val_arr):
            raise AnalysisError(
                f"key and values must align: {self.n_keys} != {len(val_arr)}"
            )
        if statistic not in _REDUCERS:
            raise AnalysisError(f"unknown statistic {statistic!r}")
        reducer: Callable = _REDUCERS[statistic]

        stat = np.full(self.n_bins, np.nan)
        sorted_vals = val_arr[self.order]
        for b in range(self.n_bins):
            start = self._starts[b]
            members = sorted_vals[start : start + self.counts[b]]
            if len(members):
                stat[b] = float(reducer(members))
        return BinnedCurve(
            edges=self.edges,
            centers=self.centers,
            stat=stat,
            counts=self.counts.copy(),
        )


def bin_grouping(key: Sequence[float], edges: Sequence[float]) -> BinGrouping:
    """Bin ``key`` by ``edges`` once, for reuse across value columns.

    Samples with a key outside ``[edges[0], edges[-1]]`` are dropped, which
    matches the paper's practice of restricting each panel to a fixed range.
    """
    key_arr = _as_1d(key, "key")
    edge_arr = np.asarray(edges, dtype=float)
    if edge_arr.ndim != 1 or len(edge_arr) < 2:
        raise AnalysisError("edges must contain at least two values")
    if not np.all(np.diff(edge_arr) > 0):
        raise AnalysisError("edges must be strictly increasing")

    n_bins = len(edge_arr) - 1
    idx = np.searchsorted(edge_arr, key_arr, side="right") - 1
    # Fold the right edge into the final bin so edges[-1] is inclusive.
    idx[key_arr == edge_arr[-1]] = n_bins - 1
    in_range = (idx >= 0) & (idx < n_bins)

    sel = np.flatnonzero(in_range)
    order = sel[np.argsort(idx[sel], kind="stable")]
    counts = np.bincount(idx[sel], minlength=n_bins).astype(int)
    starts = np.concatenate([[0], np.cumsum(counts[:-1])])
    centers = (edge_arr[:-1] + edge_arr[1:]) / 2
    return BinGrouping(
        edges=edge_arr,
        centers=centers,
        order=order,
        counts=counts,
        _starts=starts,
        n_keys=len(key_arr),
    )


def bin_statistic(
    key: Sequence[float],
    values: Sequence[float],
    edges: Sequence[float],
    statistic: str = "mean",
) -> BinnedCurve:
    """Group ``values`` by which bin of ``edges`` their ``key`` falls in.

    This is the workhorse behind every Fig. 1-style plot: ``key`` is a
    per-session network metric, ``values`` is a per-session engagement
    metric, and the result is the engagement curve over the metric.

    Args:
        key: per-sample bin key (e.g. mean session latency, ms).
        values: per-sample value to summarise (e.g. Presence, %).
        edges: monotonically increasing bin edges.
        statistic: ``"mean"``, ``"median"``, ``"p95"``, or ``"count"``.

    Numpy float arrays pass through without copying; Python lists are
    converted once.  Samples with a key outside ``[edges[0], edges[-1]]``
    are dropped, which matches the paper's practice of restricting each
    panel to a fixed range.
    """
    key_arr = _as_1d(key, "key")
    val_arr = _as_1d(values, "values")
    if len(key_arr) != len(val_arr):
        raise AnalysisError(
            f"key and values must align: {len(key_arr)} != {len(val_arr)}"
        )
    return bin_grouping(key_arr, edges).reduce(val_arr, statistic)


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson linear correlation coefficient.

    Returns 0.0 when either input is constant (correlation undefined),
    which keeps downstream ranking logic total.
    """
    x_arr = _as_1d(x, "x")
    y_arr = _as_1d(y, "y")
    if len(x_arr) != len(y_arr):
        raise AnalysisError("x and y must have equal length")
    if len(x_arr) < 2:
        raise AnalysisError("correlation needs at least two samples")
    if np.std(x_arr) == 0 or np.std(y_arr) == 0:
        return 0.0
    return float(np.corrcoef(x_arr, y_arr)[0, 1])


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share their mean rank), 1-based."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        mean_rank = (i + j) / 2 + 1
        ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over average ranks)."""
    x_arr = _as_1d(x, "x")
    y_arr = _as_1d(y, "y")
    if len(x_arr) != len(y_arr):
        raise AnalysisError("x and y must have equal length")
    if len(x_arr) < 2:
        raise AnalysisError("correlation needs at least two samples")
    return pearson(_ranks(x_arr), _ranks(y_arr))


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile with validation; q in [0, 100]."""
    if not 0 <= q <= 100:
        raise AnalysisError(f"percentile q must be in [0, 100], got {q}")
    arr = _as_1d(values, "values")
    if len(arr) == 0:
        raise AnalysisError("cannot take a percentile of an empty sequence")
    return float(np.percentile(arr, q))


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapResult:
    """Percentile-bootstrap confidence interval for ``statistic(values)``.

    Used by the Fig. 7 stability analysis (the paper checks that monthly
    median downlink speeds barely move when 5–10 % of the data is dropped).
    """
    arr = _as_1d(values, "values")
    if len(arr) == 0:
        raise AnalysisError("cannot bootstrap an empty sequence")
    if not 0 < confidence < 1:
        raise AnalysisError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise AnalysisError("n_resamples must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    estimate = float(statistic(arr))
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = arr[rng.integers(0, len(arr), size=len(arr))]
        resampled[i] = statistic(sample)
    alpha = (1 - confidence) / 2
    return BootstrapResult(
        estimate=estimate,
        low=float(np.percentile(resampled, 100 * alpha)),
        high=float(np.percentile(resampled, 100 * (1 - alpha))),
        n_resamples=n_resamples,
        confidence=confidence,
    )

"""Daily and monthly time series used by the §4 social pipelines.

The Reddit analyses all reduce to operations over two shapes of series:
per-day counts/scores (Figs. 5a and 6) and per-month medians/ratios
(Fig. 7).  These classes keep the series dense over an explicit date span
so that "no posts that day" is an explicit zero/NaN rather than a missing
key, which is what the paper's day-wise plots assume.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError

Month = Tuple[int, int]  # (year, month)


def month_of(day: dt.date) -> Month:
    return (day.year, day.month)


def iter_days(start: dt.date, end: dt.date) -> Iterator[dt.date]:
    """Yield every date from ``start`` to ``end`` inclusive."""
    if end < start:
        raise AnalysisError(f"end {end} precedes start {start}")
    current = start
    one = dt.timedelta(days=1)
    while current <= end:
        yield current
        current += one


def iter_months(start: Month, end: Month) -> Iterator[Month]:
    """Yield every (year, month) from ``start`` to ``end`` inclusive."""
    if end < start:
        raise AnalysisError(f"end {end} precedes start {start}")
    year, month = start
    while (year, month) <= end:
        yield (year, month)
        month += 1
        if month == 13:
            year, month = year + 1, 1


@dataclass
class DailySeries:
    """A dense per-day series over ``[start, end]``.

    Values default to ``fill`` (0.0) for days never assigned.
    """

    start: dt.date
    end: dt.date
    values: np.ndarray

    @classmethod
    def zeros(cls, start: dt.date, end: dt.date, fill: float = 0.0) -> "DailySeries":
        n_days = (end - start).days + 1
        if n_days < 1:
            raise AnalysisError(f"empty span {start}..{end}")
        return cls(start=start, end=end, values=np.full(n_days, fill, dtype=float))

    @classmethod
    def from_mapping(
        cls,
        mapping: Mapping[dt.date, float],
        start: Optional[dt.date] = None,
        end: Optional[dt.date] = None,
        fill: float = 0.0,
    ) -> "DailySeries":
        if not mapping and (start is None or end is None):
            raise AnalysisError("empty mapping needs explicit start and end")
        span_start = start if start is not None else min(mapping)
        span_end = end if end is not None else max(mapping)
        series = cls.zeros(span_start, span_end, fill=fill)
        for day, value in mapping.items():
            series[day] = value
        return series

    def _index(self, day: dt.date) -> int:
        idx = (day - self.start).days
        if idx < 0 or idx >= len(self.values):
            raise AnalysisError(f"{day} outside span {self.start}..{self.end}")
        return idx

    def __getitem__(self, day: dt.date) -> float:
        return float(self.values[self._index(day)])

    def __setitem__(self, day: dt.date, value: float) -> None:
        self.values[self._index(day)] = value

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, day: dt.date) -> bool:
        return self.start <= day <= self.end

    def add(self, day: dt.date, amount: float = 1.0) -> None:
        """Increment a day's value — the counting primitive for Figs. 5a/6."""
        self.values[self._index(day)] += amount

    def days(self) -> List[dt.date]:
        return list(iter_days(self.start, self.end))

    def items(self) -> Iterator[Tuple[dt.date, float]]:
        for i, day in enumerate(iter_days(self.start, self.end)):
            yield day, float(self.values[i])

    def top_peaks(self, k: int, min_separation_days: int = 7) -> List[Tuple[dt.date, float]]:
        """The ``k`` largest values, greedily suppressing nearby days.

        The paper reports the "top three sentiment peaks"; consecutive days
        of the same event must not consume multiple slots, hence the
        separation window.
        """
        if k < 1:
            raise AnalysisError("k must be positive")
        order = np.argsort(self.values)[::-1]
        chosen: List[Tuple[dt.date, float]] = []
        chosen_idx: List[int] = []
        for idx in order:
            if len(chosen) == k:
                break
            if any(abs(int(idx) - prev) < min_separation_days for prev in chosen_idx):
                continue
            day = self.start + dt.timedelta(days=int(idx))
            chosen.append((day, float(self.values[idx])))
            chosen_idx.append(int(idx))
        return chosen

    def weekly_average(self) -> float:
        """Mean value per 7-day week across the span (§4.1 volume stats)."""
        return float(self.values.sum() / (len(self.values) / 7.0))

    def monthly(self, reducer: str = "sum") -> "MonthlySeries":
        """Collapse to a monthly series via ``sum``, ``mean`` or ``median``."""
        buckets: Dict[Month, List[float]] = {}
        for day, value in self.items():
            buckets.setdefault(month_of(day), []).append(value)
        reducers = {"sum": np.sum, "mean": np.mean, "median": np.median}
        if reducer not in reducers:
            raise AnalysisError(f"unknown reducer {reducer!r}")
        fn = reducers[reducer]
        return MonthlySeries.from_mapping(
            {m: float(fn(vals)) for m, vals in buckets.items()}
        )


@dataclass
class MonthlySeries:
    """A dense per-month series over ``[start, end]`` (inclusive months)."""

    start: Month
    end: Month
    values: np.ndarray

    @classmethod
    def zeros(cls, start: Month, end: Month, fill: float = np.nan) -> "MonthlySeries":
        n_months = len(list(iter_months(start, end)))
        return cls(start=start, end=end, values=np.full(n_months, fill, dtype=float))

    @classmethod
    def from_mapping(
        cls,
        mapping: Mapping[Month, float],
        start: Optional[Month] = None,
        end: Optional[Month] = None,
        fill: float = np.nan,
    ) -> "MonthlySeries":
        if not mapping and (start is None or end is None):
            raise AnalysisError("empty mapping needs explicit start and end")
        span_start = start if start is not None else min(mapping)
        span_end = end if end is not None else max(mapping)
        series = cls.zeros(span_start, span_end, fill=fill)
        for month, value in mapping.items():
            series[month] = value
        return series

    def _index(self, month: Month) -> int:
        months = list(iter_months(self.start, self.end))
        try:
            return months.index(month)
        except ValueError:
            raise AnalysisError(f"{month} outside span {self.start}..{self.end}") from None

    def __getitem__(self, month: Month) -> float:
        return float(self.values[self._index(month)])

    def __setitem__(self, month: Month, value: float) -> None:
        self.values[self._index(month)] = value

    def __len__(self) -> int:
        return len(self.values)

    def months(self) -> List[Month]:
        return list(iter_months(self.start, self.end))

    def items(self) -> Iterator[Tuple[Month, float]]:
        for month, value in zip(self.months(), self.values):
            yield month, float(value)

    def slice(self, start: Month, end: Month) -> "MonthlySeries":
        """Restrict to the closed month range ``[start, end]``."""
        months = self.months()
        if start not in months or end not in months:
            raise AnalysisError(f"slice {start}..{end} outside {self.start}..{self.end}")
        i, j = months.index(start), months.index(end)
        if j < i:
            raise AnalysisError("slice end precedes start")
        return MonthlySeries(start=start, end=end, values=self.values[i : j + 1].copy())

    def trend(self) -> float:
        """Least-squares slope per month, ignoring NaN months.

        Positive means the series rises over the span — used to check the
        Fig. 7 rise (Jan–Sep '21) and decline (Sep '21–Dec '22) segments.
        """
        mask = ~np.isnan(self.values)
        if mask.sum() < 2:
            raise AnalysisError("trend needs at least two non-NaN months")
        x = np.arange(len(self.values))[mask]
        y = self.values[mask]
        slope = np.polyfit(x, y, 1)[0]
        return float(slope)


def align_series(
    a: MonthlySeries, b: MonthlySeries
) -> Tuple[List[Month], np.ndarray, np.ndarray]:
    """Intersect two monthly series on months where both are non-NaN.

    Returns (months, a_values, b_values) ready for correlation — this is
    how the Fig. 7 "Pos follows downlink speed" claim is quantified.
    """
    common = [m for m in a.months() if m in set(b.months())]
    months: List[Month] = []
    a_vals: List[float] = []
    b_vals: List[float] = []
    for month in common:
        va, vb = a[month], b[month]
        if not (np.isnan(va) or np.isnan(vb)):
            months.append(month)
            a_vals.append(va)
            b_vals.append(vb)
    return months, np.asarray(a_vals), np.asarray(b_vals)

"""Core shared machinery: statistics, time series, and the USaaS framework.

The paper's headline contribution — *User Signals as-a-Service* (§5) —
lives in :mod:`repro.core.usaas`.  This package also hosts the statistical
primitives (:mod:`repro.core.stats`), the unified signal model
(:mod:`repro.core.signals`) and time-series alignment helpers
(:mod:`repro.core.timeline`) that both the §3 and §4 analysis pipelines
build on.
"""

from repro.core.signals import (
    ExplicitSignal,
    ImplicitSignal,
    Signal,
    SignalKind,
    SignalSeries,
)
from repro.core.stats import (
    BinnedCurve,
    BootstrapResult,
    bin_statistic,
    bootstrap_ci,
    pearson,
    percentile,
    spearman,
)
from repro.core.timeline import DailySeries, MonthlySeries, align_series

__all__ = [
    "BinnedCurve",
    "BootstrapResult",
    "DailySeries",
    "ExplicitSignal",
    "ImplicitSignal",
    "MonthlySeries",
    "Signal",
    "SignalKind",
    "SignalSeries",
    "align_series",
    "bin_statistic",
    "bootstrap_ci",
    "pearson",
    "percentile",
    "spearman",
]

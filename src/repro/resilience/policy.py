"""Retry policies and fallback chains.

The backoff schedule is a pure function of ``(seed, key, attempt)``:
jitter is drawn from a :func:`repro.rng.derive` stream, never from
global randomness, so the same policy produces the same delays on every
run and every platform — the property the chaos suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro import rng as rng_mod
from repro.errors import ConfigError, ReproError, SourceUnavailableError
from repro.resilience.clock import Clock, MonotonicClock


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    Attributes:
        max_attempts: total attempts (1 = no retries).
        base_delay_s: delay before the first retry.
        multiplier: exponential growth factor between retries.
        max_delay_s: cap on any single delay.
        jitter: fractional jitter; each delay is scaled by a factor drawn
            uniformly from ``[1 - jitter, 1 + jitter]`` on a seeded
            stream keyed by the call site.
        attempt_timeout_s: per-attempt time budget measured on the
            injected clock; an attempt that takes longer counts as a
            failure even if it eventually returned.
        seed: root seed for the jitter stream.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    attempt_timeout_s: Optional[float] = None
    seed: int = rng_mod.DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ConfigError("attempt_timeout_s must be positive")

    def with_attempts(self, max_attempts: int) -> "RetryPolicy":
        """This policy's backoff shape under a different attempt budget.

        The sharded executor reuses one policy object for every shard but
        sizes the attempt count from its own ``max_shard_retries`` knob.
        """
        import dataclasses

        return dataclasses.replace(self, max_attempts=max_attempts)

    def schedule(self, key: str) -> Tuple[float, ...]:
        """The full backoff schedule (``max_attempts - 1`` delays).

        ``key`` identifies the call site (e.g. the source name); distinct
        keys get independent jitter streams from the same seed.
        """
        stream = rng_mod.derive(self.seed, "resilience.retry", key)
        delays: List[float] = []
        for attempt in range(self.max_attempts - 1):
            raw = min(
                self.base_delay_s * (self.multiplier ** attempt),
                self.max_delay_s,
            )
            factor = 1.0 + self.jitter * float(2.0 * stream.random() - 1.0)
            delays.append(min(raw * factor, self.max_delay_s))
        return tuple(delays)


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    key: str,
    clock: Optional[Clock] = None,
    retry_on: Tuple[type, ...] = (ReproError, OSError, ValueError),
) -> Any:
    """Run ``fn`` under ``policy``; raise SourceUnavailableError when spent.

    Timeouts are measured, not enforced: the attempt runs to completion
    and is *counted* as failed if the clock says it blew its budget.
    (Simulated slow calls in tests advance a :class:`ManualClock`.)
    Exceptions outside ``retry_on`` — programming errors — propagate
    immediately, unretried.
    """
    clock = clock or MonotonicClock()
    delays = policy.schedule(key)
    last_error: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        start = clock.now()
        try:
            result = fn()
        except retry_on as exc:
            last_error = exc
        else:
            elapsed = clock.now() - start
            if (
                policy.attempt_timeout_s is not None
                and elapsed > policy.attempt_timeout_s
            ):
                last_error = SourceUnavailableError(
                    f"{key}: attempt {attempt + 1} took {elapsed:.3f}s "
                    f"(budget {policy.attempt_timeout_s:.3f}s)"
                )
            else:
                return result
        if attempt < len(delays):
            clock.sleep(delays[attempt])
    raise SourceUnavailableError(
        f"{key}: all {policy.max_attempts} attempts failed "
        f"(last: {type(last_error).__name__}: {last_error})"
    ) from last_error


@dataclass(frozen=True)
class FallbackResult:
    """Outcome of a fallback chain call.

    Attributes:
        value: the successful return value.
        used: name of the link that served the call.
        used_index: its position in the chain (0 = primary).
        errors: ``(name, repr)`` for every link that failed first.
    """

    value: Any
    used: str
    used_index: int
    errors: Tuple[Tuple[str, str], ...]

    @property
    def degraded(self) -> bool:
        return self.used_index > 0


class Fallback:
    """An ordered chain of alternatives: primary first, then stand-ins.

    Links are ``(name, callable)`` pairs; :meth:`call` tries each in
    order and returns a :class:`FallbackResult` naming which one served.
    The canonical USaaS example chains an Azure-style hosted sentiment
    scorer in front of the offline lexicon
    :class:`~repro.nlp.sentiment.SentimentAnalyzer`.
    """

    def __init__(self, *links: Tuple[str, Callable[..., Any]]) -> None:
        if not links:
            raise ConfigError("fallback chain needs at least one link")
        seen = set()
        for name, fn in links:
            if not name or not callable(fn):
                raise ConfigError("each link must be (name, callable)")
            if name in seen:
                raise ConfigError(f"duplicate fallback link {name!r}")
            seen.add(name)
        self._links: Tuple[Tuple[str, Callable[..., Any]], ...] = tuple(links)
        self.served_by: dict = {name: 0 for name, _ in links}

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._links)

    def call(self, *args: Any, **kwargs: Any) -> FallbackResult:
        errors: List[Tuple[str, str]] = []
        for index, (name, fn) in enumerate(self._links):
            try:
                value = fn(*args, **kwargs)
            except (ReproError, OSError, ValueError) as exc:
                errors.append((name, f"{type(exc).__name__}: {exc}"))
                continue
            self.served_by[name] += 1
            return FallbackResult(
                value=value, used=name, used_index=index, errors=tuple(errors)
            )
        raise SourceUnavailableError(
            "every link in the fallback chain failed: "
            + "; ".join(f"{n}: {e}" for n, e in errors)
        )

"""The glue between policy, breaker, health and the source registry.

A :class:`SourceExecutor` owns one :class:`CircuitBreaker` and one
:class:`SourceHealth` record per source and runs every fetch through the
full guard stack:

1. breaker admission (open circuits shed the call instantly),
2. retry loop with deterministic backoff and per-attempt timeout budget,
3. on success within budget: the result is committed to the registry
   cache (becoming the stale-fallback value for later outages),
4. on exhaustion: the last known-good series is served *stale* when the
   configuration allows it, else the source is reported failed.

The executor never raises for a failing source — that isolation is the
point.  Callers inspect :class:`FetchOutcome` and the health ledger and
decide (via ``min_sources`` / ``strict``) whether the query as a whole
is still answerable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import (
    CircuitOpenError,
    ConfigError,
    ReproError,
    SourceUnavailableError,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import Clock, MonotonicClock
from repro.resilience.health import HealthLedger, SourceHealth
from repro.resilience.policy import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.signals import SignalSeries
    from repro.core.usaas.registry import SignalSourceRegistry
    from repro.serving.deadline import Deadline

#: Exception classes treated as source failures (retried / recorded).
#: Anything else is a programming error and propagates immediately.
RETRYABLE = (ReproError, OSError, ValueError, KeyError)


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables for the guarded ingestion path.

    Attributes:
        retry: per-source retry/backoff/timeout policy.
        breaker_window / breaker_failure_rate / breaker_min_calls /
            breaker_recovery_s / breaker_half_open_max_calls: breaker
            construction parameters (one breaker per source).
        min_sources: fewest healthy-or-stale sources for a query to be
            answerable; below this ``answer()`` raises
            :class:`~repro.errors.DegradedServiceError`.
        strict: when True, *any* failed source hard-fails the query.
        allow_stale: serve the last known-good series when a source is
            down (marks the source ``stale`` in its health record).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_window: int = 10
    breaker_failure_rate: float = 0.5
    breaker_min_calls: int = 4
    breaker_recovery_s: float = 30.0
    breaker_half_open_max_calls: int = 1
    min_sources: int = 1
    strict: bool = False
    allow_stale: bool = True

    def __post_init__(self) -> None:
        if self.min_sources < 0:
            raise ConfigError("min_sources must be >= 0")


@dataclass(frozen=True)
class FetchOutcome:
    """What one guarded fetch produced.

    ``series`` is None only when the source failed and no stale value
    existed; ``stale`` marks a fallback serve from the last good fetch.
    """

    name: str
    series: Optional["SignalSeries"]
    ok: bool
    stale: bool
    error: Optional[str] = None

    @property
    def usable(self) -> bool:
        return self.series is not None


class SourceExecutor:
    """Per-source guard stack shared across queries.

    Breakers and health accumulate across calls, so a source that fails
    repeatedly over several queries trips its breaker and subsequent
    queries shed the call instead of re-paying the retry budget.
    """

    def __init__(
        self,
        config: Optional[ResilienceConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.config = config or ResilienceConfig()
        self.clock = clock or MonotonicClock()
        self.ledger = HealthLedger()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, name: str) -> CircuitBreaker:
        if name not in self._breakers:
            cfg = self.config
            self._breakers[name] = CircuitBreaker(
                window=cfg.breaker_window,
                failure_rate_threshold=cfg.breaker_failure_rate,
                min_calls=cfg.breaker_min_calls,
                recovery_s=cfg.breaker_recovery_s,
                half_open_max_calls=cfg.breaker_half_open_max_calls,
                clock=self.clock,
                name=name,
            )
        return self._breakers[name]

    # -- the guarded fetch ------------------------------------------------

    def fetch(
        self,
        registry: "SignalSourceRegistry",
        name: str,
        deadline: Optional["Deadline"] = None,
    ) -> FetchOutcome:
        """Fetch one source through breaker + retry + stale fallback.

        ``deadline`` is the query's remaining time budget (see
        :class:`repro.serving.Deadline`): each attempt's timeout is
        clamped to the remaining budget, backoff sleeps that would burn
        the rest of it are skipped, and no new attempt starts once it
        has expired — so a query can overrun its deadline by at most
        one attempt's duration, never by the whole retry schedule.
        """
        health = self.ledger.get(name)
        breaker = self.breaker(name)
        cycle_start = self.clock.now()

        try:
            breaker.acquire()
        except CircuitOpenError as exc:
            health.record_shed(exc)
            health.breaker_state = breaker.state.value
            health.last_cycle_elapsed_s = self.clock.now() - cycle_start
            return self._fallback(registry, name, health, exc)

        policy = self.config.retry
        delays = policy.schedule(name)
        last_error: BaseException = SourceUnavailableError(
            f"{name}: no attempt made"
        )
        for attempt in range(policy.max_attempts):
            if deadline is not None and deadline.expired():
                last_error = SourceUnavailableError(
                    f"{name}: deadline exhausted before attempt "
                    f"{attempt + 1} ({deadline.overrun():.3f}s over budget)"
                )
                break
            start = self.clock.now()
            # Remaining-budget-aware clamp: the attempt may use at most
            # its own timeout AND what is left of the query's deadline.
            budget = policy.attempt_timeout_s
            if deadline is not None:
                budget = deadline.clamp(budget)
            try:
                series = registry.load(name)
            except RETRYABLE as exc:
                elapsed = self.clock.now() - start
                health.record_failure(exc, elapsed)
                breaker.record_failure()
                last_error = exc
            else:
                elapsed = self.clock.now() - start
                if budget is not None and elapsed > budget:
                    timeout = SourceUnavailableError(
                        f"{name}: attempt {attempt + 1} took {elapsed:.3f}s "
                        f"(budget {budget:.3f}s)"
                    )
                    health.record_failure(timeout, elapsed)
                    breaker.record_failure()
                    last_error = timeout
                else:
                    health.record_success(elapsed)
                    breaker.record_success()
                    health.breaker_state = breaker.state.value
                    health.last_cycle_elapsed_s = (
                        self.clock.now() - cycle_start
                    )
                    registry.commit(name, series)
                    return FetchOutcome(
                        name=name, series=series, ok=True, stale=False
                    )
            health.breaker_state = breaker.state.value
            if not breaker.allow():
                break  # breaker tripped mid-retry; stop burning attempts
            if attempt < len(delays):
                delay = delays[attempt]
                if (
                    deadline is not None
                    and delay >= deadline.remaining()
                ):
                    # Sleeping would spend the rest of the budget on
                    # nothing; cut the retry loop short instead.
                    last_error = SourceUnavailableError(
                        f"{name}: backoff of {delay:.3f}s exceeds the "
                        f"remaining deadline budget "
                        f"({max(0.0, deadline.remaining()):.3f}s)"
                    )
                    break
                self.clock.sleep(delay)
        health.last_cycle_elapsed_s = self.clock.now() - cycle_start
        return self._fallback(registry, name, health, last_error)

    def _fallback(
        self,
        registry: "SignalSourceRegistry",
        name: str,
        health: SourceHealth,
        error: BaseException,
    ) -> FetchOutcome:
        message = f"{type(error).__name__}: {error}"
        if self.config.allow_stale:
            stale = registry.last_good(name)
            if stale is not None:
                health.stale = True
                return FetchOutcome(
                    name=name, series=stale, ok=False, stale=True,
                    error=message,
                )
        health.stale = False
        return FetchOutcome(
            name=name, series=None, ok=False, stale=False, error=message
        )

"""Per-source health records surfaced on every USaaS report.

A :class:`SourceHealth` is the operator-facing truth about one feed:
how many attempts were made, how many failed, what the last error was,
what the breaker thinks, and whether the last answer was served stale.
Records carry no wall-clock timestamps — elapsed time comes from the
injected clock — so the same seeded run produces byte-identical records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class SourceHealth:
    """Mutable per-source ledger entry.

    Attributes:
        name: registry name of the source.
        attempts: individual call attempts (retries count separately).
        successes: attempts that returned within budget.
        failures: attempts that raised or blew the timeout budget.
        shed: calls refused up-front by an open breaker.
        consecutive_failures: failure streak ending at the last attempt.
        last_error: ``"ExceptionType: message"`` of the latest failure.
        breaker_state: the breaker state after the latest interaction.
        stale: the last fetch was served from the stale cache.
        last_elapsed_s: duration of the latest attempt on the injected
            clock (0.0 when never called or shed).
        last_cycle_elapsed_s: duration of the latest *whole* fetch cycle
            — every attempt plus the backoff between them — on the
            injected clock.  When the retry loop exhausts its budget
            this is what the query's deadline actually paid, which is
            why health tables and deadline accounting agree on it.
    """

    name: str
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    shed: int = 0
    consecutive_failures: int = 0
    last_error: Optional[str] = None
    breaker_state: str = "closed"
    stale: bool = False
    last_elapsed_s: float = 0.0
    last_cycle_elapsed_s: float = 0.0

    @property
    def healthy(self) -> bool:
        return self.consecutive_failures == 0 and self.breaker_state == "closed"

    @property
    def status(self) -> str:
        """``ok`` | ``stale`` | ``failed`` — the one-word table cell."""
        if self.stale:
            return "stale"
        if self.consecutive_failures > 0 or self.breaker_state != "closed":
            return "failed"
        return "ok"

    def record_success(self, elapsed_s: float = 0.0) -> None:
        self.attempts += 1
        self.successes += 1
        self.consecutive_failures = 0
        self.last_elapsed_s = float(elapsed_s)
        self.stale = False

    def record_failure(self, error: BaseException, elapsed_s: float = 0.0) -> None:
        self.attempts += 1
        self.failures += 1
        self.consecutive_failures += 1
        self.last_error = f"{type(error).__name__}: {error}"
        self.last_elapsed_s = float(elapsed_s)

    def record_shed(self, error: BaseException) -> None:
        self.shed += 1
        self.last_error = f"{type(error).__name__}: {error}"

    def as_dict(self) -> Dict[str, object]:
        """Stable, JSON-ready form (used for byte-identity assertions)."""
        return {
            "name": self.name,
            "attempts": self.attempts,
            "successes": self.successes,
            "failures": self.failures,
            "shed": self.shed,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "breaker_state": self.breaker_state,
            "stale": self.stale,
            "last_elapsed_s": round(self.last_elapsed_s, 6),
            "last_cycle_elapsed_s": round(self.last_cycle_elapsed_s, 6),
            "status": self.status,
        }


class HealthLedger:
    """Name-keyed collection of :class:`SourceHealth` records."""

    def __init__(self) -> None:
        self._records: Dict[str, SourceHealth] = {}

    def get(self, name: str) -> SourceHealth:
        if name not in self._records:
            self._records[name] = SourceHealth(name=name)
        return self._records[name]

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __iter__(self) -> Iterator[SourceHealth]:
        for name in sorted(self._records):
            yield self._records[name]

    def __len__(self) -> int:
        return len(self._records)

    def snapshot(self) -> Tuple[SourceHealth, ...]:
        """Point-in-time copies, sorted by name."""
        return tuple(
            SourceHealth(**vars(record)) for record in self
        )

    def as_table(self) -> str:
        """Fixed-width text table for CLI / log output."""
        return health_table(self)


def health_table(records: "Iterator[SourceHealth]") -> str:
    """Render health records as a fixed-width text table."""
    headers = ("source", "status", "breaker", "attempts", "fail",
               "shed", "last error")
    rows: List[Tuple[str, ...]] = [headers]
    for r in sorted(records, key=lambda r: r.name):
        rows.append((
            r.name, r.status, r.breaker_state, str(r.attempts),
            str(r.failures), str(r.shed), r.last_error or "-",
        ))
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(widths[col]) for col, cell in enumerate(row)
        ).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

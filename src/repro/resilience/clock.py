"""Injectable time for the resilience stack.

Retry backoff, breaker cool-downs and timeout budgets all need a notion
of "now" and "wait".  Production code uses :class:`MonotonicClock`;
every test uses :class:`ManualClock`, whose ``sleep`` merely advances an
internal counter — so no resilience test ever blocks on wall-clock time
and every schedule is exactly reproducible.
"""

from __future__ import annotations

import time


class Clock:
    """Minimal time interface: a monotonic ``now`` and a ``sleep``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real time, for production use."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """Simulated time: ``sleep`` and ``advance`` move ``now`` instantly.

    >>> clock = ManualClock()
    >>> clock.sleep(2.5); clock.now()
    2.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleeps.append(float(seconds))
        self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self._now += float(seconds)

"""Circuit breaker: stop hammering a source that keeps failing.

Classic three-state machine over a rolling outcome window:

* **closed** — calls flow; outcomes are recorded.  When the window holds
  at least ``min_calls`` outcomes and the failure rate reaches
  ``failure_rate_threshold``, the breaker opens.
* **open** — calls are shed with :class:`~repro.errors.CircuitOpenError`
  until ``recovery_s`` has elapsed on the injected clock.
* **half-open** — up to ``half_open_max_calls`` probe calls are let
  through; any failure reopens, enough successes close and reset.

Time comes from an injectable :class:`~repro.resilience.clock.Clock`,
so tests drive the cool-down with a :class:`ManualClock` and never sleep.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from repro.errors import CircuitOpenError, ConfigError
from repro.resilience.clock import Clock, MonotonicClock


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-source failure-rate breaker with injectable time."""

    def __init__(
        self,
        window: int = 10,
        failure_rate_threshold: float = 0.5,
        min_calls: int = 4,
        recovery_s: float = 30.0,
        half_open_max_calls: int = 1,
        clock: Optional[Clock] = None,
        name: str = "",
    ) -> None:
        if window < 1:
            raise ConfigError("window must be >= 1")
        if not 0.0 < failure_rate_threshold <= 1.0:
            raise ConfigError("failure_rate_threshold must be in (0, 1]")
        if min_calls < 1 or min_calls > window:
            raise ConfigError("min_calls must be in [1, window]")
        if recovery_s < 0:
            raise ConfigError("recovery_s must be non-negative")
        if half_open_max_calls < 1:
            raise ConfigError("half_open_max_calls must be >= 1")
        self.name = name
        self._window: Deque[bool] = deque(maxlen=window)
        self._failure_rate_threshold = failure_rate_threshold
        self._min_calls = min_calls
        self._recovery_s = recovery_s
        self._half_open_max_calls = half_open_max_calls
        self._clock = clock or MonotonicClock()
        self._state = BreakerState.CLOSED
        self._opened_at: Optional[float] = None
        self._half_open_in_flight = 0
        self._half_open_successes = 0

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    @property
    def failure_rate(self) -> float:
        if not self._window:
            return 0.0
        return sum(1 for ok in self._window if not ok) / len(self._window)

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self._clock.now() - self._opened_at >= self._recovery_s
        ):
            self._state = BreakerState.HALF_OPEN
            self._half_open_in_flight = 0
            self._half_open_successes = 0

    # -- call gating ------------------------------------------------------

    def allow(self) -> bool:
        """Would a call be admitted right now? (No state mutation.)"""
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        return self._half_open_in_flight < self._half_open_max_calls

    def acquire(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError`."""
        state = self.state
        if state is BreakerState.OPEN:
            raise CircuitOpenError(
                f"circuit {self.name or '?'} is open "
                f"(failure rate {self.failure_rate:.0%})"
            )
        if state is BreakerState.HALF_OPEN:
            if self._half_open_in_flight >= self._half_open_max_calls:
                raise CircuitOpenError(
                    f"circuit {self.name or '?'} is half-open and saturated"
                )
            self._half_open_in_flight += 1

    def record_success(self) -> None:
        if self._state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self._half_open_max_calls:
                self._reset()
            return
        self._window.append(True)

    def record_failure(self) -> None:
        if self._state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._window.append(False)
        if (
            self._state is BreakerState.CLOSED
            and len(self._window) >= self._min_calls
            and self.failure_rate >= self._failure_rate_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock.now()
        self._half_open_in_flight = 0
        self._half_open_successes = 0

    def _reset(self) -> None:
        self._state = BreakerState.CLOSED
        self._window.clear()
        self._opened_at = None
        self._half_open_in_flight = 0
        self._half_open_successes = 0

"""Fault isolation for the USaaS ingestion path.

A production USaaS deployment ingests signals from feeds it does not
control — application telemetry exports, social-media pipelines, paid
sentiment APIs.  Crowdsourced-measurement deployments report exactly one
dominant failure mode: *partial* availability, where one feed is flaky
while the rest are fine.  This package keeps one bad source from taking
the whole service down:

* :mod:`repro.resilience.clock` — injectable time so nothing here ever
  needs a real ``sleep`` under test;
* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (deterministic
  exponential backoff with seeded jitter) and :class:`Fallback` chains;
* :mod:`repro.resilience.breaker` — a :class:`CircuitBreaker` with
  closed/open/half-open states over a rolling outcome window;
* :mod:`repro.resilience.health` — per-source :class:`SourceHealth`
  records surfaced on every :class:`~repro.core.usaas.service.UsaasReport`;
* :mod:`repro.resilience.executor` — :class:`SourceExecutor`, the glue
  that runs a registry source through breaker + retry + stale-cache
  fallback and writes the health ledger;
* :mod:`repro.resilience.faults` — :class:`FaultPlan`, a deterministic
  chaos harness the test suite uses to prove all of the above.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.clock import Clock, ManualClock, MonotonicClock
from repro.resilience.executor import (
    FetchOutcome,
    ResilienceConfig,
    SourceExecutor,
)
from repro.resilience.faults import (
    Arrival,
    ClusterArrival,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    LoadSpikeSpec,
    ReplicaFaultEvent,
    ReplicaFaultSpec,
    ShardFaultInjector,
    WorkerFaultSpec,
)
from repro.resilience.health import HealthLedger, SourceHealth, health_table
from repro.resilience.policy import (
    Fallback,
    FallbackResult,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "Arrival",
    "BreakerState",
    "CircuitBreaker",
    "Clock",
    "ClusterArrival",
    "Fallback",
    "FallbackResult",
    "FaultPlan",
    "FaultSpec",
    "FetchOutcome",
    "HealthLedger",
    "InjectedFault",
    "LoadSpikeSpec",
    "ManualClock",
    "MonotonicClock",
    "ReplicaFaultEvent",
    "ReplicaFaultSpec",
    "ResilienceConfig",
    "RetryPolicy",
    "ShardFaultInjector",
    "SourceExecutor",
    "SourceHealth",
    "WorkerFaultSpec",
    "call_with_retry",
    "health_table",
]

"""Deterministic chaos: seeded fault injection for sources and records.

A :class:`FaultPlan` wraps any source callable (or record stream) so that
calls fail, stall, or yield corrupt records on a schedule derived from
``repro.rng`` — the same seed always produces the same fault sequence,
which is what lets the chaos suite assert byte-identical health records
across runs.  Simulated slowness advances a
:class:`~repro.resilience.clock.ManualClock` instead of sleeping, so a
"30-second hang" costs the test suite nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro import rng as rng_mod
from repro.errors import ConfigError, ReproError
from repro.resilience.clock import ManualClock


class InjectedFault(ReproError):
    """The exception a fault plan raises for an injected failure."""


@dataclass(frozen=True)
class FaultSpec:
    """How one wrapped source should misbehave.

    Per call, one uniform draw picks the action: ``fail`` with
    probability ``fail_rate``, else ``slow`` with probability
    ``slow_rate``, else the call proceeds normally.  ``corrupt_rate``
    applies per *record* when wrapping a record stream.
    """

    fail_rate: float = 0.0
    slow_rate: float = 0.0
    slow_s: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fail_rate", "slow_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if self.fail_rate + self.slow_rate > 1.0:
            raise ConfigError("fail_rate + slow_rate must be <= 1")
        if self.slow_s < 0:
            raise ConfigError("slow_s must be non-negative")


ALWAYS_FAIL = FaultSpec(fail_rate=1.0)


def always_slow(slow_s: float) -> FaultSpec:
    """A spec that stalls every call for ``slow_s`` simulated seconds."""
    return FaultSpec(slow_rate=1.0, slow_s=slow_s)


class FaultPlan:
    """Seeded fault schedules for any number of named targets.

    >>> clock = ManualClock()
    >>> plan = FaultPlan(seed=7, clock=clock)
    >>> flaky = plan.wrap_source("feed", lambda: 42,
    ...                          FaultSpec(fail_rate=0.5))
    """

    def __init__(self, seed: int, clock: Optional[ManualClock] = None) -> None:
        self.seed = int(seed)
        self.clock = clock or ManualClock()
        self.log: List[Tuple[str, str]] = []
        self._streams: dict = {}

    def _stream(self, name: str):
        if name not in self._streams:
            self._streams[name] = rng_mod.derive(
                self.seed, "resilience.faults", name
            )
        return self._streams[name]

    def _action(self, name: str, spec: FaultSpec) -> str:
        u = float(self._stream(name).random())
        if u < spec.fail_rate:
            return "fail"
        if u < spec.fail_rate + spec.slow_rate:
            return "slow"
        return "ok"

    def wrap_source(
        self,
        name: str,
        fn: Callable[[], Any],
        spec: FaultSpec,
    ) -> Callable[[], Any]:
        """Wrap a source callable with this plan's schedule for ``name``."""

        def wrapped() -> Any:
            action = self._action(name, spec)
            self.log.append((name, action))
            if action == "fail":
                raise InjectedFault(f"injected failure in source {name!r}")
            if action == "slow":
                self.clock.advance(spec.slow_s)
            return fn()

        return wrapped

    def wrap_records(
        self,
        name: str,
        records: Iterable[Any],
        spec: FaultSpec,
        corrupt: Optional[Callable[[Any], Any]] = None,
    ) -> Iterator[Any]:
        """Yield ``records`` with some deterministically corrupted.

        ``corrupt`` maps a clean record to its corrupted form; the
        default replaces it with a sentinel string no schema accepts.
        """
        stream = self._stream(name + "#records")
        for record in records:
            if float(stream.random()) < spec.corrupt_rate:
                self.log.append((name, "corrupt"))
                yield corrupt(record) if corrupt else "\x00corrupt\x00"
            else:
                yield record

    def corrupt_jsonl_lines(
        self, name: str, lines: Iterable[str], spec: FaultSpec
    ) -> Iterator[str]:
        """Deterministically truncate JSONL lines (for salvage tests)."""
        stream = self._stream(name + "#lines")
        for line in lines:
            if float(stream.random()) < spec.corrupt_rate and line.strip():
                self.log.append((name, "corrupt"))
                yield line[: max(1, len(line) // 2)]
            else:
                yield line

    def actions(self, name: str, spec: FaultSpec, n: int) -> Tuple[str, ...]:
        """Preview the next ``n`` actions for a *fresh* target name.

        Uses the same derivation as :meth:`wrap_source`, so a plan with
        the same seed reports the same sequence — the determinism the
        test suite pins down.
        """
        preview = FaultPlan(self.seed)
        return tuple(preview._action(name, spec) for _ in range(n))

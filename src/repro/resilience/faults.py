"""Deterministic chaos: seeded fault injection for sources and records.

A :class:`FaultPlan` wraps any source callable (or record stream) so that
calls fail, stall, or yield corrupt records on a schedule derived from
``repro.rng`` — the same seed always produces the same fault sequence,
which is what lets the chaos suite assert byte-identical health records
across runs.  Simulated slowness advances a
:class:`~repro.resilience.clock.ManualClock` instead of sleeping, so a
"30-second hang" costs the test suite nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro import rng as rng_mod
from repro.errors import ConfigError, ReproError
from repro.resilience.clock import ManualClock


class InjectedFault(ReproError):
    """The exception a fault plan raises for an injected failure."""


@dataclass(frozen=True)
class FaultSpec:
    """How one wrapped source should misbehave.

    Per call, one uniform draw picks the action: ``fail`` with
    probability ``fail_rate``, else ``slow`` with probability
    ``slow_rate``, else the call proceeds normally.  ``corrupt_rate``
    applies per *record* when wrapping a record stream.
    """

    fail_rate: float = 0.0
    slow_rate: float = 0.0
    slow_s: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fail_rate", "slow_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if self.fail_rate + self.slow_rate > 1.0:
            raise ConfigError("fail_rate + slow_rate must be <= 1")
        if self.slow_s < 0:
            raise ConfigError("slow_s must be non-negative")


ALWAYS_FAIL = FaultSpec(fail_rate=1.0)


@dataclass(frozen=True)
class Arrival:
    """One scheduled query arrival in a load-spike plan."""

    at_s: float
    priority: str = "interactive"
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class ClusterArrival:
    """One scheduled arrival in a *cluster* load plan.

    On top of the single-server :class:`Arrival` fields it carries the
    routing identity: ``tenant`` (quota / weighted-fair accounting) and
    ``key`` (the consistent-hash routing key — a user or source id).
    """

    at_s: float
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    tenant: str = "default"
    key: str = "user-0"


def pick_weighted(mix: Tuple[Tuple[str, float], ...], u: float) -> str:
    """Map a uniform draw in [0, 1) to a weighted choice from ``mix``."""
    total = sum(w for _, w in mix)
    cumulative = 0.0
    for name, weight in mix:
        cumulative += weight / total
        if u < cumulative:
            return name
    return mix[-1][0]


#: The replica failure modes the cluster soak can schedule.
REPLICA_FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "slow", "flap")


@dataclass(frozen=True)
class ReplicaFaultSpec:
    """One scheduled misbehaviour of one cluster replica.

    * ``crash`` — the replica process dies at ``at_s``: queued work is
      lost (terminally ``failed``) and the replica is down for
      ``down_s`` simulated seconds (0 = forever);
    * ``hang`` — the replica stops serving at ``at_s`` but *keeps* its
      queue; after ``down_s`` it resumes, usually blowing the held
      queries' deadlines;
    * ``slow`` — every query run on the replica costs an extra
      ``slow_extra_s`` of simulated time during
      ``[at_s, at_s + down_s)``;
    * ``flap`` — ``flaps`` crash/recover cycles starting at ``at_s``,
      one every ``period_s``, each outage lasting ``down_s``.
    """

    replica: str
    kind: str
    at_s: float
    down_s: float = 0.0
    slow_extra_s: float = 0.0
    flaps: int = 2
    period_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.replica:
            raise ConfigError("replica name must be non-empty")
        if self.kind not in REPLICA_FAULT_KINDS:
            raise ConfigError(
                f"kind must be one of {REPLICA_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.at_s < 0:
            raise ConfigError("at_s must be non-negative")
        if self.down_s < 0:
            raise ConfigError("down_s must be non-negative")
        if self.kind == "slow":
            if self.slow_extra_s <= 0:
                raise ConfigError("slow faults need slow_extra_s > 0")
            if self.down_s <= 0:
                raise ConfigError("slow faults need a down_s duration")
        if self.kind == "flap":
            if self.flaps < 1:
                raise ConfigError("flap faults need flaps >= 1")
            if self.period_s <= 0:
                raise ConfigError("flap faults need period_s > 0")
            if self.down_s <= 0 or self.down_s >= self.period_s:
                raise ConfigError(
                    "flap faults need 0 < down_s < period_s"
                )


@dataclass(frozen=True)
class ReplicaFaultEvent:
    """One instant in a replica fault timeline.

    ``action`` is one of ``crash`` / ``hang`` / ``recover`` /
    ``slow_start`` / ``slow_end``; ``slow_extra_s`` only matters for
    ``slow_start``.
    """

    at_s: float
    replica: str
    action: str
    slow_extra_s: float = 0.0


@dataclass(frozen=True)
class LoadSpikeSpec:
    """One burst of Poisson-ish query arrivals.

    Inter-arrival gaps are exponential draws (mean ``1 / rate_per_s``)
    from the plan's seeded substream, so a spec at five times a server's
    capacity produces a *deterministic* overload: the same seed yields
    the same arrival times, priorities and, therefore, the same shed
    set.  ``priority_mix`` weights the admission classes each arrival is
    drawn from; ``deadline_s`` attaches a per-query budget.
    """

    rate_per_s: float
    duration_s: float
    start_s: float = 0.0
    priority_mix: Tuple[Tuple[str, float], ...] = (("interactive", 1.0),)
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigError("rate_per_s must be positive")
        if self.duration_s <= 0:
            raise ConfigError("duration_s must be positive")
        if self.start_s < 0:
            raise ConfigError("start_s must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError("deadline_s must be positive")
        if not self.priority_mix:
            raise ConfigError("priority_mix must not be empty")
        for name, weight in self.priority_mix:
            if not name or weight < 0:
                raise ConfigError(
                    "priority_mix entries must be (name, weight >= 0)"
                )
        if sum(w for _, w in self.priority_mix) <= 0:
            raise ConfigError("priority_mix weights must sum to > 0")

    def pick_priority(self, u: float) -> str:
        """Map a uniform draw in [0, 1) to a priority class."""
        return pick_weighted(self.priority_mix, u)

@dataclass(frozen=True)
class StreamFaultSpec:
    """The arrival pathologies of a measurement stream, made schedulable.

    Event times are sacred — faults only ever distort *delivery*:

    * every record is delayed by a uniform draw in
      ``[0, base_delay_s)`` (network transit);
    * with probability ``reorder_rate`` a record picks up an extra
      uniform delay in ``[0, reorder_extra_s)`` — enough of these and
      arrivals cross, which is what exercises the reorder buffer;
    * ``skew_windows`` — ``(start_s, duration_s, skew_s)`` triples: a
      record whose *event time* falls in the window is delivered
      ``skew_s`` later, modelling a clock-skewed source whose stamps
      lag its transmissions;
    * ``gap_windows`` — ``(start_s, duration_s)`` pairs: deliveries
      that would land inside the window are held and released together
      at its end — an outage followed by the burst that drains it;
    * with probability ``duplicate_rate`` the record is delivered a
      second time after an extra uniform delay in
      ``[0, duplicate_delay_s)`` (at-least-once transport);
    * ``crash_at_s`` — consumer crash instants; the fault plan only
      records them (the soak driver kills and resumes the pipeline).
    """

    base_delay_s: float = 0.5
    reorder_rate: float = 0.0
    reorder_extra_s: float = 0.0
    duplicate_rate: float = 0.0
    duplicate_delay_s: float = 5.0
    skew_windows: Tuple[Tuple[float, float, float], ...] = ()
    gap_windows: Tuple[Tuple[float, float], ...] = ()
    crash_at_s: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        for name in ("reorder_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        for name in ("base_delay_s", "reorder_extra_s", "duplicate_delay_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.reorder_rate > 0 and self.reorder_extra_s <= 0:
            raise ConfigError("reorder faults need reorder_extra_s > 0")
        for window in self.skew_windows:
            if len(window) != 3:
                raise ConfigError(
                    "skew_windows entries must be (start_s, duration_s, skew_s)"
                )
            start, duration, skew = window
            if start < 0 or duration <= 0 or skew <= 0:
                raise ConfigError(
                    "skew windows need start_s >= 0, duration_s > 0, skew_s > 0"
                )
        for window in self.gap_windows:
            if len(window) != 2:
                raise ConfigError(
                    "gap_windows entries must be (start_s, duration_s)"
                )
            start, duration = window
            if start < 0 or duration <= 0:
                raise ConfigError(
                    "gap windows need start_s >= 0 and duration_s > 0"
                )
        for at in self.crash_at_s:
            if at <= 0:
                raise ConfigError("crash_at_s entries must be positive")


@dataclass(frozen=True)
class StreamDelivery:
    """One record arriving at the pipeline, possibly mangled en route.

    ``seq`` is the global delivery sequence (ties in ``at_s`` resolve by
    it, so the schedule is a total order); ``injected`` names the faults
    that shaped this delivery; ``duplicate`` marks a redelivery of a
    record already scheduled once.
    """

    at_s: float
    record: Any
    seq: int
    injected: Tuple[str, ...] = ()
    duplicate: bool = False


@dataclass(frozen=True)
class DataFaultSpec:
    """Adversarial *data* faults: the signals themselves lie.

    Where every other spec in this module breaks infrastructure, this
    one contaminates content — the crowdsourced-QoE threat model.  All
    knobs default off; each family is applied as a pure transform of a
    clean artifact (corpus / call dataset / stream), with every draw
    taken from the plan's seeded substream, so clean and contaminated
    runs are byte-reproducible per seed.

    * **brigade** — ``brigade_fraction`` of the corpus size is injected
      as near-duplicate strongly-negative spam posts, written by a bot
      ring of ``ring_size`` authors cycling ``template_count`` template
      texts, concentrated on ``brigade_days`` seeded days;
    * **rating fraud** — each session is overwritten with probability
      ``fraud_fraction``: its rating becomes ``fraud_rating`` and its
      author one of ``fraud_cohort`` shill accounts;
    * **sensor drift** — each (non-fraud) session drifts with
      probability ``drift_fraction``: every aggregate of
      ``drift_metric`` gains ``drift_bias``;
    * **stream boundary** — each stream record is dropped with
      probability ``drop_rate`` or malformed (missing / non-numeric /
      negative fields) with probability ``malform_rate``.
    """

    brigade_fraction: float = 0.0
    brigade_days: int = 3
    ring_size: int = 3
    template_count: int = 2
    fraud_fraction: float = 0.0
    fraud_rating: int = 1
    fraud_cohort: int = 4
    drift_fraction: float = 0.0
    drift_metric: str = "latency_ms"
    drift_bias: float = 40.0
    malform_rate: float = 0.0
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "brigade_fraction", "fraud_fraction", "drift_fraction",
            "malform_rate", "drop_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if self.malform_rate + self.drop_rate > 1.0:
            raise ConfigError("malform_rate + drop_rate must be <= 1")
        if self.brigade_days < 1:
            raise ConfigError("brigade_days must be >= 1")
        if self.ring_size < 1:
            raise ConfigError("ring_size must be >= 1")
        if self.template_count < 1:
            raise ConfigError("template_count must be >= 1")
        if self.fraud_rating not in (1, 2, 3, 4, 5):
            raise ConfigError("fraud_rating must be a 1-5 star value")
        if self.fraud_cohort < 1:
            raise ConfigError("fraud_cohort must be >= 1")
        if not self.drift_metric:
            raise ConfigError("drift_metric must be non-empty")


@dataclass(frozen=True)
class ContaminatedCorpus:
    """A corpus with brigade spam injected, plus the ground truth."""

    corpus: Any
    injected_post_ids: Tuple[str, ...]
    ring_authors: Tuple[str, ...]

    @property
    def n_injected(self) -> int:
        return len(self.injected_post_ids)


@dataclass(frozen=True)
class ContaminatedCalls:
    """A call dataset with fraud/drift applied, plus the ground truth.

    ``fraud_sessions`` / ``drifted_sessions`` are ``(call_id, user_id)``
    pairs identifying exactly which sessions were rewritten.
    """

    dataset: Any
    fraud_users: Tuple[str, ...]
    fraud_sessions: Tuple[Tuple[str, str], ...]
    drifted_sessions: Tuple[Tuple[str, str], ...]

    @property
    def n_fraud(self) -> int:
        return len(self.fraud_sessions)

    @property
    def n_drifted(self) -> int:
        return len(self.drifted_sessions)


@dataclass(frozen=True)
class MangledStream:
    """Stream-boundary fault output: raw dicts, some mangled or gone."""

    records: Tuple[dict, ...]
    dropped: int
    malformed: int


#: The spam a brigade posts: strongly negative under the offline
#: lexicon, repetitive by design (duplicate-text fingerprinting is one
#: of the trust signals the integrity layer must exercise).
BRIGADE_TEMPLATES: Tuple[Tuple[str, str], ...] = (
    ("service is garbage again",
     "Completely unusable tonight. Terrible latency, terrible speeds, "
     "absolutely the worst connection I have ever paid for!!"),
    ("this network is a scam",
     "Horrible. Awful. Useless. Every single call drops and support is "
     "a joke. Total garbage, do not buy!!"),
    ("worst provider ever",
     "Unusable and broken for days. Pathetic speeds, terrible support, "
     "an absolutely horrible waste of money!!"),
    ("cancel this trash",
     "Garbage uptime, awful latency, worst experience imaginable. "
     "Completely broken and totally unacceptable!!"),
)


class DataFaultInjector:
    """The corpus/stream contamination seam of a :class:`FaultPlan`.

    Produced by :meth:`FaultPlan.data_faults`.  Every method is a pure
    transform — the clean input is never mutated — and every random
    choice comes from the plan's seeded substreams for ``name``, so the
    same plan contaminates the same artifacts identically, which is
    what lets the ε-contamination soak pin its counters byte-for-byte.
    """

    def __init__(self, plan: "FaultPlan", name: str, spec: DataFaultSpec) -> None:
        self._plan = plan
        self._name = name
        self.spec = spec

    def contaminate_corpus(self, corpus: Any) -> ContaminatedCorpus:
        """Inject a seeded brigade of template spam into a corpus.

        Returns a *new* corpus (same config) holding the clean posts
        plus ``round(brigade_fraction * len(corpus))`` injected ones,
        concentrated on ``brigade_days`` seeded days and authored by a
        ``ring_size`` bot ring cycling ``template_count`` templates.
        """
        import datetime as dt

        from repro.social.corpus import RedditCorpus
        from repro.social.schema import Post

        spec = self.spec
        n_inject = int(round(spec.brigade_fraction * len(corpus)))
        clean_posts = corpus.posts()
        if n_inject == 0:
            self._plan.log.append((self._name, "data.brigade.0"))
            return ContaminatedCorpus(
                corpus=RedditCorpus(clean_posts, corpus.config),
                injected_post_ids=(), ring_authors=(),
            )
        stream = self._plan._stream(self._name + "#brigade")
        config = corpus.config
        span_days = (config.span_end - config.span_start).days + 1
        day_offsets: List[int] = []
        while len(day_offsets) < min(spec.brigade_days, span_days):
            offset = int(float(stream.random()) * span_days)
            if offset not in day_offsets:
                day_offsets.append(offset)
        templates = BRIGADE_TEMPLATES[
            : min(spec.template_count, len(BRIGADE_TEMPLATES))
        ]
        ring = tuple(
            f"{self._name}-ring-{j}" for j in range(spec.ring_size)
        )
        injected: List[Post] = []
        for i in range(n_inject):
            day = day_offsets[int(float(stream.random()) * len(day_offsets))]
            second = int(float(stream.random()) * 86400)
            title, text = templates[i % len(templates)]
            injected.append(Post(
                post_id=f"{self._name}-brigade-{i:05d}",
                created=(
                    dt.datetime.combine(
                        config.span_start, dt.time.min
                    ) + dt.timedelta(days=day, seconds=second)
                ),
                author=ring[i % len(ring)],
                title=title,
                text=text,
                upvotes=int(float(stream.random()) * 3),
                n_comments=0,
                topic="outage_report",
            ))
        self._plan.log.append((self._name, f"data.brigade.{n_inject}"))
        return ContaminatedCorpus(
            corpus=RedditCorpus(clean_posts + injected, config),
            injected_post_ids=tuple(p.post_id for p in injected),
            ring_authors=ring,
        )

    def contaminate_calls(self, dataset: Any) -> ContaminatedCalls:
        """Apply rating fraud and sensor drift to a call dataset.

        Fraud rewrites a session's rating to ``fraud_rating`` and its
        author to one of ``fraud_cohort`` shill handles; drift adds
        ``drift_bias`` to every aggregate of ``drift_metric``.  Both
        are per-session seeded coin flips over a *new* dataset — clean
        records are reused, rewritten ones rebuilt via ``replace``.
        """
        from dataclasses import replace

        from repro.telemetry.store import CallDataset

        spec = self.spec
        stream = self._plan._stream(self._name + "#calls")
        fraud_users = tuple(
            f"{self._name}-shill-{k}" for k in range(spec.fraud_cohort)
        )
        fraud_sessions: List[Tuple[str, str]] = []
        drifted_sessions: List[Tuple[str, str]] = []
        new_calls = []
        for call in dataset:
            participants = []
            changed = False
            for p in call.participants:
                if (
                    spec.fraud_fraction > 0
                    and float(stream.random()) < spec.fraud_fraction
                ):
                    shill = fraud_users[
                        int(float(stream.random()) * len(fraud_users))
                    ]
                    p = replace(p, rating=spec.fraud_rating, user_id=shill)
                    fraud_sessions.append((call.call_id, p.user_id))
                    changed = True
                elif (
                    spec.drift_fraction > 0
                    and float(stream.random()) < spec.drift_fraction
                ):
                    network = {
                        metric: dict(stats)
                        for metric, stats in p.network.items()
                    }
                    if spec.drift_metric in network:
                        network[spec.drift_metric] = {
                            stat: value + spec.drift_bias
                            for stat, value in network[spec.drift_metric].items()
                        }
                    p = replace(p, network=network)
                    drifted_sessions.append((call.call_id, p.user_id))
                    changed = True
                participants.append(p)
            new_calls.append(
                replace(call, participants=participants) if changed else call
            )
        self._plan.log.append((
            self._name,
            f"data.calls.fraud{len(fraud_sessions)}"
            f".drift{len(drifted_sessions)}",
        ))
        return ContaminatedCalls(
            dataset=CallDataset(new_calls),
            fraud_users=fraud_users,
            fraud_sessions=tuple(fraud_sessions),
            drifted_sessions=tuple(drifted_sessions),
        )

    def mangle_stream(self, records: Iterable[Any]) -> MangledStream:
        """Mangle stream records at the ingestion boundary.

        Each record (a dict, or anything with ``to_dict``) is dropped with
        probability ``drop_rate``, malformed with probability
        ``malform_rate`` (a seeded pick among: value field missing,
        value non-numeric, event time negative, metric missing), else
        passed through intact — always as raw dicts, the wire form a
        boundary parser must validate before trusting.
        """
        spec = self.spec
        stream = self._plan._stream(self._name + "#boundary")
        out: List[dict] = []
        dropped = 0
        malformed = 0
        for record in records:
            u = float(stream.random())
            if u < spec.drop_rate:
                dropped += 1
                continue
            data = dict(
                record if isinstance(record, dict) else record.to_dict()
            )
            if u < spec.drop_rate + spec.malform_rate:
                mode = int(float(stream.random()) * 4)
                if mode == 0:
                    data.pop("value", None)
                elif mode == 1:
                    data["value"] = "not-a-number"
                elif mode == 2:
                    data["event_time_s"] = -abs(
                        float(data.get("event_time_s", 1.0))
                    ) - 1.0
                else:
                    data.pop("metric", None)
                malformed += 1
            out.append(data)
        self._plan.log.append((
            self._name,
            f"data.boundary.drop{dropped}.malform{malformed}",
        ))
        return MangledStream(
            records=tuple(out), dropped=dropped, malformed=malformed
        )


#: The sentinel a corrupt-output fault substitutes for a shard's result
#: list — deliberately not a list, so the executor's integrity check
#: (a worker must return a list) trips and requeues the shard.
CORRUPT_SHARD_OUTPUT = "\x00corrupt-shard-output\x00"


def _fault_matches(entries: Tuple, shard_index: int, attempt: int) -> bool:
    """True when ``(shard_index, attempt)`` is scheduled in ``entries``.

    An entry is either a bare shard index (fault fires on *every*
    attempt of that shard) or an ``(index, attempt)`` pair (attempts
    count from 1 — fault fires on exactly that attempt).
    """
    for entry in entries:
        if isinstance(entry, tuple):
            if tuple(entry) == (shard_index, attempt):
                return True
        elif int(entry) == shard_index:
            return True
    return False


@dataclass(frozen=True)
class WorkerFaultSpec:
    """How pool workers should misbehave, keyed by shard and attempt.

    The four production failure modes of a parallel run, made
    schedulable: a worker that *crashes* (raises / is OOM-killed), one
    that *hangs* (never returns — only the watchdog reclaims it), one
    that is merely *slow* (finishes past its budget), and one that
    returns *corrupt output* (a truncated/garbled result instead of the
    shard's record list).

    Each ``*_on`` tuple holds bare shard indices ("every attempt") or
    ``(shard_index, attempt)`` pairs (attempts count from 1), so a test
    can express "crash shard 3 on its first attempt only" and prove the
    retry produces byte-identical output.
    """

    crash_on: Tuple = ()
    hang_on: Tuple = ()
    slow_on: Tuple = ()
    corrupt_on: Tuple = ()
    slow_s: float = 0.0

    def __post_init__(self) -> None:
        if self.slow_s < 0:
            raise ConfigError("slow_s must be non-negative")

    def action(self, shard_index: int, attempt: int) -> str:
        """The scheduled action for this (shard, attempt): most severe wins."""
        if _fault_matches(self.crash_on, shard_index, attempt):
            return "crash"
        if _fault_matches(self.hang_on, shard_index, attempt):
            return "hang"
        if _fault_matches(self.slow_on, shard_index, attempt):
            return "slow"
        return "ok"

    def corrupts(self, shard_index: int, attempt: int) -> bool:
        return _fault_matches(self.corrupt_on, shard_index, attempt)


class ShardFaultInjector:
    """The chaos seam :class:`repro.perf.parallel.ParallelMap` consumes.

    Produced by :meth:`FaultPlan.worker_faults`; shares the plan's
    :class:`ManualClock` and appends every injected fault to the plan's
    log as ``(name, "shard<k>.<action>")`` so tests can assert the exact
    fault sequence.
    """

    def __init__(self, plan: "FaultPlan", name: str, spec: WorkerFaultSpec) -> None:
        self._plan = plan
        self._name = name
        self.spec = spec

    @property
    def clock(self) -> ManualClock:
        return self._plan.clock

    @property
    def slow_s(self) -> float:
        return self.spec.slow_s

    def action(self, shard_index: int, attempt: int) -> str:
        action = self.spec.action(shard_index, attempt)
        if action != "ok":
            self._plan.log.append((self._name, f"shard{shard_index}.{action}"))
        return action

    def deliver(self, shard_index: int, attempt: int, result: Any) -> Any:
        """Pass a shard result through, corrupting it when scheduled."""
        if self.spec.corrupts(shard_index, attempt):
            self._plan.log.append((self._name, f"shard{shard_index}.corrupt"))
            return CORRUPT_SHARD_OUTPUT
        return result


def always_slow(slow_s: float) -> FaultSpec:
    """A spec that stalls every call for ``slow_s`` simulated seconds."""
    return FaultSpec(slow_rate=1.0, slow_s=slow_s)


class FaultPlan:
    """Seeded fault schedules for any number of named targets.

    >>> clock = ManualClock()
    >>> plan = FaultPlan(seed=7, clock=clock)
    >>> flaky = plan.wrap_source("feed", lambda: 42,
    ...                          FaultSpec(fail_rate=0.5))
    """

    def __init__(self, seed: int, clock: Optional[ManualClock] = None) -> None:
        self.seed = int(seed)
        self.clock = clock or ManualClock()
        self.log: List[Tuple[str, str]] = []
        self._streams: dict = {}

    def _stream(self, name: str):
        if name not in self._streams:
            self._streams[name] = rng_mod.derive(
                self.seed, "resilience.faults", name
            )
        return self._streams[name]

    def _action(self, name: str, spec: FaultSpec) -> str:
        u = float(self._stream(name).random())
        if u < spec.fail_rate:
            return "fail"
        if u < spec.fail_rate + spec.slow_rate:
            return "slow"
        return "ok"

    def wrap_source(
        self,
        name: str,
        fn: Callable[[], Any],
        spec: FaultSpec,
    ) -> Callable[[], Any]:
        """Wrap a source callable with this plan's schedule for ``name``."""

        def wrapped() -> Any:
            action = self._action(name, spec)
            self.log.append((name, action))
            if action == "fail":
                raise InjectedFault(f"injected failure in source {name!r}")
            if action == "slow":
                self.clock.advance(spec.slow_s)
            return fn()

        return wrapped

    def wrap_records(
        self,
        name: str,
        records: Iterable[Any],
        spec: FaultSpec,
        corrupt: Optional[Callable[[Any], Any]] = None,
    ) -> Iterator[Any]:
        """Yield ``records`` with some deterministically corrupted.

        ``corrupt`` maps a clean record to its corrupted form; the
        default replaces it with a sentinel string no schema accepts.
        """
        stream = self._stream(name + "#records")
        for record in records:
            if float(stream.random()) < spec.corrupt_rate:
                self.log.append((name, "corrupt"))
                yield corrupt(record) if corrupt else "\x00corrupt\x00"
            else:
                yield record

    def corrupt_jsonl_lines(
        self, name: str, lines: Iterable[str], spec: FaultSpec
    ) -> Iterator[str]:
        """Deterministically truncate JSONL lines (for salvage tests)."""
        stream = self._stream(name + "#lines")
        for line in lines:
            if float(stream.random()) < spec.corrupt_rate and line.strip():
                self.log.append((name, "corrupt"))
                yield line[: max(1, len(line) // 2)]
            else:
                yield line

    def worker_faults(
        self, name: str, spec: WorkerFaultSpec
    ) -> ShardFaultInjector:
        """A worker-level injector for the sharded executor.

        Pass the result as ``ParallelMap(chaos=...)``; the executor then
        runs deterministically in-process, simulating worker crashes,
        hangs, slowness and corrupt output on this plan's clock.
        """
        return ShardFaultInjector(self, name, spec)

    def data_faults(
        self, name: str, spec: DataFaultSpec
    ) -> DataFaultInjector:
        """The adversarial-content seam: contaminate data, not processes.

        Returns a :class:`DataFaultInjector` whose transforms inject
        brigade spam into a corpus, rating fraud / sensor drift into a
        call dataset, and malformed or dropped fields into a stream —
        all from this plan's seeded substreams for ``name``, so a soak
        can pin the contaminated artifacts byte-for-byte per seed.
        """
        return DataFaultInjector(self, name, spec)

    def load_spikes(
        self, name: str, *specs: LoadSpikeSpec
    ) -> Tuple[Arrival, ...]:
        """Deterministic arrival schedule for the serving soak harness.

        Each spec contributes a Poisson-ish burst (exponential gaps from
        this plan's seeded substream for ``name``); overlapping bursts
        are merged into one time-ordered tuple.  The same seed always
        produces the same schedule — which is what lets the soak test
        assert identical per-class counters across runs.
        """
        if not specs:
            raise ConfigError("load_spikes needs at least one spec")
        stream = self._stream(name + "#load")
        arrivals: List[Arrival] = []
        for spec in specs:
            t = spec.start_s
            while True:
                t += float(stream.exponential(1.0 / spec.rate_per_s))
                if t > spec.start_s + spec.duration_s:
                    break
                arrivals.append(Arrival(
                    at_s=t,
                    priority=spec.pick_priority(float(stream.random())),
                    deadline_s=spec.deadline_s,
                ))
        arrivals.sort(key=lambda a: (a.at_s, a.priority))
        self.log.append((name, f"load_spikes.{len(arrivals)}"))
        return tuple(arrivals)

    def cluster_load_spikes(
        self,
        name: str,
        *specs: LoadSpikeSpec,
        tenant_mix: Tuple[Tuple[str, float], ...] = (("default", 1.0),),
        key_space: int = 512,
    ) -> Tuple[ClusterArrival, ...]:
        """Deterministic arrival schedule for the *cluster* soak harness.

        Like :meth:`load_spikes`, but each arrival additionally draws a
        tenant (weighted by ``tenant_mix``) and a routing key from a
        pool of ``key_space`` synthetic users — both from this plan's
        seeded substream, so the same seed produces the same tenants
        hitting the same replicas in the same order.
        """
        if not specs:
            raise ConfigError("cluster_load_spikes needs at least one spec")
        if not tenant_mix:
            raise ConfigError("tenant_mix must not be empty")
        for tenant, weight in tenant_mix:
            if not tenant or weight < 0:
                raise ConfigError(
                    "tenant_mix entries must be (name, weight >= 0)"
                )
        if sum(w for _, w in tenant_mix) <= 0:
            raise ConfigError("tenant_mix weights must sum to > 0")
        if key_space < 1:
            raise ConfigError("key_space must be >= 1")
        stream = self._stream(name + "#cluster-load")
        arrivals: List[ClusterArrival] = []
        for spec in specs:
            t = spec.start_s
            while True:
                t += float(stream.exponential(1.0 / spec.rate_per_s))
                if t > spec.start_s + spec.duration_s:
                    break
                arrivals.append(ClusterArrival(
                    at_s=t,
                    priority=spec.pick_priority(float(stream.random())),
                    deadline_s=spec.deadline_s,
                    tenant=pick_weighted(tenant_mix, float(stream.random())),
                    key=f"user-{int(float(stream.random()) * key_space)}",
                ))
        arrivals.sort(key=lambda a: (a.at_s, a.priority, a.tenant, a.key))
        self.log.append((name, f"cluster_load_spikes.{len(arrivals)}"))
        return tuple(arrivals)

    def replica_faults(
        self, name: str, *specs: ReplicaFaultSpec
    ) -> Tuple[ReplicaFaultEvent, ...]:
        """Expand replica fault specs into a time-ordered event timeline.

        Crash and hang specs with ``down_s > 0`` contribute a matching
        ``recover`` event; ``slow`` contributes a ``slow_start`` /
        ``slow_end`` pair; ``flap`` unrolls into repeated crash/recover
        cycles.  The expansion is a pure function of the specs, so the
        same plan always replays the same outage story; the events are
        appended to the plan log for test assertions.
        """
        if not specs:
            raise ConfigError("replica_faults needs at least one spec")
        events: List[ReplicaFaultEvent] = []
        for spec in specs:
            if spec.kind in ("crash", "hang"):
                events.append(ReplicaFaultEvent(
                    at_s=spec.at_s, replica=spec.replica, action=spec.kind,
                ))
                if spec.down_s > 0:
                    events.append(ReplicaFaultEvent(
                        at_s=spec.at_s + spec.down_s,
                        replica=spec.replica, action="recover",
                    ))
            elif spec.kind == "slow":
                events.append(ReplicaFaultEvent(
                    at_s=spec.at_s, replica=spec.replica,
                    action="slow_start", slow_extra_s=spec.slow_extra_s,
                ))
                events.append(ReplicaFaultEvent(
                    at_s=spec.at_s + spec.down_s,
                    replica=spec.replica, action="slow_end",
                ))
            else:  # flap
                for cycle in range(spec.flaps):
                    start = spec.at_s + cycle * spec.period_s
                    events.append(ReplicaFaultEvent(
                        at_s=start, replica=spec.replica, action="crash",
                    ))
                    events.append(ReplicaFaultEvent(
                        at_s=start + spec.down_s,
                        replica=spec.replica, action="recover",
                    ))
        events.sort(key=lambda e: (e.at_s, e.replica, e.action))
        self.log.append((name, f"replica_faults.{len(events)}"))
        return tuple(events)

    def stream_faults(
        self, name: str, records: Iterable[Any], spec: StreamFaultSpec
    ) -> Tuple[StreamDelivery, ...]:
        """Turn an event-time-ordered record list into an arrival schedule.

        Each record (any object with an ``event_time_s`` attribute) is
        assigned a delivery time by applying the spec's delay, reorder,
        skew, gap and duplication faults, with every draw taken from
        this plan's seeded substream for ``name`` — the same seed always
        mangles the stream the same way, so a soak can assert exact
        late/duplicate counts.  The result is sorted by
        ``(at_s, seq)``: arrival order, totally ordered.
        """

        def held(at_s: float) -> float:
            for start, duration in spec.gap_windows:
                if start <= at_s < start + duration:
                    return start + duration
            return at_s

        stream = self._stream(name + "#stream")
        deliveries: List[StreamDelivery] = []
        seq = 0
        for record in records:
            t = float(record.event_time_s)
            delay = float(stream.random()) * spec.base_delay_s
            injected: List[str] = []
            if (
                spec.reorder_rate > 0
                and float(stream.random()) < spec.reorder_rate
            ):
                delay += float(stream.random()) * spec.reorder_extra_s
                injected.append("reorder")
            for start, duration, skew in spec.skew_windows:
                if start <= t < start + duration:
                    delay += skew
                    injected.append("skew")
            at_s = t + delay
            if held(at_s) != at_s:
                at_s = held(at_s)
                injected.append("gap")
            deliveries.append(StreamDelivery(
                at_s=at_s, record=record, seq=seq,
                injected=tuple(injected),
            ))
            seq += 1
            if (
                spec.duplicate_rate > 0
                and float(stream.random()) < spec.duplicate_rate
            ):
                dup_at = at_s + (
                    float(stream.random()) * spec.duplicate_delay_s
                )
                dup_injected = ["duplicate"]
                if held(dup_at) != dup_at:
                    dup_at = held(dup_at)
                    dup_injected.append("gap")
                deliveries.append(StreamDelivery(
                    at_s=dup_at, record=record, seq=seq,
                    injected=tuple(dup_injected), duplicate=True,
                ))
                seq += 1
        deliveries.sort(key=lambda d: (d.at_s, d.seq))
        self.log.append((name, f"stream_faults.{len(deliveries)}"))
        return tuple(deliveries)

    def torn_write(self, name: str, path: Any, data: bytes) -> int:
        """Simulate a crash mid-write: persist only a prefix of ``data``.

        The cut point is drawn from this plan's seeded stream for
        ``name`` (never zero bytes, never the full payload for data of
        two or more bytes), so the same seed tears the same byte — which
        lets the salvage regression tests pin their truncated tail.
        Returns the number of bytes actually written.
        """
        stream = self._stream(name + "#torn")
        if len(data) < 2:
            cut = len(data)
        else:
            cut = 1 + int(float(stream.random()) * (len(data) - 1))
        with open(path, "wb") as f:
            f.write(data[:cut])
        self.log.append((name, "torn"))
        return cut

    def torn_append(self, name: str, path: Any, data: bytes) -> int:
        """Simulate a crash mid-*append*: the file keeps its existing
        contents and gains only a prefix of ``data``.

        Same seeded cut-point scheme as :meth:`torn_write`, but opened
        in append mode — the failure an append-only journal actually
        suffers, where everything before the torn tail is intact.
        Returns the number of bytes appended.
        """
        stream = self._stream(name + "#torn-append")
        if len(data) < 2:
            cut = len(data)
        else:
            cut = 1 + int(float(stream.random()) * (len(data) - 1))
        with open(path, "ab") as f:
            f.write(data[:cut])
        self.log.append((name, "torn_append"))
        return cut

    def actions(self, name: str, spec: FaultSpec, n: int) -> Tuple[str, ...]:
        """Preview the next ``n`` actions for a *fresh* target name.

        Uses the same derivation as :meth:`wrap_source`, so a plan with
        the same seed reports the same sequence — the determinism the
        test suite pins down.
        """
        preview = FaultPlan(self.seed)
        return tuple(preview._action(name, spec) for _ in range(n))

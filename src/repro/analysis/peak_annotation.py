"""Peak annotation: word clouds + news search (Fig. 5a labels, Fig. 5b).

§4.1: *"For each day, we: (a) generate word clouds from all posts
published, and (b) discover relevant news articles by searching online
for the keywords (top 3 uni-grams from word clouds), with the search
query appended with 'Starlink', for the custom date.  This pipeline
enables the framework to annotate sentiment peaks with news that drive
those peaks."*

The interesting case is the one where this *fails*: the 22 Apr '22 peak
has a clear word cloud (led by "outage") but no news — the annotation
returns an empty article list and the peak is flagged unexplained.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import AnalysisError
from repro.nlp.news import NewsArticle, NewsIndex
from repro.nlp.wordcloud import WordCloud, build_wordcloud
from repro.social.corpus import RedditCorpus


@dataclass(frozen=True)
class PeakAnnotation:
    """One annotated sentiment peak."""

    day: dt.date
    cloud: WordCloud
    search_keywords: Tuple[str, ...]
    articles: Tuple[NewsArticle, ...]

    @property
    def explained_by_news(self) -> bool:
        return len(self.articles) > 0

    @property
    def headline(self) -> Optional[str]:
        return self.articles[0].headline if self.articles else None


def annotate_peak(
    corpus: RedditCorpus,
    index: NewsIndex,
    day: dt.date,
    top_k_keywords: int = 3,
    window_days: int = 3,
) -> PeakAnnotation:
    """Build the cloud for a day and search the news for its top terms."""
    posts = corpus.posts_on(day)
    if not posts:
        raise AnalysisError(f"no posts on {day} to annotate")
    cloud = build_wordcloud(p.full_text for p in posts)
    keywords = tuple(w for w, _ in cloud.top_unigrams(top_k_keywords))
    if not keywords:
        raise AnalysisError(f"word cloud for {day} is empty")
    # The paper appends 'Starlink' to the query; with the generic domain
    # word stop-listed in clouds, adding it back scopes the news search.
    articles = tuple(
        index.search(list(keywords), day, window_days=window_days)
    )
    return PeakAnnotation(
        day=day,
        cloud=cloud,
        search_keywords=keywords,
        articles=articles,
    )

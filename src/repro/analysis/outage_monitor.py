"""Fig. 6: day-wise outage-keyword occurrences in negative threads.

§4.1: *"Fig. 6 plots the day-wise occurrences of these keywords in these
filtered Reddit threads.  Note that these occurrences are only counted if
the user sentiment attached to them was negative to avoid false
positives."*  The negative-sentiment filter is a parameter here because
DESIGN.md calls its ablation out: without it, positive posts that merely
mention outage vocabulary ("no outages since I got the dish!") pollute
the series.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.timeline import DailySeries
from repro.errors import AnalysisError
from repro.nlp.keywords import OUTAGE_KEYWORDS, KeywordDictionary
from repro.nlp.sentiment import SentimentAnalyzer, SentimentScores
from repro.perf.columnar import corpus_columns
from repro.social.corpus import RedditCorpus


@dataclass
class OutageSeries:
    """Daily keyword occurrences plus the contributing thread count."""

    occurrences: DailySeries
    threads: DailySeries

    def top_spike_days(
        self, k: int = 2, min_separation_days: int = 7
    ) -> List[Tuple[dt.date, float]]:
        return self.occurrences.top_peaks(k, min_separation_days)

    def transient_peak_days(
        self,
        spike_threshold: float,
        floor: float = 1.0,
    ) -> List[dt.date]:
        """Days with modest but non-trivial keyword activity.

        These are the "numerous shorter peaks ... correspond[ing] to local
        transient outages" — above the noise floor but below the headline
        spikes.
        """
        if spike_threshold <= floor:
            raise AnalysisError("spike_threshold must exceed floor")
        return [
            day for day, value in self.occurrences.items()
            if floor < value < spike_threshold
        ]


def outage_keyword_series(
    corpus: RedditCorpus,
    dictionary: KeywordDictionary = OUTAGE_KEYWORDS,
    scores: Optional[Dict[str, SentimentScores]] = None,
    negative_only: bool = True,
    analyzer: Optional[SentimentAnalyzer] = None,
) -> OutageSeries:
    """Count outage keywords per day across (optionally negative) threads.

    Args:
        scores: pre-computed per-post sentiment (from
            :func:`repro.analysis.sentiment_timeline.sentiment_timeline`);
            computed on the fly when absent.
        negative_only: apply the paper's negative-sentiment filter
            (threads with positive or neutral sentiment are dropped).
    """
    start, end = corpus.config.span_start, corpus.config.span_end
    occurrences = DailySeries.zeros(start, end)
    threads = DailySeries.zeros(start, end)
    if (
        negative_only
        and scores is None
        and isinstance(corpus, RedditCorpus)
        and (analyzer is None or isinstance(analyzer, SentimentAnalyzer))
    ):
        # Columnar path: the shared sentiment block replaces per-post
        # scoring; the `negative_dominant` mask is the same comparison
        # as the reject filter below, so only keyword counting remains.
        cols = corpus_columns(corpus)
        block = cols.sentiment(analyzer)
        for i in np.flatnonzero(block.negative_dominant).tolist():
            post = cols.posts[i]
            count = dictionary.count_matches(post.thread_text)
            if count > 0:
                occurrences.add(post.date, count)
                threads.add(post.date)
        return OutageSeries(occurrences=occurrences, threads=threads)

    analyzer = analyzer or SentimentAnalyzer()
    for post in corpus:
        if negative_only:
            s = scores.get(post.post_id) if scores else None
            if s is None:
                s = analyzer.score(post.full_text)
            if s.negative <= max(s.positive, s.neutral):
                continue
        count = dictionary.count_matches(post.thread_text)
        if count > 0:
            occurrences.add(post.date, count)
            threads.add(post.date)
    return OutageSeries(occurrences=occurrences, threads=threads)

"""§4.2 "Following the Shifting Fulcrum": sentiment vs speed over time.

The normalized strong positive score:

    Pos = strong_positive / (strong_positive + strong_negative)

is computed per month over the posts that share speed-test reports, then
compared with the extracted speed track.  Three paper claims are checked
by the benchmark on top of this module:

* Pos broadly follows the speed curve (positive correlation);
* the Dec '21 vs Apr '21 exception: higher speed, drastically lower Pos
  (expectations had been conditioned upward by the Sep '21 era);
* the Mar–Dec '22 inversion: speeds fall, Pos recovers (users get
  conditioned to less).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.stats import pearson
from repro.core.timeline import Month, MonthlySeries, align_series, month_of
from repro.errors import AnalysisError
from repro.nlp.sentiment import SentimentAnalyzer, SentimentScores
from repro.perf.columnar import corpus_columns
from repro.social.corpus import RedditCorpus


@dataclass
class FulcrumResult:
    """Monthly Pos score aligned with the speed track."""

    pos: MonthlySeries
    speed: MonthlySeries

    def correlation(self) -> float:
        """Pearson correlation between Pos and speed over common months."""
        _, pos_vals, speed_vals = align_series(self.pos, self.speed)
        if len(pos_vals) < 3:
            raise AnalysisError("too few common months for correlation")
        return pearson(pos_vals, speed_vals)

    def exception_dec21_vs_apr21(self, window: bool = True) -> Dict[str, float]:
        """The first conditioning exception's raw numbers.

        With ``window`` (the default), each month is represented by the
        mean over its season (Mar–May '21 and Oct–Dec '21), which averages
        out the sampling noise of monthly medians built from ~70 shared
        screenshots; ``window=False`` gives the raw single-month values.
        """
        if window:
            spring = [(2021, 3), (2021, 4), (2021, 5)]
            q4 = [(2021, 10), (2021, 11), (2021, 12)]
            return {
                "speed_apr21": _window_mean(self.speed, spring),
                "speed_dec21": _window_mean(self.speed, q4),
                "pos_apr21": _window_mean(self.pos, spring),
                "pos_dec21": _window_mean(self.pos, q4),
            }
        return {
            "speed_apr21": self.speed[(2021, 4)],
            "speed_dec21": self.speed[(2021, 12)],
            "pos_apr21": self.pos[(2021, 4)],
            "pos_dec21": self.pos[(2021, 12)],
        }

    def inversion_2022(self) -> Dict[str, float]:
        """Speed and Pos trends over Mar–Dec '22 (expect -, +)."""
        return {
            "speed_trend": self.speed.slice((2022, 3), (2022, 12)).trend(),
            "pos_trend": self.pos.slice((2022, 3), (2022, 12)).trend(),
        }


def _window_mean(series: MonthlySeries, months) -> float:
    values = [series[m] for m in months]
    finite = [v for v in values if not np.isnan(v)]
    if not finite:
        raise AnalysisError(f"no finite values in window {months}")
    return float(np.mean(finite))


def pos_vs_speed(
    corpus: RedditCorpus,
    speed: MonthlySeries,
    scores: Optional[Dict[str, SentimentScores]] = None,
    analyzer: Optional[SentimentAnalyzer] = None,
    min_strong_posts: int = 5,
) -> FulcrumResult:
    """Compute monthly Pos over speed-share posts and align with speeds.

    §4.2 defines Pos over posts *that share Starlink speed-test reports*,
    using strong scores only — "thus filtering out edge cases when
    identifying the sentiment is hard."
    """
    strong_pos: Dict[Month, int] = {}
    strong_neg: Dict[Month, int] = {}
    if (
        scores is None
        and isinstance(corpus, RedditCorpus)
        and (analyzer is None or isinstance(analyzer, SentimentAnalyzer))
    ):
        # Columnar path: reuse the shared sentiment block and month
        # column over just the speed-share rows.
        cols = corpus_columns(corpus)
        block = cols.sentiment(analyzer)
        for i in cols.speed_indices.tolist():
            month = cols.month[i]
            if block.strong_positive[i]:
                strong_pos[month] = strong_pos.get(month, 0) + 1
            elif block.strong_negative[i]:
                strong_neg[month] = strong_neg.get(month, 0) + 1
    else:
        analyzer = analyzer or SentimentAnalyzer()
        for post in corpus.speed_shares():
            s = scores.get(post.post_id) if scores else None
            if s is None:
                s = analyzer.score(post.full_text)
            month = month_of(post.date)
            if s.is_strong_positive:
                strong_pos[month] = strong_pos.get(month, 0) + 1
            elif s.is_strong_negative:
                strong_neg[month] = strong_neg.get(month, 0) + 1

    values: Dict[Month, float] = {}
    for month in set(strong_pos) | set(strong_neg):
        p = strong_pos.get(month, 0)
        n = strong_neg.get(month, 0)
        if p + n >= min_strong_posts:
            values[month] = p / (p + n)
    if not values:
        raise AnalysisError(
            "no month had enough strong-sentiment speed-share posts"
        )
    pos = MonthlySeries.from_mapping(
        values, start=speed.start, end=speed.end
    )
    return FulcrumResult(pos=pos, speed=speed)

"""The §4 analysis pipelines: explicit feedback from social media.

Each module is one analysis from the paper, operating only on post text
and public metadata (never on the generator's hidden ground truth):

* :mod:`repro.analysis.sentiment_timeline` — daily strong-sentiment
  counts and peak extraction (Fig. 5a).
* :mod:`repro.analysis.peak_annotation` — word clouds + news search per
  peak (Fig. 5a annotations and the Fig. 5b cloud).
* :mod:`repro.analysis.outage_monitor` — outage-keyword counting over
  negative threads (Fig. 6).
* :mod:`repro.analysis.speed_tracker` — OCR over shared screenshots →
  monthly median downlink with subsample-stability check (Fig. 7).
* :mod:`repro.analysis.fulcrum` — normalized positive sentiment (Pos) vs
  speed, with the conditioning exceptions (§4.2 "the wheel of time").
"""

from repro.analysis.fulcrum import FulcrumResult, pos_vs_speed
from repro.analysis.outage_monitor import OutageSeries, outage_keyword_series
from repro.analysis.peak_annotation import PeakAnnotation, annotate_peak
from repro.analysis.sentiment_timeline import SentimentTimeline, sentiment_timeline
from repro.analysis.speed_tracker import SpeedTrack, track_speeds

__all__ = [
    "FulcrumResult",
    "OutageSeries",
    "PeakAnnotation",
    "SentimentTimeline",
    "SpeedTrack",
    "annotate_peak",
    "outage_keyword_series",
    "pos_vs_speed",
    "sentiment_timeline",
    "track_speeds",
]

"""Fig. 7: monthly median downlink speed from OCR'd screenshots.

§4.2: screenshots across providers are OCR'd, downlink speeds extracted,
and for each month the median across all shared tests is plotted.  The
paper also checks stability — *"We also plot the monthly median downlink
speeds with 95% and 90% of the monthly speed data picked uniformly at
random — the plots closely follow each other showing that the observed
medians are considerably stable."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.timeline import Month, MonthlySeries, month_of
from repro.errors import AnalysisError, ExtractionError
from repro.ocr.engine import OcrEngine
from repro.ocr.noise import NoiseModel
from repro.ocr.render import render_screenshot
from repro.perf.columnar import corpus_columns
from repro.rng import derive
from repro.social.corpus import RedditCorpus


@dataclass
class SpeedTrack:
    """Monthly medians plus extraction bookkeeping.

    Attributes:
        median: monthly median downlink (Mbps) from extracted reports.
        subsampled: the stability variants, keyed by kept fraction.
        n_reports: usable extractions per month.
        n_shared / n_extracted: pipeline funnel totals.
        by_provider: per-detected-provider monthly medians — the paper
            aggregates "across test providers like Ookla, Fast, Starlink
            itself, and others", which is only sound if the providers
            agree; :meth:`provider_agreement` quantifies that.
    """

    median: MonthlySeries
    subsampled: Dict[float, MonthlySeries]
    n_reports: Dict[Month, int]
    n_shared: int
    n_extracted: int
    by_provider: Dict[str, MonthlySeries]

    @property
    def extraction_rate(self) -> float:
        if self.n_shared == 0:
            raise AnalysisError("no shared screenshots")
        return self.n_extracted / self.n_shared

    def provider_agreement(self) -> float:
        """Worst relative gap between any provider's monthly median and
        the pooled median, across commonly populated months.

        Small values justify pooling screenshots across providers.
        """
        worst = 0.0
        compared = 0
        for series in self.by_provider.values():
            for month, value in series.items():
                pooled = self.median[month]
                if np.isnan(pooled) or np.isnan(value) or pooled <= 0:
                    continue
                worst = max(worst, abs(value - pooled) / pooled)
                compared += 1
        if compared == 0:
            raise AnalysisError("no commonly populated provider months")
        return worst

    def max_subsample_deviation(self) -> float:
        """Largest relative gap between full and subsampled medians.

        Small values back the paper's "considerably stable" claim.
        """
        worst = 0.0
        for series in self.subsampled.values():
            for month, value in series.items():
                full = self.median[month]
                if np.isnan(full) or np.isnan(value) or full <= 0:
                    continue
                worst = max(worst, abs(value - full) / full)
        return worst


def track_speeds(
    corpus: RedditCorpus,
    noise: Optional[NoiseModel] = None,
    engine: Optional[OcrEngine] = None,
    subsample_fractions: tuple = (0.95, 0.90),
    min_reports_per_month: int = 5,
    seed: int = 0,
) -> SpeedTrack:
    """Run the full screenshot → OCR → monthly-median pipeline.

    Every shared speed test is rendered into a screenshot, corrupted by
    the noise model, and put through the OCR engine; only successfully
    extracted downloads feed the medians.  The analysis never touches the
    ground-truth numbers.
    """
    noise = noise if noise is not None else NoiseModel()
    engine = engine or OcrEngine()
    rng = derive(seed, "analysis", "speed-ocr")

    # Share the one columnar corpus scan with the other §4 analyses
    # instead of re-walking every post for its speed test.
    if isinstance(corpus, RedditCorpus):
        shares = corpus_columns(corpus).speed_share_posts()
    else:
        shares = corpus.speed_shares()
    per_month: Dict[Month, List[float]] = {}
    per_provider_month: Dict[str, Dict[Month, List[float]]] = {}
    n_extracted = 0
    for post in shares:
        screenshot = noise.apply(rng, render_screenshot(post.speed_test))
        try:
            report = engine.extract(screenshot)
        except ExtractionError:
            continue
        if not report.has_download:
            continue
        n_extracted += 1
        month = month_of(post.date)
        per_month.setdefault(month, []).append(float(report.download_mbps))
        # Grouped by the *detected* provider — the analysis never peeks
        # at the share's ground-truth provider tag.
        per_provider_month.setdefault(report.provider, {}).setdefault(
            month, []
        ).append(float(report.download_mbps))

    if not per_month:
        raise AnalysisError("no usable speed reports extracted")

    medians: Dict[Month, float] = {}
    counts: Dict[Month, int] = {}
    for month, values in per_month.items():
        counts[month] = len(values)
        if len(values) >= min_reports_per_month:
            medians[month] = float(np.median(values))
    if not medians:
        raise AnalysisError("no month reached min_reports_per_month")
    median = MonthlySeries.from_mapping(medians)

    subsampled: Dict[float, MonthlySeries] = {}
    for fraction in subsample_fractions:
        if not 0 < fraction <= 1:
            raise AnalysisError(f"bad subsample fraction {fraction}")
        sub: Dict[Month, float] = {}
        for month, values in per_month.items():
            keep = max(1, int(round(len(values) * fraction)))
            if keep >= min_reports_per_month:
                picked = rng.choice(values, size=keep, replace=False)
                sub[month] = float(np.median(picked))
        subsampled[fraction] = MonthlySeries.from_mapping(
            sub, start=median.start, end=median.end
        )
    by_provider: Dict[str, MonthlySeries] = {}
    for provider, months in per_provider_month.items():
        provider_medians = {
            month: float(np.median(values))
            for month, values in months.items()
            if len(values) >= min_reports_per_month
        }
        if provider_medians:
            by_provider[provider] = MonthlySeries.from_mapping(
                provider_medians, start=median.start, end=median.end
            )

    return SpeedTrack(
        median=median,
        subsampled=subsampled,
        n_reports=counts,
        n_shared=len(shares),
        n_extracted=n_extracted,
        by_provider=by_provider,
    )

"""Fig. 5a: daily strong-positive / strong-negative post counts.

§4.1: *"The sentiment analysis service assigns three different scores —
positive, negative, and neutral — to each piece of text ... We count the
number of posts with strong positive (≥0.7) or negative (≥0.7) scores
per day."*
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.timeline import DailySeries
from repro.errors import AnalysisError
from repro.nlp.sentiment import SentimentAnalyzer, SentimentScores
from repro.social.corpus import RedditCorpus
from repro.social.schema import Post


@dataclass
class SentimentTimeline:
    """Daily strong-sentiment counts plus per-post scores.

    Attributes:
        strong_positive / strong_negative: dense daily count series.
        scores: per-post scores keyed by post id (reused by downstream
            analyses so the corpus is only scored once).
    """

    strong_positive: DailySeries
    strong_negative: DailySeries
    scores: Dict[str, SentimentScores]

    def combined(self) -> DailySeries:
        """Total strong-sentiment posts per day — the peak-ranking series."""
        out = DailySeries.zeros(self.strong_positive.start, self.strong_positive.end)
        out.values[:] = self.strong_positive.values + self.strong_negative.values
        return out

    def top_peaks(
        self, k: int = 3, min_separation_days: int = 7
    ) -> List[Tuple[dt.date, float]]:
        """The k largest strong-sentiment days, de-duplicating neighbours."""
        return self.combined().top_peaks(k, min_separation_days)

    def peak_polarity(self, day: dt.date) -> str:
        """Whether a peak day was driven by positive or negative posts."""
        pos = self.strong_positive[day]
        neg = self.strong_negative[day]
        if pos == 0 and neg == 0:
            raise AnalysisError(f"{day} has no strong-sentiment posts")
        return "positive" if pos >= neg else "negative"


def sentiment_timeline(
    corpus: RedditCorpus,
    analyzer: Optional[SentimentAnalyzer] = None,
) -> SentimentTimeline:
    """Score every post and build the daily strong-sentiment series."""
    analyzer = analyzer or SentimentAnalyzer()
    start = corpus.config.span_start
    end = corpus.config.span_end
    strong_pos = DailySeries.zeros(start, end)
    strong_neg = DailySeries.zeros(start, end)
    scores: Dict[str, SentimentScores] = {}
    posts = corpus.posts()
    for post, s in zip(posts, analyzer.score_many(p.full_text for p in posts)):
        scores[post.post_id] = s
        if s.is_strong_positive:
            strong_pos.add(post.date)
        elif s.is_strong_negative:
            strong_neg.add(post.date)
    return SentimentTimeline(
        strong_positive=strong_pos,
        strong_negative=strong_neg,
        scores=scores,
    )

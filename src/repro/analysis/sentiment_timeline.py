"""Fig. 5a: daily strong-positive / strong-negative post counts.

§4.1: *"The sentiment analysis service assigns three different scores —
positive, negative, and neutral — to each piece of text ... We count the
number of posts with strong positive (≥0.7) or negative (≥0.7) scores
per day."*
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.timeline import DailySeries
from repro.errors import AnalysisError
from repro.nlp.sentiment import SentimentAnalyzer, SentimentScores
from repro.perf.columnar import corpus_columns
from repro.social.corpus import RedditCorpus
from repro.social.schema import Post


@dataclass
class SentimentTimeline:
    """Daily strong-sentiment counts plus per-post scores.

    Attributes:
        strong_positive / strong_negative: dense daily count series.
        scores: per-post scores keyed by post id (reused by downstream
            analyses so the corpus is only scored once).
    """

    strong_positive: DailySeries
    strong_negative: DailySeries
    scores: Dict[str, SentimentScores]

    def combined(self) -> DailySeries:
        """Total strong-sentiment posts per day — the peak-ranking series."""
        out = DailySeries.zeros(self.strong_positive.start, self.strong_positive.end)
        out.values[:] = self.strong_positive.values + self.strong_negative.values
        return out

    def top_peaks(
        self, k: int = 3, min_separation_days: int = 7
    ) -> List[Tuple[dt.date, float]]:
        """The k largest strong-sentiment days, de-duplicating neighbours."""
        return self.combined().top_peaks(k, min_separation_days)

    def peak_polarity(self, day: dt.date) -> str:
        """Whether a peak day was driven by positive or negative posts."""
        pos = self.strong_positive[day]
        neg = self.strong_negative[day]
        if pos == 0 and neg == 0:
            raise AnalysisError(f"{day} has no strong-sentiment posts")
        return "positive" if pos >= neg else "negative"


def sentiment_timeline(
    corpus: RedditCorpus,
    analyzer: Optional[SentimentAnalyzer] = None,
) -> SentimentTimeline:
    """Score every post and build the daily strong-sentiment series.

    A plain corpus takes the columnar path: the shared per-day index and
    sentiment block (``repro.perf.columnar``) replace the per-analysis
    corpus scan, and with the default analyzer the block is scored once
    and reused by the outage monitor, the fulcrum and the USaaS export.
    """
    if isinstance(corpus, RedditCorpus) and (
        analyzer is None or isinstance(analyzer, SentimentAnalyzer)
    ):
        return _sentiment_timeline_columnar(corpus, analyzer)
    analyzer = analyzer or SentimentAnalyzer()
    start = corpus.config.span_start
    end = corpus.config.span_end
    strong_pos = DailySeries.zeros(start, end)
    strong_neg = DailySeries.zeros(start, end)
    scores: Dict[str, SentimentScores] = {}
    posts = corpus.posts()
    for post, s in zip(posts, analyzer.score_many(p.full_text for p in posts)):
        scores[post.post_id] = s
        if s.is_strong_positive:
            strong_pos.add(post.date)
        elif s.is_strong_negative:
            strong_neg.add(post.date)
    return SentimentTimeline(
        strong_positive=strong_pos,
        strong_negative=strong_neg,
        scores=scores,
    )


def _sentiment_timeline_columnar(
    corpus: RedditCorpus, analyzer: Optional[SentimentAnalyzer]
) -> SentimentTimeline:
    cols = corpus_columns(corpus)
    start = cols.span_start
    end = cols.span_end
    strong_pos = DailySeries.zeros(start, end)
    strong_neg = DailySeries.zeros(start, end)
    block = cols.sentiment(analyzer)
    pos_mask = block.strong_positive
    # The record path's elif: a strong-both post counts as positive only.
    neg_mask = block.strong_negative & ~pos_mask
    day = cols.day_index
    n_days = cols.n_days
    # Only strong posts hit DailySeries.add in the record path, so only
    # those may raise for an out-of-span date — first one in post order.
    oob = (pos_mask | neg_mask) & ((day < 0) | (day >= n_days))
    if oob.any():
        i = int(np.flatnonzero(oob)[0])
        raise AnalysisError(
            f"{cols.created[i].date()} outside span {start}..{end}"
        )
    strong_pos.values[:] = np.bincount(day[pos_mask], minlength=n_days)
    strong_neg.values[:] = np.bincount(day[neg_mask], minlength=n_days)
    return SentimentTimeline(
        strong_positive=strong_pos,
        strong_negative=strong_neg,
        scores=dict(zip(cols.post_id, block.scores)),
    )

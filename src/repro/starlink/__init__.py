"""The Starlink-under-deployment world model (the §4 substrate).

The paper mines social media because the network itself is inaccessible.
Our reproduction needs the network anyway — the posts have to come from
*somewhere* — so this package simulates the ground truth the Reddit
corpus reflects:

* :mod:`repro.starlink.launches` — the public launch record the paper
  annotates Fig. 7 with (14 launches Jan–Sep '21, 37 more through Dec '22,
  a Jun–Aug '21 gap).
* :mod:`repro.starlink.subscribers` — reported subscriber milestones
  (10 K Feb '21 → 90 K Aug '21 → 1 M+ Dec '22), interpolated monthly.
* :mod:`repro.starlink.capacity` — a supply/demand model turning satellite
  capacity and subscriber demand into the monthly median downlink speed
  (the quantity the Fig. 7 speed-test screenshots measure).
* :mod:`repro.starlink.coverage` — the outage process: headline events on
  the real dates plus frequent small transient outages that never make
  the news (the Fig. 6 phenomenon).
* :mod:`repro.starlink.perception` — expectation adaptation ("the wheel
  of time"): users judge today's speed against what they have been
  conditioned to expect.
"""

from repro.starlink.capacity import CapacityModel
from repro.starlink.coverage import Outage, OutageProcess
from repro.starlink.launches import LAUNCH_CATALOG, LaunchCatalog
from repro.starlink.footprint import DEFAULT_FOOTPRINT, Footprint
from repro.starlink.perception import PerceptionModel
from repro.starlink.planning import (
    LaunchPlanner,
    PlanOutcome,
    counterfactual_speeds,
    plan_outcome,
)
from repro.starlink.subscribers import SUBSCRIBER_MILESTONES, SubscriberModel

__all__ = [
    "CapacityModel",
    "DEFAULT_FOOTPRINT",
    "Footprint",
    "LaunchPlanner",
    "PlanOutcome",
    "counterfactual_speeds",
    "plan_outcome",
    "LAUNCH_CATALOG",
    "LaunchCatalog",
    "Outage",
    "OutageProcess",
    "PerceptionModel",
    "SUBSCRIBER_MILESTONES",
    "SubscriberModel",
]

"""Supply/demand capacity model → monthly median downlink speed.

The Fig. 7 narrative is a race between supply (satellite launches) and
demand (subscriber growth): speeds rose while the constellation filled in
coverage over a small early user base (Jan–Sep '21), dipped when ~21 K
users joined during the Jun–Aug '21 launch gap, and then declined almost
steadily as the base grew from 90 K to 1 M+ despite 37 further launches.

The model composes two ceilings:

* a **coverage ceiling** — with few satellites, a terminal spends part of
  each hour without a well-positioned beam, capping the achievable median
  regardless of load; it saturates toward the terminal cap as the
  constellation grows;
* a **capacity share** — per-user bandwidth under load.  Demand grows
  sub-linearly in subscribers (exponent ``demand_exponent``) because
  expansion into new cells and countries puts many new users on
  previously idle beams.

The two combine with a soft minimum so the binding constraint transitions
smoothly (hard ``min`` would create an artificial kink).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.timeline import Month, MonthlySeries
from repro.errors import ConfigError
from repro.starlink.launches import LAUNCH_CATALOG, LaunchCatalog
from repro.starlink.subscribers import SubscriberModel


@dataclass(frozen=True)
class CapacityModel:
    """Constellation capacity vs subscriber demand.

    Attributes:
        catalog: monthly launch record.
        subscribers: monthly subscriber model.
        terminal_cap_mbps: practical per-terminal maximum.
        coverage_k: half-saturation constellation size of the coverage
            ceiling (satellites).
        share_scale: per-satellite contribution to the per-user share,
            in Mbps x sqrt(users) per satellite.
        demand_exponent: sub-linearity of demand in subscribers (0.5 ~
            "half of growth lands on fresh capacity").
        demand_saturation_users: congestion cap — once this many
            subscribers compete for busy cells, further signups are pushed
            (by waitlists and international expansion) onto fresh
            capacity, so *median*-relevant demand saturates.  This is why
            the Fig. 7 decline decelerates in late 2022 despite the
            fastest subscriber growth of the whole span.
        capability_growth: monthly fractional growth in per-satellite
            usable capacity (newer satellite generations and ground
            segment upgrades carry more traffic) — this is what makes the
            late-2022 decline decelerate.
        softmin_p: sharpness of the soft minimum between the two ceilings.
        ramp_months: months between launch and carrying traffic.
        initial_satellites: constellation size entering the span.
    """

    catalog: LaunchCatalog = field(default_factory=lambda: LAUNCH_CATALOG)
    subscribers: SubscriberModel = field(default_factory=SubscriberModel.reported)
    terminal_cap_mbps: float = 400.0
    coverage_k: float = 7400.0
    share_scale: float = 224.0
    demand_exponent: float = 0.734
    demand_saturation_users: float = 730_000.0
    capability_growth: float = 0.0013
    softmin_p: float = 4.0
    ramp_months: int = 1
    initial_satellites: int = 900

    def __post_init__(self) -> None:
        if self.terminal_cap_mbps <= 0:
            raise ConfigError("terminal_cap_mbps must be positive")
        if self.coverage_k <= 0:
            raise ConfigError("coverage_k must be positive")
        if self.share_scale <= 0:
            raise ConfigError("share_scale must be positive")
        if not 0 < self.demand_exponent <= 1:
            raise ConfigError("demand_exponent must be in (0, 1]")
        if self.capability_growth < 0:
            raise ConfigError("capability_growth must be >= 0")
        if self.demand_saturation_users <= 0:
            raise ConfigError("demand_saturation_users must be positive")
        if self.softmin_p < 1:
            raise ConfigError("softmin_p must be >= 1")
        if self.ramp_months < 0:
            raise ConfigError("ramp_months must be >= 0")
        if self.initial_satellites < 1:
            raise ConfigError("initial_satellites must be >= 1")

    def serving_satellites(self) -> Dict[Month, float]:
        """Satellites actually carrying traffic per month (ramp-lagged)."""
        months = self.catalog.months()
        cumulative = self.catalog.cumulative_satellites(self.initial_satellites)
        out: Dict[Month, float] = {}
        for i, month in enumerate(months):
            lag_index = i - self.ramp_months
            if lag_index < 0:
                out[month] = float(self.initial_satellites)
            else:
                out[month] = float(cumulative[months[lag_index]])
        return out

    def coverage_ceiling(self, satellites: float) -> float:
        """Median ceiling from beam availability alone."""
        if satellites <= 0:
            raise ConfigError("satellites must be positive")
        return self.terminal_cap_mbps * satellites / (satellites + self.coverage_k)

    def capacity_share(self, satellites: float, users: int,
                       months_elapsed: int = 0) -> float:
        """Per-user share of constellation capacity under load."""
        if users < 1:
            raise ConfigError("users must be >= 1")
        if months_elapsed < 0:
            raise ConfigError("months_elapsed must be >= 0")
        capability = (1 + self.capability_growth) ** months_elapsed
        u_sat = self.demand_saturation_users
        effective_users = u_sat * (1 - math.exp(-users / u_sat))
        return (
            self.share_scale * capability * satellites
            / effective_users**self.demand_exponent
        )

    def _soft_min(self, a: float, b: float) -> float:
        p = self.softmin_p
        return float((a**-p + b**-p) ** (-1 / p))

    def median_downlink_mbps(self) -> MonthlySeries:
        """The model's monthly median downlink speed."""
        serving = self.serving_satellites()
        subs = self.subscribers.monthly()
        values: Dict[Month, float] = {}
        for elapsed, month in enumerate(self.catalog.months()):
            if month not in subs:
                continue
            sats = serving[month]
            values[month] = self._soft_min(
                self.coverage_ceiling(sats),
                self.capacity_share(sats, subs[month], elapsed),
            )
        return MonthlySeries.from_mapping(values)

    def utilisation(self) -> MonthlySeries:
        """Demanded share / coverage ceiling per month (>1 = overloaded)."""
        serving = self.serving_satellites()
        subs = self.subscribers.monthly()
        values: Dict[Month, float] = {}
        for month in self.catalog.months():
            if month not in subs:
                continue
            sats = serving[month]
            values[month] = (
                self.coverage_ceiling(sats) / self.capacity_share(sats, subs[month])
            )
        return MonthlySeries.from_mapping(values)

"""Service footprint: where Starlink was actually available, and when.

§4.2: *"Starlink service expanded to various countries across the globe"*
— and the paper's outage evidence leans on geography ("Redditors from 14
different countries ... confirmed an outage").  This module pins the
public service-availability timeline so the corpus can be geographically
honest: an author can only post first-hand experience once their country
has service, and the pool of countries able to confirm an outage grows
over the span.

Dates follow the public rollout record (beta in the US/Canada late 2020,
UK Jan '21, and a steady cadence of country launches through 2022).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError

# Country -> first month of public availability (beta counts).
SERVICE_START: Dict[str, dt.date] = {
    "US": dt.date(2020, 10, 1),
    "CA": dt.date(2021, 1, 1),
    "UK": dt.date(2021, 1, 1),
    "DE": dt.date(2021, 3, 1),
    "NZ": dt.date(2021, 4, 1),
    "AU": dt.date(2021, 4, 1),
    "FR": dt.date(2021, 5, 1),
    "NL": dt.date(2021, 5, 1),
    "BE": dt.date(2021, 6, 1),
    "IE": dt.date(2021, 7, 1),
    "AT": dt.date(2021, 7, 1),
    "DK": dt.date(2021, 8, 1),
    "PT": dt.date(2021, 8, 1),
    "CL": dt.date(2021, 9, 1),
    "MX": dt.date(2021, 11, 1),
    "HR": dt.date(2022, 1, 1),
    "ES": dt.date(2022, 1, 1),
    "IT": dt.date(2022, 1, 1),
    "PL": dt.date(2022, 2, 1),
    "BR": dt.date(2022, 2, 1),
    "UA": dt.date(2022, 3, 1),
    "JP": dt.date(2022, 10, 1),
}


@dataclass(frozen=True)
class Footprint:
    """Queryable availability timeline."""

    service_start: Dict[str, dt.date] = field(
        default_factory=lambda: dict(SERVICE_START)
    )

    def __post_init__(self) -> None:
        if not self.service_start:
            raise ConfigError("footprint needs at least one country")

    def is_available(self, country: str, day: dt.date) -> bool:
        """Whether the service existed in a country on a given day.

        Unknown countries are treated as not-yet-served (the safe
        default for a network still rolling out).
        """
        start = self.service_start.get(country)
        return start is not None and day >= start

    def available_countries(self, day: dt.date) -> List[str]:
        return sorted(
            c for c, start in self.service_start.items() if day >= start
        )

    def country_count(self, day: dt.date) -> int:
        return len(self.available_countries(day))

    def launch_quarter_counts(self) -> Dict[str, int]:
        """Countries gaining service per quarter — the expansion cadence."""
        out: Dict[str, int] = {}
        for start in self.service_start.values():
            quarter = f"{start.year}Q{(start.month - 1) // 3 + 1}"
            out[quarter] = out.get(quarter, 0) + 1
        return out

    def service_age_days(self, country: str, day: dt.date) -> Optional[int]:
        """Days since service started in a country (None if not served)."""
        start = self.service_start.get(country)
        if start is None or day < start:
            return None
        return (day - start).days


DEFAULT_FOOTPRINT = Footprint()

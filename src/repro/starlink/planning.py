"""§6 "Traffic engineering & network planning opportunities".

The paper asks: *"could SpaceX change Starlink deployment plans (which
LEO satellite shell to deploy next) given the current deployment,
footprint, and user sentiment?"*  This module closes that loop: it takes
the capacity/perception world model and evaluates counterfactual launch
plans by the community satisfaction they would have produced.

* :func:`counterfactual_speeds` — re-run the capacity model under a
  modified launch schedule.
* :func:`plan_outcome` — score a plan by mean/min cohort satisfaction
  over a horizon.
* :class:`LaunchPlanner` — greedy allocator: given a budget of extra
  launches, place them in the months where they raise satisfaction most
  (which, thanks to the conditioning model, is *not* simply the months
  with the worst speeds — boosting speeds just before a demand shock
  buys less than cushioning the shock itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.timeline import Month, MonthlySeries
from repro.errors import AnalysisError, ConfigError
from repro.starlink.capacity import CapacityModel
from repro.starlink.launches import LaunchCatalog
from repro.starlink.perception import PerceptionModel
from repro.starlink.subscribers import SubscriberModel


def modified_catalog(
    base: LaunchCatalog,
    extra_launches: Dict[Month, int],
    satellites_per_launch: int = 54,
) -> LaunchCatalog:
    """A copy of ``base`` with extra launches added in given months.

    Months keep their own satellites-per-launch figure when they already
    had launches; previously empty months use ``satellites_per_launch``.
    """
    monthly = dict(base.monthly)
    for month, extra in extra_launches.items():
        if extra < 0:
            raise ConfigError(f"negative extra launches for {month}")
        count, per_launch = monthly.get(month, (0, 0))
        if per_launch == 0:
            per_launch = satellites_per_launch
        monthly[month] = (count + extra, per_launch)
    return LaunchCatalog(monthly=monthly)


def counterfactual_speeds(
    capacity: CapacityModel,
    extra_launches: Dict[Month, int],
) -> MonthlySeries:
    """Median downlink under a modified launch plan (all else equal)."""
    from dataclasses import replace

    modified = replace(
        capacity, catalog=modified_catalog(capacity.catalog, extra_launches)
    )
    return modified.median_downlink_mbps()


@dataclass(frozen=True)
class PlanOutcome:
    """Scorecard for one launch plan."""

    extra_launches: Dict[Month, int]
    mean_satisfaction: float
    min_satisfaction: float
    final_speed_mbps: float

    @property
    def n_extra(self) -> int:
        return sum(self.extra_launches.values())


def plan_outcome(
    extra_launches: Dict[Month, int],
    capacity: Optional[CapacityModel] = None,
    perception: Optional[PerceptionModel] = None,
    horizon: Optional[Tuple[Month, Month]] = None,
) -> PlanOutcome:
    """Evaluate a plan by the cohort satisfaction it produces."""
    capacity = capacity or CapacityModel()
    perception = perception or PerceptionModel()
    speeds = counterfactual_speeds(capacity, extra_launches)
    subscribers = capacity.subscribers.monthly()
    satisfaction = perception.cohort_satisfaction(speeds, subscribers)
    if horizon is not None:
        satisfaction = satisfaction.slice(*horizon)
    values = satisfaction.values[~np.isnan(satisfaction.values)]
    if len(values) == 0:
        raise AnalysisError("no satisfaction values in the horizon")
    return PlanOutcome(
        extra_launches=dict(extra_launches),
        mean_satisfaction=float(values.mean()),
        min_satisfaction=float(values.min()),
        final_speed_mbps=float(speeds.values[-1]),
    )


@dataclass
class LaunchPlanner:
    """Greedy sentiment-aware launch allocation.

    Given a budget of extra launches and a set of candidate months, the
    planner repeatedly adds the single launch with the best marginal
    improvement of the objective (mean cohort satisfaction by default,
    optionally the worst month instead).

    Attributes:
        capacity: world model to plan against.
        perception: conditioning model scoring plans.
        objective: ``"mean"`` or ``"worst_month"``.
    """

    capacity: CapacityModel = field(default_factory=CapacityModel)
    perception: PerceptionModel = field(default_factory=PerceptionModel)
    objective: str = "mean"

    def __post_init__(self) -> None:
        if self.objective not in ("mean", "worst_month"):
            raise ConfigError(f"unknown objective {self.objective!r}")

    def _score(self, outcome: PlanOutcome) -> float:
        if self.objective == "mean":
            return outcome.mean_satisfaction
        return outcome.min_satisfaction

    def plan(
        self,
        budget: int,
        candidate_months: List[Month],
        horizon: Optional[Tuple[Month, Month]] = None,
    ) -> PlanOutcome:
        """Allocate ``budget`` extra launches greedily."""
        if budget < 0:
            raise ConfigError("budget must be >= 0")
        if not candidate_months:
            raise ConfigError("candidate_months must be non-empty")
        allocation: Dict[Month, int] = {}
        best = plan_outcome(
            allocation, self.capacity, self.perception, horizon
        )
        for _ in range(budget):
            best_step: Optional[Tuple[Month, PlanOutcome]] = None
            for month in candidate_months:
                trial = dict(allocation)
                trial[month] = trial.get(month, 0) + 1
                outcome = plan_outcome(
                    trial, self.capacity, self.perception, horizon
                )
                if best_step is None or self._score(outcome) > self._score(
                    best_step[1]
                ):
                    best_step = (month, outcome)
            assert best_step is not None
            allocation[best_step[0]] = allocation.get(best_step[0], 0) + 1
            best = best_step[1]
        return best

"""Outage process: headline incidents plus frequent transient ones.

§4.1's Fig. 6 finding: a few large outages spark huge Reddit discussion
(7 Jan '22, 30 Aug '22 — both covered by the press), the 22 Apr '22 outage
was confirmed by Redditors in 14 countries *without any news coverage*,
and there is a steady background of small transient outages that nobody
but the affected users ever records — driven, the paper speculates, by
satellite/earth geometry, weather, GEO-arc avoidance and deployment
planning issues.

The process below generates exactly that population: three pinned
headline events (with historically accurate news-coverage flags) and a
Poisson stream of small transient outages.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.rng import derive

TRANSIENT_CAUSES = (
    "satellite handoff gap",
    "weather cell",
    "GEO-arc avoidance",
    "ground station maintenance",
    "software rollout",
    "cell oversubscription",
)


@dataclass(frozen=True)
class Outage:
    """One service interruption.

    Attributes:
        date: day the outage occurred.
        duration_h: hours of degraded/absent service.
        severity: fraction of the user base affected, (0, 1].
        countries_affected: breadth of the footprint hit.
        in_news: whether the press covered it (drives the news-index
            substrate; the 22 Apr '22 event is deliberately False).
        cause: free-text cause tag.
    """

    date: dt.date
    duration_h: float
    severity: float
    countries_affected: int
    in_news: bool
    cause: str

    def __post_init__(self) -> None:
        if self.duration_h <= 0:
            raise ConfigError("duration_h must be positive")
        if not 0 < self.severity <= 1:
            raise ConfigError(f"severity must be in (0, 1], got {self.severity}")
        if self.countries_affected < 1:
            raise ConfigError("countries_affected must be >= 1")

    @property
    def is_headline(self) -> bool:
        return self.severity >= 0.3


# The three real incidents the paper pins Fig. 6 / Fig. 5 to.
HEADLINE_OUTAGES: List[Outage] = [
    Outage(
        date=dt.date(2022, 1, 7), duration_h=5.0, severity=0.8,
        countries_affected=20, in_news=True, cause="global software fault",
    ),
    Outage(
        date=dt.date(2022, 4, 22), duration_h=2.5, severity=0.6,
        countries_affected=14, in_news=False, cause="unreported global outage",
    ),
    Outage(
        date=dt.date(2022, 8, 30), duration_h=5.0, severity=0.85,
        countries_affected=25, in_news=True, cause="worldwide interruption",
    ),
]


@dataclass(frozen=True)
class OutageProcess:
    """Headline events plus Poisson transient outages over a date span.

    Attributes:
        span_start / span_end: simulated period.
        transient_rate_per_week: mean number of small outages per week.
        seed: determinism root.
    """

    span_start: dt.date = dt.date(2021, 1, 1)
    span_end: dt.date = dt.date(2022, 12, 31)
    transient_rate_per_week: float = 1.6
    seed: int = 0
    headline: List[Outage] = field(default_factory=lambda: list(HEADLINE_OUTAGES))

    def __post_init__(self) -> None:
        if self.span_end < self.span_start:
            raise ConfigError("span_end precedes span_start")
        if self.transient_rate_per_week < 0:
            raise ConfigError("transient_rate_per_week must be >= 0")

    def generate(self) -> List[Outage]:
        """All outages in the span, sorted by date."""
        rng = derive(self.seed, "starlink", "outages")
        outages = [o for o in self.headline
                   if self.span_start <= o.date <= self.span_end]
        n_days = (self.span_end - self.span_start).days + 1
        daily_rate = self.transient_rate_per_week / 7.0
        for day_offset in range(n_days):
            day = self.span_start + dt.timedelta(days=day_offset)
            for _ in range(rng.poisson(daily_rate)):
                outages.append(
                    Outage(
                        date=day,
                        duration_h=float(rng.uniform(0.2, 2.5)),
                        severity=float(rng.uniform(0.005, 0.08)),
                        countries_affected=int(rng.integers(1, 4)),
                        in_news=False,
                        cause=str(rng.choice(TRANSIENT_CAUSES)),
                    )
                )
        return sorted(outages, key=lambda o: o.date)

    def on(self, day: dt.date, outages: Optional[List[Outage]] = None) -> List[Outage]:
        """Outages active on a given day."""
        pool = outages if outages is not None else self.generate()
        return [o for o in pool if o.date == day]

"""Expectation adaptation: "the wheel of time" (§4.2).

The paper's most interesting Fig. 7 observation is that sentiment is a
function of *conditioning*, not of absolute speed: Dec '21 speeds beat
Apr '21 speeds, yet sentiment was drastically lower, because users had
been conditioned by the Sep '21 peak; conversely sentiment recovered over
Mar–Dec '22 while speeds kept falling, because expectations fell faster.

:class:`PerceptionModel` implements this with an exponentially weighted
expectation: each month users compare the current median speed to what
they have come to expect, and satisfaction is the log-ratio of the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.timeline import MonthlySeries
from repro.errors import ConfigError


@dataclass(frozen=True)
class PerceptionModel:
    """Expectation-relative satisfaction.

    Attributes:
        memory: EWMA retention per month in [0, 1); higher = longer
            conditioning (slower-moving expectations).
        sensitivity: how strongly the speed/expectation ratio moves
            satisfaction.
        optimism: additive satisfaction offset — early adopters carry a
            baseline goodwill toward the service.
    """

    memory: float = 0.88
    sensitivity: float = 9.0
    optimism: float = 0.25

    def __post_init__(self) -> None:
        if not 0 <= self.memory < 1:
            raise ConfigError(f"memory must be in [0, 1), got {self.memory}")
        if self.sensitivity <= 0:
            raise ConfigError("sensitivity must be positive")

    def expectations(self, speeds: MonthlySeries) -> MonthlySeries:
        """The conditioned expectation track for a speed series.

        Expectation starts at the first observed speed and relaxes toward
        the running experience with EWMA retention ``memory``.
        """
        values = speeds.values
        if np.isnan(values).all():
            raise ConfigError("speed series is all NaN")
        expect = np.full(len(values), np.nan)
        level = None
        for i, speed in enumerate(values):
            if np.isnan(speed):
                expect[i] = level if level is not None else np.nan
                continue
            if level is None:
                level = float(speed)
            else:
                level = self.memory * level + (1 - self.memory) * float(speed)
            expect[i] = level
        return MonthlySeries(start=speeds.start, end=speeds.end, values=expect)

    def satisfaction(self, speeds: MonthlySeries) -> MonthlySeries:
        """Monthly satisfaction in [0, 1]; 0.5 = speeds meet expectations.

        Satisfaction compares this month's speed to the expectation built
        from *previous* months (a month can't condition itself).
        """
        values = speeds.values
        expect = self.expectations(speeds).values
        sat = np.full(len(values), np.nan)
        for i, speed in enumerate(values):
            if np.isnan(speed):
                continue
            # Expectation entering this month = last month's track.
            prior = expect[i - 1] if i > 0 and not np.isnan(expect[i - 1]) else speed
            if prior <= 0:
                continue
            ratio = np.log(speed / prior)
            sat[i] = 1.0 / (1.0 + np.exp(-(self.sensitivity * ratio + self.optimism)))
        return MonthlySeries(start=speeds.start, end=speeds.end, values=sat)

    def cohort_satisfaction(
        self,
        speeds: MonthlySeries,
        subscribers: "dict[tuple, int]",
    ) -> MonthlySeries:
        """Adoption-weighted satisfaction across join cohorts.

        The single-track :meth:`satisfaction` assumes one shared
        expectation, but the §4.2 "wheel of time" is really a *population*
        effect: a user who joined during the Sep '21 golden era carries
        peak-conditioned expectations forever downward, while a user who
        joined in late '22 never saw those speeds — their bar was set on
        arrival.  As adoption accelerates, recent cohorts dominate and
        community sentiment recovers even while speeds keep falling.

        Each cohort's expectation starts at the median speed of its join
        month and then relaxes with EWMA retention ``memory``; cohorts are
        weighted by their size (new subscribers that month).

        Args:
            speeds: monthly median downlink.
            subscribers: total subscribers per (year, month) — cohort
                sizes are the month-over-month increments.
        """
        months = speeds.months()
        values = speeds.values
        if np.isnan(values).any():
            raise ConfigError("cohort model needs a fully populated speed series")
        counts = [subscribers.get(m) for m in months]
        if any(c is None for c in counts):
            raise ConfigError("subscribers must cover every speed month")

        # Cohort sizes: initial base plus monthly increments.
        cohort_sizes = [float(counts[0])]
        for prev, cur in zip(counts, counts[1:]):
            cohort_sizes.append(float(max(0, cur - prev)))

        sat = np.full(len(months), np.nan)
        # expectations[c] = cohort c's conditioned expectation so far.
        expectations: list = []
        for t, speed in enumerate(values):
            # New cohort joins with its bar set by today's speeds.
            expectations.append(float(speed))
            weighted = 0.0
            weight_total = 0.0
            for c in range(t + 1):
                prior = expectations[c]
                ratio = np.log(speed / prior) if prior > 0 else 0.0
                cohort_sat = 1.0 / (
                    1.0 + np.exp(-(self.sensitivity * ratio + self.optimism))
                )
                weighted += cohort_sizes[c] * cohort_sat
                weight_total += cohort_sizes[c]
                # Conditioning: the cohort's bar relaxes toward experience.
                expectations[c] = (
                    self.memory * prior + (1 - self.memory) * float(speed)
                )
            sat[t] = weighted / weight_total if weight_total > 0 else np.nan
        return MonthlySeries(start=speeds.start, end=speeds.end, values=sat)

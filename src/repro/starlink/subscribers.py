"""Starlink subscriber growth, Jan 2021 – Dec 2022.

Milestones are the publicly reported figures the paper annotates Fig. 7
with; between milestones the model interpolates geometrically (subscriber
growth at this stage was multiplicative, not additive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.timeline import Month, iter_months
from repro.errors import ConfigError

# (year, month) -> publicly reported users. Sources as cited in the paper:
# FCC filing (10K, Feb'21), Musk tweet (69,420 active users, Jun'21),
# Sheetz/CNBC (90K, Aug'21; 145K, Jan'22), Musk tweet (250K, Feb'22),
# Sheetz (400K, May'22), advanced-television (700K, Sep'22),
# SpaceX tweet (1M+, Dec'22).
SUBSCRIBER_MILESTONES: Dict[Month, int] = {
    (2021, 1): 6_000,
    (2021, 2): 10_000,
    (2021, 6): 69_420,
    (2021, 8): 90_000,
    (2022, 1): 145_000,
    (2022, 2): 250_000,
    (2022, 5): 400_000,
    (2022, 9): 700_000,
    (2022, 12): 1_050_000,
}


@dataclass(frozen=True)
class SubscriberModel:
    """Monthly subscriber counts interpolated between reported milestones."""

    milestones: Dict[Month, int]

    def __post_init__(self) -> None:
        if len(self.milestones) < 2:
            raise ConfigError("need at least two subscriber milestones")
        for month, count in self.milestones.items():
            if count <= 0:
                raise ConfigError(f"non-positive subscriber count for {month}")

    @classmethod
    def reported(cls) -> "SubscriberModel":
        return cls(milestones=dict(SUBSCRIBER_MILESTONES))

    def monthly(self) -> Dict[Month, int]:
        """Subscribers for every month in the milestone span (geometric)."""
        months = list(iter_months(min(self.milestones), max(self.milestones)))
        anchors = sorted(self.milestones)
        out: Dict[Month, int] = {}
        for month in months:
            if month in self.milestones:
                out[month] = self.milestones[month]
                continue
            prev = max(a for a in anchors if a < month)
            nxt = min(a for a in anchors if a > month)
            span = _months_between(prev, nxt)
            step = _months_between(prev, month)
            ratio = self.milestones[nxt] / self.milestones[prev]
            out[month] = int(round(self.milestones[prev] * ratio ** (step / span)))
        return out

    def at(self, month: Month) -> int:
        monthly = self.monthly()
        if month not in monthly:
            raise ConfigError(f"{month} outside milestone span")
        return monthly[month]

    def growth(self, start: Month, end: Month) -> int:
        """Net new subscribers over the closed range (end minus start)."""
        return self.at(end) - self.at(start)


def _months_between(a: Month, b: Month) -> int:
    return (b[0] - a[0]) * 12 + (b[1] - a[1])

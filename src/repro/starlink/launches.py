"""Starlink launch catalog, Jan 2021 – Dec 2022.

Monthly launch counts reconstructed from the public record the paper
cites (satellitemap.space, Jonathan's Space Pages, Wikipedia launch
lists), preserving the milestones the paper leans on:

* 14 launches between Jan and Sep 2021 with ~60 satellites each,
* no launches between Jun and Aug 2021 (the Fig. 7 speed dip window),
* 37 launches between Sep 2021 and Dec 2022.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.timeline import Month, iter_months
from repro.errors import ConfigError

# (year, month) -> (launch count, satellites per launch)
_MONTHLY: Dict[Month, Tuple[int, int]] = {
    (2021, 1): (1, 60),
    (2021, 2): (2, 60),
    (2021, 3): (4, 60),
    (2021, 4): (1, 60),
    (2021, 5): (4, 60),
    (2021, 6): (0, 0),
    (2021, 7): (0, 0),
    (2021, 8): (0, 0),
    (2021, 9): (2, 55),
    (2021, 10): (0, 0),
    (2021, 11): (1, 53),
    (2021, 12): (2, 52),
    (2022, 1): (2, 49),
    (2022, 2): (3, 49),
    (2022, 3): (2, 50),
    (2022, 4): (3, 51),
    (2022, 5): (4, 53),
    (2022, 6): (3, 53),
    (2022, 7): (4, 53),
    (2022, 8): (3, 54),
    (2022, 9): (3, 54),
    (2022, 10): (2, 54),
    (2022, 11): (1, 54),
    (2022, 12): (2, 54),
}


@dataclass(frozen=True)
class LaunchCatalog:
    """Monthly launch counts and satellite tallies over a closed span."""

    monthly: Dict[Month, Tuple[int, int]]

    def __post_init__(self) -> None:
        for month, (count, per_launch) in self.monthly.items():
            if count < 0 or per_launch < 0:
                raise ConfigError(f"negative launch data for {month}")
            if count > 0 and per_launch == 0:
                raise ConfigError(f"{month}: launches with zero satellites")

    @property
    def start(self) -> Month:
        return min(self.monthly)

    @property
    def end(self) -> Month:
        return max(self.monthly)

    def launches_in(self, month: Month) -> int:
        return self.monthly.get(month, (0, 0))[0]

    def satellites_in(self, month: Month) -> int:
        count, per_launch = self.monthly.get(month, (0, 0))
        return count * per_launch

    def launches_between(self, start: Month, end: Month) -> int:
        """Total launches in the closed month range [start, end]."""
        return sum(self.launches_in(m) for m in iter_months(start, end))

    def cumulative_satellites(self, initial: int = 900) -> Dict[Month, int]:
        """Satellites launched up to and including each month.

        ``initial`` is the pre-2021 constellation (roughly 900 operational
        Starlink satellites were already up at the start of the span).
        """
        total = initial
        out: Dict[Month, int] = {}
        for month in iter_months(self.start, self.end):
            total += self.satellites_in(month)
            out[month] = total
        return out

    def months(self) -> List[Month]:
        return list(iter_months(self.start, self.end))


LAUNCH_CATALOG = LaunchCatalog(monthly=dict(_MONTHLY))

# Consistency with the paper's numbers (checked by tests):
# - launches_between((2021,1),(2021,9)) == 14
# - launches_between((2021,9),(2022,12)) == 37
# - launches_between((2021,6),(2021,8)) == 0

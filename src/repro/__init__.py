"""repro: a full reproduction of "Don't Forget the User: It's Time to
Rethink Network Measurements" (HotNets 2023).

Package map (see DESIGN.md for the paper-to-module index):

* ``repro.netsim`` — network condition processes, mitigation, QoE.
* ``repro.telemetry`` — agent-based MS Teams-like call dataset (§3 data).
* ``repro.engagement`` — the §3 analyses (Figs. 1–4, MOS predictor).
* ``repro.starlink`` — the LEO deployment world model (launches,
  subscribers, capacity, outages, perception).
* ``repro.social`` — the r/Starlink corpus simulator (§4 data).
* ``repro.nlp`` — offline sentiment / word clouds / keywords / trends /
  news (the Azure + NLTK substitute).
* ``repro.ocr`` — screenshot rendering + OCR extraction (Fig. 7 input).
* ``repro.analysis`` — the §4 analyses (Figs. 5–7, outage monitor,
  shifting fulcrum).
* ``repro.core`` — shared statistics, the unified signal model, and the
  §5 User-Signals-as-a-Service framework.
"""

__version__ = "1.0.0"

from repro.errors import ReproError
from repro.rng import DEFAULT_SEED, derive, make_rng

__all__ = ["DEFAULT_SEED", "ReproError", "__version__", "derive", "make_rng"]

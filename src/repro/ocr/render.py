"""Screenshot rendering: ground truth → provider-specific token grid.

A :class:`Screenshot` is a list of positioned text tokens — the level of
abstraction a text-detection OCR stage hands to field extraction.  Each
provider lays its report out differently, which is precisely what makes
OCR-based aggregation across providers non-trivial (the paper pulls
reports from Ookla, Fast, Starlink's own app "and others"):

* **Ookla** labels values above them, with units on the label row;
* **Fast** shows one huge headline number (the download) and buries
  upload/latency in a small footer row;
* the **Starlink app** inlines units into the value ("112Mbps");
* **generic** trackers use ``key: value`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ExtractionError
from repro.social.schema import PROVIDERS, SpeedTestShare


@dataclass(frozen=True)
class PlacedToken:
    """One piece of text at a position (origin top-left, y grows down)."""

    text: str
    x: int
    y: int
    size: int = 12  # font size — headline numbers are big

    def __post_init__(self) -> None:
        if not self.text:
            raise ExtractionError("empty token")
        if self.x < 0 or self.y < 0:
            raise ExtractionError("token position must be non-negative")
        if self.size <= 0:
            raise ExtractionError("token size must be positive")


@dataclass(frozen=True)
class Screenshot:
    """A rendered report: canvas dimensions plus placed tokens."""

    width: int
    height: int
    tokens: Tuple[PlacedToken, ...]

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ExtractionError("canvas must have positive dimensions")

    def reading_order(self) -> List[PlacedToken]:
        """Tokens sorted top-to-bottom, left-to-right (row tolerance 8px)."""
        return sorted(self.tokens, key=lambda t: (t.y // 8, t.x))

    def text_lines(self) -> List[str]:
        """Tokens joined per row — handy for debugging and tests."""
        rows: dict = {}
        for token in self.reading_order():
            rows.setdefault(token.y // 8, []).append(token.text)
        return [" ".join(parts) for _, parts in sorted(rows.items())]


def _fmt(value: float) -> str:
    """Format a number the way test apps do (no trailing .0)."""
    if abs(value - round(value)) < 0.05:
        return str(int(round(value)))
    return f"{value:.1f}"


def render_screenshot(share: SpeedTestShare) -> Screenshot:
    """Lay out a speed-test report for its provider."""
    if share.provider not in PROVIDERS:
        raise ExtractionError(f"unknown provider {share.provider!r}")
    dl, ul, lat = (
        _fmt(share.download_mbps),
        _fmt(share.upload_mbps),
        _fmt(share.latency_ms),
    )
    if share.provider == "ookla":
        tokens = (
            PlacedToken("SPEEDTEST", 120, 20, size=18),
            PlacedToken("PING", 40, 60), PlacedToken("ms", 80, 60),
            PlacedToken(lat, 50, 80, size=16),
            PlacedToken("DOWNLOAD", 40, 130), PlacedToken("Mbps", 130, 130),
            PlacedToken(dl, 50, 160, size=28),
            PlacedToken("UPLOAD", 220, 130), PlacedToken("Mbps", 300, 130),
            PlacedToken(ul, 230, 160, size=28),
        )
        return Screenshot(width=360, height=220, tokens=tokens)
    if share.provider == "fast":
        tokens = (
            PlacedToken("FAST", 150, 30, size=20),
            PlacedToken(dl, 120, 100, size=48),
            PlacedToken("Mbps", 220, 110, size=16),
            PlacedToken("Latency", 40, 180), PlacedToken(lat, 100, 180),
            PlacedToken("ms", 130, 180),
            PlacedToken("Upload", 200, 180), PlacedToken(ul, 260, 180),
            PlacedToken("Mbps", 290, 180),
        )
        return Screenshot(width=360, height=220, tokens=tokens)
    if share.provider == "starlink_app":
        tokens = (
            PlacedToken("STARLINK", 120, 20, size=16),
            PlacedToken("SPEED", 40, 50), PlacedToken("TEST", 100, 50),
            PlacedToken("DOWNLOAD", 40, 100),
            PlacedToken(f"{dl}Mbps", 200, 100, size=20),
            PlacedToken("UPLOAD", 40, 140),
            PlacedToken(f"{ul}Mbps", 200, 140, size=20),
            PlacedToken("LATENCY", 40, 180),
            PlacedToken(f"{lat}ms", 200, 180, size=20),
        )
        return Screenshot(width=320, height=220, tokens=tokens)
    # generic tracker: "key: value unit" rows
    tokens = (
        PlacedToken("Broadband", 40, 20), PlacedToken("Report", 120, 20),
        PlacedToken("Down:", 40, 70), PlacedToken(dl, 100, 70),
        PlacedToken("Mbps", 140, 70),
        PlacedToken("Up:", 40, 100), PlacedToken(ul, 100, 100),
        PlacedToken("Mbps", 140, 100),
        PlacedToken("Ping:", 40, 130), PlacedToken(lat, 100, 130),
        PlacedToken("ms", 140, 130),
    )
    return Screenshot(width=300, height=180, tokens=tokens)

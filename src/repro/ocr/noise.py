"""OCR noise: what a phone photo of a screen does to text.

Three corruption channels, each with a tunable rate:

* **character confusion** — visually similar glyph swaps, the classic OCR
  failure (``0``↔``O``, ``1``↔``l``, ``5``↔``S``, ``8``↔``B``, ``.``↔``,``);
* **character dropout** — glyphs lost to glare or compression;
* **token loss** — whole tokens missed by the text detector (small fonts
  are likelier victims).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ConfigError
from repro.ocr.render import PlacedToken, Screenshot

CONFUSIONS: Dict[str, str] = {
    "0": "O", "O": "0", "o": "0",
    "1": "l", "l": "1", "I": "1",
    "5": "S", "S": "5", "s": "5",
    "8": "B", "B": "8",
    "6": "b", "b": "6",
    "2": "Z", "Z": "2",
    ".": ",", ",": ".",
}


@dataclass(frozen=True)
class NoiseModel:
    """Corruption rates for the three channels.

    Defaults model a decent phone photo: a few percent of characters
    confused, occasional dropouts, small tokens sometimes missed.
    """

    confusion_rate: float = 0.03
    dropout_rate: float = 0.01
    token_loss_rate: float = 0.02
    small_font_penalty: float = 2.0  # token-loss multiplier below 12px

    def __post_init__(self) -> None:
        for name in ("confusion_rate", "dropout_rate", "token_loss_rate"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.small_font_penalty < 1:
            raise ConfigError("small_font_penalty must be >= 1")

    @classmethod
    def clean(cls) -> "NoiseModel":
        """No corruption — for pipeline tests."""
        return cls(confusion_rate=0.0, dropout_rate=0.0, token_loss_rate=0.0)

    @classmethod
    def harsh(cls) -> "NoiseModel":
        """A bad photo — for robustness tests."""
        return cls(confusion_rate=0.12, dropout_rate=0.05, token_loss_rate=0.08)

    def _corrupt_text(self, rng: np.random.Generator, text: str) -> str:
        out: List[str] = []
        for ch in text:
            roll = rng.random()
            if roll < self.dropout_rate:
                continue
            if roll < self.dropout_rate + self.confusion_rate and ch in CONFUSIONS:
                out.append(CONFUSIONS[ch])
            else:
                out.append(ch)
        return "".join(out)

    def apply(self, rng: np.random.Generator, screenshot: Screenshot) -> Screenshot:
        """Return a corrupted copy of the screenshot."""
        tokens: List[PlacedToken] = []
        for token in screenshot.tokens:
            loss = self.token_loss_rate
            if token.size < 12:
                loss = min(1.0, loss * self.small_font_penalty)
            if rng.random() < loss:
                continue
            text = self._corrupt_text(rng, token.text)
            if not text:
                continue
            tokens.append(
                PlacedToken(text=text, x=token.x, y=token.y, size=token.size)
            )
        return Screenshot(
            width=screenshot.width,
            height=screenshot.height,
            tokens=tuple(tokens),
        )

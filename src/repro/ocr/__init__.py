"""Synthetic screenshot rendering and OCR extraction (the Fig. 7 input).

The paper OCRs ~1750 speed-test screenshots with Azure's OCR skill.  The
offline equivalent is a full loop with the same failure modes:

1. :mod:`repro.ocr.render` lays a ground-truth
   :class:`~repro.social.schema.SpeedTestShare` out as a provider-specific
   token grid (Ookla, Fast, the Starlink app and a generic layout differ
   in where and how the numbers appear);
2. :mod:`repro.ocr.noise` corrupts it the way a phone-photo-of-a-screen
   corrupts text: character confusions (O↔0, S↔5), dropped glyphs, lost
   tokens;
3. :mod:`repro.ocr.engine` gets only the noisy token grid back and must
   re-identify the provider, find each metric's value, repair digit
   confusions and normalise units — or fail, in which case the analysis
   pipeline drops the report exactly as the paper's pipeline dropped
   unreadable screenshots.
"""

from repro.ocr.engine import OcrEngine
from repro.ocr.fields import ExtractedReport
from repro.ocr.noise import NoiseModel
from repro.ocr.render import PlacedToken, Screenshot, render_screenshot

__all__ = [
    "ExtractedReport",
    "NoiseModel",
    "OcrEngine",
    "PlacedToken",
    "Screenshot",
    "render_screenshot",
]

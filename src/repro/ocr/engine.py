"""Field extraction from noisy screenshots.

The engine sees only a corrupted token grid.  It must:

1. identify the provider from (possibly corrupted) logo text — done with
   a confusion-tolerant fuzzy match;
2. locate each metric's value: find a label token ("DOWNLOAD", "Ping:",
   "Latency"), then take the nearest plausible number, handling layouts
   where the value sits below the label (Ookla), beside it (generic),
   fused with its unit (Starlink app) or is simply the biggest number on
   screen (Fast's headline download);
3. repair digit confusions (``O``→``0`` inside numeric context) before
   parsing;
4. sanity-check ranges (a 5000 Mbps Starlink download is a misread) and
   compute a confidence score.

Unrecoverable screenshots raise :class:`~repro.errors.ExtractionError` —
the caller drops them, as the paper's pipeline dropped unreadable images.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ExtractionError
from repro.ocr.fields import ExtractedReport
from repro.ocr.render import PlacedToken, Screenshot

# Inverse confusion map used to repair characters in numeric context.
_DIGIT_REPAIRS = {
    "O": "0", "o": "0", "l": "1", "I": "1", "i": "1",
    "S": "5", "s": "5", "B": "8", "Z": "2", "z": "2", "b": "6",
    ",": ".",
}

_PROVIDER_LOGOS = {
    "ookla": "SPEEDTEST",
    "fast": "FAST",
    "starlink_app": "STARLINK",
    "other": "Broadband",
}

_DOWNLOAD_LABELS = ("download", "down")
_UPLOAD_LABELS = ("upload", "up")
_LATENCY_LABELS = ("ping", "latency")

# Plausibility windows for a Starlink terminal in 2021-22.
_DL_RANGE = (1.0, 400.0)
_UL_RANGE = (0.3, 60.0)
_LAT_RANGE = (10.0, 400.0)

_NUMERIC_RE = re.compile(r"^\d+(?:\.\d+)?$")
_FUSED_RE = re.compile(r"^(\d+(?:\.\d+)?)([A-Za-z]+)$")


def _char_distance(a: str, b: str) -> int:
    """Confusion-tolerant Hamming-ish distance (case-insensitive)."""
    a_low, b_low = a.lower(), b.lower()
    if abs(len(a_low) - len(b_low)) > 2:
        return 99
    distance = abs(len(a_low) - len(b_low))
    for ca, cb in zip(a_low, b_low):
        if ca == cb:
            continue
        if _DIGIT_REPAIRS.get(ca, ca) == _DIGIT_REPAIRS.get(cb, cb):
            continue
        distance += 1
    return distance


def _repair_number(text: str) -> Optional[float]:
    """Try to parse text as a number after confusion repair."""
    repaired = "".join(_DIGIT_REPAIRS.get(ch, ch) for ch in text)
    if _NUMERIC_RE.match(repaired):
        try:
            return float(repaired)
        except ValueError:
            return None
    return None


@dataclass(frozen=True)
class _Candidate:
    value: float
    token: PlacedToken
    repaired: bool
    fused_unit: Optional[str]


class OcrEngine:
    """Provider detection + field extraction over token grids."""

    def extract(self, screenshot: Screenshot) -> ExtractedReport:
        """Extract all fields; raises ExtractionError when hopeless."""
        tokens = screenshot.reading_order()
        if not tokens:
            raise ExtractionError("empty screenshot")
        provider = self._detect_provider(tokens)
        numbers = self._number_candidates(tokens)
        if not numbers:
            raise ExtractionError("no numeric tokens recovered")

        download = self._field_near_labels(
            tokens, numbers, _DOWNLOAD_LABELS, _DL_RANGE
        )
        upload = self._field_near_labels(
            tokens, numbers, _UPLOAD_LABELS, _UL_RANGE
        )
        latency = self._field_near_labels(
            tokens, numbers, _LATENCY_LABELS, _LAT_RANGE
        )
        if download is None and provider == "fast":
            # Fast's headline number is the download; it has no label.
            download = self._largest_font_number(numbers, _DL_RANGE)
        if download is None:
            raise ExtractionError("download field unrecoverable")
        if upload is not None and download.value <= upload.value:
            # Starlink downlink always exceeds uplink; a violation means a
            # digit was dropped or confused somewhere — refuse the read.
            raise ExtractionError(
                f"inconsistent read: download {download.value} <= "
                f"upload {upload.value}"
            )

        repairs = sum(
            1 for c in (download, upload, latency)
            if c is not None and c.repaired
        )
        missing = sum(1 for c in (upload, latency) if c is None)
        confidence = max(0.05, 1.0 - 0.15 * repairs - 0.2 * missing
                         - (0.15 if provider == "unknown" else 0.0))
        return ExtractedReport(
            provider=provider,
            download_mbps=download.value,
            upload_mbps=upload.value if upload else None,
            latency_ms=latency.value if latency else None,
            confidence=confidence,
        )

    # -- stages ----------------------------------------------------------

    def _detect_provider(self, tokens: List[PlacedToken]) -> str:
        best, best_distance = "unknown", 2
        for token in tokens:
            for provider, logo in _PROVIDER_LOGOS.items():
                distance = _char_distance(token.text, logo)
                if distance < best_distance:
                    best, best_distance = provider, distance
        return best

    def _number_candidates(self, tokens: List[PlacedToken]) -> List[_Candidate]:
        out: List[_Candidate] = []
        for token in tokens:
            fused = _FUSED_RE.match(token.text)
            if fused:
                value = _repair_number(fused.group(1))
                if value is not None:
                    out.append(
                        _Candidate(
                            value=value, token=token,
                            repaired=fused.group(1) != str(value),
                            fused_unit=fused.group(2).lower(),
                        )
                    )
                continue
            value = _repair_number(token.text)
            if value is not None:
                out.append(
                    _Candidate(
                        value=value, token=token,
                        repaired=not _NUMERIC_RE.match(token.text),
                        fused_unit=None,
                    )
                )
        return out

    def _field_near_labels(
        self,
        tokens: List[PlacedToken],
        numbers: List[_Candidate],
        labels: Tuple[str, ...],
        value_range: Tuple[float, float],
    ) -> Optional[_Candidate]:
        label_tokens = [
            t for t in tokens
            if any(
                _char_distance(t.text.rstrip(":"), label) <= 1
                for label in labels
            )
        ]
        best: Optional[_Candidate] = None
        best_distance = 1e9
        for label in label_tokens:
            for candidate in numbers:
                if not value_range[0] <= candidate.value <= value_range[1]:
                    continue
                dx = candidate.token.x - label.x
                dy = candidate.token.y - label.y
                # Values sit right/below their label, never far above.
                if dy < -12:
                    continue
                distance = abs(dx) + 2.5 * abs(dy)
                if distance < best_distance:
                    best, best_distance = candidate, distance
        if best is not None and best_distance > 400:
            return None
        return best

    def _largest_font_number(
        self,
        numbers: List[_Candidate],
        value_range: Tuple[float, float],
    ) -> Optional[_Candidate]:
        plausible = [
            c for c in numbers
            if value_range[0] <= c.value <= value_range[1]
        ]
        if not plausible:
            return None
        return max(plausible, key=lambda c: c.token.size)

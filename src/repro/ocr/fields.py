"""Normalised output schema of the OCR pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ExtractionError


@dataclass(frozen=True)
class ExtractedReport:
    """Fields recovered from one screenshot.

    Attributes:
        provider: detected test provider key, or ``"unknown"``.
        download_mbps / upload_mbps / latency_ms: normalised values;
            None when the field could not be recovered.
        confidence: extraction confidence in [0, 1]; each repaired
            character and each missing field lowers it.
    """

    provider: str
    download_mbps: Optional[float]
    upload_mbps: Optional[float]
    latency_ms: Optional[float]
    confidence: float

    def __post_init__(self) -> None:
        if not 0 <= self.confidence <= 1:
            raise ExtractionError(
                f"confidence must be in [0, 1], got {self.confidence}"
            )
        for name in ("download_mbps", "upload_mbps", "latency_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ExtractionError(f"{name} must be positive or None")

    @property
    def is_complete(self) -> bool:
        return (
            self.download_mbps is not None
            and self.upload_mbps is not None
            and self.latency_ms is not None
        )

    @property
    def has_download(self) -> bool:
        """The Fig. 7 analysis only strictly needs the downlink number."""
        return self.download_mbps is not None

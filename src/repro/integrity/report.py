"""The integrity section a USaaS answer carries alongside its health.

A number without provenance is the anti-pattern the paper warns about;
a number computed over a contaminated corpus is worse — it carries
false confidence.  :class:`IntegritySection` makes the contamination
question part of the answer itself: how many contributors were
down-weighted, how far the naive mean sits from the trust-weighted
robust aggregate, and whether that gap was large enough to downgrade
the answer's confidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["IntegritySection", "build_section"]

#: Relative naive-vs-robust divergence beyond which confidence is
#: downgraded (the aggregate disagrees with its robust twin enough that
#: contamination is the simplest explanation).
DIVERGENCE_DOWNGRADE = 0.05

#: Estimated contamination beyond which confidence is downgraded even
#: if the aggregates happen to agree.
CONTAMINATION_DOWNGRADE = 0.10


@dataclass(frozen=True)
class IntegritySection:
    """Trust/contamination summary attached to a :class:`UsaasReport`."""

    n_units: int
    n_flagged: int
    contamination_estimate: float
    naive_value: float
    robust_value: float
    statistic: str
    downgraded: bool
    flags: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def divergence(self) -> float:
        """Relative |naive - robust| gap (robust as the denominator)."""
        scale = max(abs(self.robust_value), 1e-9)
        return abs(self.naive_value - self.robust_value) / scale

    def table(self) -> str:
        """Fixed-width trust table, printed next to the health table."""
        rows = [
            ("contributors", f"{self.n_units}"),
            ("flagged", f"{self.n_flagged}"),
            ("contamination", f"{self.contamination_estimate:.3f}"),
            ("naive mean", f"{self.naive_value:.4f}"),
            (f"robust ({self.statistic})", f"{self.robust_value:.4f}"),
            ("divergence", f"{self.divergence:.4f}"),
            ("confidence", "downgraded" if self.downgraded else "intact"),
        ]
        if self.flags:
            rows.append(("flags", ",".join(self.flags)))
        width = max(len(name) for name, _ in rows)
        lines = ["integrity".ljust(width) + "  value", "-" * (width + 13)]
        for name, value in rows:
            lines.append(f"{name.ljust(width)}  {value}")
        return "\n".join(lines)

    def summary(self) -> str:
        state = "DOWNGRADED" if self.downgraded else "ok"
        return (
            f"[integrity] {state} flagged={self.n_flagged}/{self.n_units} "
            f"contamination={self.contamination_estimate:.3f} "
            f"naive={self.naive_value:.4f} robust={self.robust_value:.4f}"
        )


def build_section(
    n_units: int,
    n_flagged: int,
    contamination: float,
    naive_value: float,
    robust_value: float,
    statistic: str,
    flags: Tuple[str, ...] = (),
) -> IntegritySection:
    """Assemble a section, deciding the downgrade from the two thresholds.

    Divergence alone never downgrades: robust estimators legitimately
    disagree with the mean on skewed clean data (and the relative gap
    is unstable when the robust value sits near zero).  The downgrade
    needs *flagged contributors* plus divergence, or an outright
    contamination estimate above the threshold.
    """
    scale = max(abs(robust_value), 1e-9)
    divergence = abs(naive_value - robust_value) / scale
    downgraded = (
        (n_flagged > 0 and divergence > DIVERGENCE_DOWNGRADE)
        or contamination > CONTAMINATION_DOWNGRADE
    )
    return IntegritySection(
        n_units=n_units,
        n_flagged=n_flagged,
        contamination_estimate=contamination,
        naive_value=naive_value,
        robust_value=robust_value,
        statistic=statistic,
        downgraded=downgraded,
        flags=tuple(flags),
    )

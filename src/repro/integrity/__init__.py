"""Data integrity under adversarial contamination (``repro.integrity``).

The paper's user-centric pipelines aggregate what users *say* and
*rate*; both channels are open to anyone, including attackers.  This
package is the defense in four layers:

* :mod:`~repro.integrity.estimators` — robust aggregates (trimmed /
  winsorized mean, median-of-means) with a documented breakdown-point
  table, on both the record and the columnar path;
* :mod:`~repro.integrity.trust` — per-author / per-rater trust scores
  from duplicate-text fingerprinting, burst anomalies, template rings
  and rating-distribution tests, feeding aggregation weights;
* :mod:`~repro.integrity.online` — the streaming gate (burst /
  repetition quarantine) plus the boundary parser for malformed
  records, both checkpointable;
* :mod:`~repro.integrity.soak` — the deterministic ε-contamination
  sweep proving the trust-weighted aggregates hold where the naive
  mean breaks (``usaas integrity-soak``).

The adversaries themselves are injected by
:meth:`repro.resilience.faults.FaultPlan.data_faults` — seeded, pure
transforms, so clean and contaminated runs are byte-reproducible.
"""

from repro.integrity.estimators import (
    ESTIMATORS,
    EstimatorInfo,
    median_of_means,
    robust_mos,
    robust_mos_columns,
    robust_polarity,
    robust_polarity_columns,
    trimmed_mean,
    winsorized_mean,
)
from repro.integrity.online import (
    BoundaryReport,
    OnlineTrustGate,
    parse_stream_dicts,
)
from repro.integrity.report import IntegritySection, build_section
from repro.integrity.soak import (
    EpsOutcome,
    IntegritySoakReport,
    run_integrity_soak,
)
from repro.integrity.trust import (
    TrustScore,
    contamination_estimate,
    fraud_rating_mask,
    post_weights,
    post_weights_columns,
    rated_weights,
    rated_weights_columns,
    score_authors,
    score_raters,
    score_signal_units,
    text_fingerprint,
)

__all__ = [
    "ESTIMATORS",
    "BoundaryReport",
    "EpsOutcome",
    "EstimatorInfo",
    "IntegritySection",
    "IntegritySoakReport",
    "OnlineTrustGate",
    "TrustScore",
    "build_section",
    "contamination_estimate",
    "fraud_rating_mask",
    "median_of_means",
    "parse_stream_dicts",
    "post_weights",
    "post_weights_columns",
    "rated_weights",
    "rated_weights_columns",
    "robust_mos",
    "robust_mos_columns",
    "robust_polarity",
    "robust_polarity_columns",
    "run_integrity_soak",
    "score_authors",
    "score_raters",
    "score_signal_units",
    "text_fingerprint",
    "trimmed_mean",
    "winsorized_mean",
]

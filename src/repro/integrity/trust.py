"""Per-contributor trust scoring: who should an aggregate believe?

Three cheap, deterministic tests — the ones the crowdsourced-QoE
literature puts first — scored per author (social corpus) or per rater
(call dataset):

* **duplicate-text fingerprinting** — an author whose posts collapse to
  a handful of normalised-text SHA-256 fingerprints is running
  templates;
* **burst anomaly** — an author whose single-day peak volume is far
  above anything an organic poster produces is flooding;
* **template rings** — one fingerprint posted repeatedly by several
  distinct authors is a coordinated bot ring;
* **rating-distribution test** — a rater with many ratings that are all
  the same extreme value (1 or 5) is a shill campaign, not a user.

Each contributor gets a :class:`TrustScore` whose ``trust`` weight
feeds the robust aggregates (:mod:`repro.integrity.estimators`):
suspect contributors are down-weighted to zero, everyone else keeps
weight 1.  The scoring is a pure function of the input records — no
clock, no RNG — so clean and contaminated runs stay byte-reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = [
    "TrustScore",
    "contamination_estimate",
    "fraud_rating_mask",
    "post_weights",
    "post_weights_columns",
    "rated_weights",
    "rated_weights_columns",
    "score_authors",
    "score_raters",
    "score_signal_units",
    "text_fingerprint",
]

#: Flag thresholds (documented in docs/integrity.md).
DUP_MIN_ITEMS = 5       # duplicate-text test needs this many posts
DUP_RATIO = 0.6         # >= this fraction of posts are repeats
BURST_DAY_POSTS = 8     # single-day peak at/above this is a flood
RING_MIN_AUTHORS = 3    # a fingerprint shared by this many authors ...
RING_MIN_REPEATS = 2    # ... each posting it this often, is a ring ...
RING_MEAN_REPEATS = 3.0  # ... IF its posts concentrate on them (see below)
FRAUD_MIN_RATINGS = 4   # rating test needs this many ratings
FRAUD_CONSTANT_FRAC = 0.9  # >= this fraction identical-extreme = shill


@dataclass(frozen=True)
class TrustScore:
    """One contributor's trust verdict.

    ``trust`` is the aggregation weight in [0, 1]: 1 = believed, 0 =
    excluded.  ``flags`` names every test the contributor tripped
    (``duplicate_text`` / ``burst`` / ``template_ring`` /
    ``rating_fraud``); the weight is 0 when the combination is
    conclusive (a ring, or duplicates *and* a burst, or rating fraud)
    and 0.5 when a single soft signal fired.
    """

    unit: str
    n_items: int
    duplicate_ratio: float
    burst_peak: int
    rating_bias: float
    flags: Tuple[str, ...]
    trust: float

    @property
    def suspect(self) -> bool:
        return self.trust < 1.0


def text_fingerprint(text: str) -> str:
    """SHA-256 of the whitespace/case-normalised text."""
    normalised = " ".join(text.lower().split())
    return hashlib.sha256(normalised.encode("utf-8")).hexdigest()


def _author_trust(
    n_items: int,
    duplicate_ratio: float,
    burst_peak: int,
    in_ring: bool,
) -> Tuple[Tuple[str, ...], float]:
    flags = []
    if n_items >= DUP_MIN_ITEMS and duplicate_ratio >= DUP_RATIO:
        flags.append("duplicate_text")
    if burst_peak >= BURST_DAY_POSTS:
        flags.append("burst")
    if in_ring:
        flags.append("template_ring")
    if "template_ring" in flags or (
        "duplicate_text" in flags and "burst" in flags
    ):
        trust = 0.0
    elif flags:
        trust = 0.5
    else:
        trust = 1.0
    return tuple(flags), trust


def score_authors(posts: Iterable) -> Dict[str, TrustScore]:
    """Score every author of an iterable of posts (corpus accepted).

    Returns an author-sorted dict, so iteration order — and therefore
    any serialised form — is deterministic.
    """
    per_author: Dict[str, list] = {}
    fp_authors: Dict[str, Dict[str, int]] = {}
    for post in posts:
        fp = text_fingerprint(post.full_text)
        per_author.setdefault(post.author, []).append((post.date, fp))
        counts = fp_authors.setdefault(fp, {})
        counts[post.author] = counts.get(post.author, 0) + 1
    # A ring fingerprint must be *concentrated*, not merely shared: a
    # viral template is reposted by hundreds of organic authors a
    # couple of times each (mean repeats ~1), while a bot ring is a
    # handful of authors hammering the same text (mean repeats >> 1).
    # Without the mean-repeats gate, long corpus spans flag every
    # popular template as a ring.
    ring_fps = {
        fp for fp, counts in fp_authors.items()
        if sum(
            1 for n in counts.values() if n >= RING_MIN_REPEATS
        ) >= RING_MIN_AUTHORS
        and sum(counts.values()) / len(counts) >= RING_MEAN_REPEATS
    }
    scores: Dict[str, TrustScore] = {}
    for author in sorted(per_author):
        items = per_author[author]
        fps = [fp for _, fp in items]
        day_counts: Dict[object, int] = {}
        for day, _ in items:
            day_counts[day] = day_counts.get(day, 0) + 1
        duplicate_ratio = 1.0 - len(set(fps)) / len(fps)
        burst_peak = max(day_counts.values())
        in_ring = any(fp in ring_fps for fp in fps)
        flags, trust = _author_trust(
            len(items), duplicate_ratio, burst_peak, in_ring
        )
        scores[author] = TrustScore(
            unit=author,
            n_items=len(items),
            duplicate_ratio=duplicate_ratio,
            burst_peak=burst_peak,
            rating_bias=0.0,
            flags=flags,
            trust=trust,
        )
    return scores


def score_raters(dataset) -> Dict[str, TrustScore]:
    """Score every rater (user with explicit feedback) of a call dataset.

    The distribution test: a user with :data:`FRAUD_MIN_RATINGS` or
    more ratings of which at least :data:`FRAUD_CONSTANT_FRAC` are the
    same extreme value (1 or 5) is a shill campaign — organic raters at
    the paper's sparse sampling almost never reach that volume, let
    alone that constancy.
    """
    per_user: Dict[str, list] = {}
    for p in dataset.participants():
        if p.rating is not None:
            per_user.setdefault(p.user_id, []).append(int(p.rating))
    scores: Dict[str, TrustScore] = {}
    for user in sorted(per_user):
        ratings = per_user[user]
        n = len(ratings)
        bias = max(
            sum(1 for r in ratings if r == extreme) / n
            for extreme in (1, 5)
        )
        flags: Tuple[str, ...] = ()
        trust = 1.0
        if n >= FRAUD_MIN_RATINGS and bias >= FRAUD_CONSTANT_FRAC:
            flags = ("rating_fraud",)
            trust = 0.0
        scores[user] = TrustScore(
            unit=user,
            n_items=n,
            duplicate_ratio=0.0,
            burst_peak=0,
            rating_bias=bias,
            flags=flags,
            trust=trust,
        )
    return scores


def score_signal_units(signals: Iterable) -> Dict[str, TrustScore]:
    """Trust-score the contributors behind explicit USaaS signals.

    Groups by each signal's scrubbed ``user`` attribute (signals
    without one are not scored and keep weight 1).  Rating signals run
    the distribution test; per-day signal counts run the burst test.
    Returns a unit-sorted dict, like the other scorers.
    """
    per_user: Dict[str, Dict[str, object]] = {}
    for s in signals:
        unit = s.attr("user")
        if unit is None:
            continue
        entry = per_user.setdefault(unit, {"ratings": [], "days": {}})
        if s.metric == "rating":
            entry["ratings"].append(int(round(s.value)))
        days = entry["days"]
        days[s.date] = days.get(s.date, 0) + 1
    scores: Dict[str, TrustScore] = {}
    for unit in sorted(per_user):
        entry = per_user[unit]
        ratings = entry["ratings"]
        days = entry["days"]
        n_items = sum(days.values())
        burst_peak = max(days.values())
        bias = 0.0
        flags = []
        if len(ratings) >= FRAUD_MIN_RATINGS:
            bias = max(
                sum(1 for r in ratings if r == extreme) / len(ratings)
                for extreme in (1, 5)
            )
            if bias >= FRAUD_CONSTANT_FRAC:
                flags.append("rating_fraud")
        if burst_peak >= BURST_DAY_POSTS:
            flags.append("burst")
        if "rating_fraud" in flags:
            trust = 0.0
        elif flags:
            trust = 0.5
        else:
            trust = 1.0
        scores[unit] = TrustScore(
            unit=unit,
            n_items=n_items,
            duplicate_ratio=0.0,
            burst_peak=burst_peak,
            rating_bias=bias,
            flags=tuple(flags),
            trust=trust,
        )
    return scores


def contamination_estimate(scores: Dict[str, TrustScore]) -> float:
    """Item-weighted fraction of fully distrusted contributions."""
    total = sum(s.n_items for s in scores.values())
    if total == 0:
        return 0.0
    flagged = sum(s.n_items for s in scores.values() if s.trust == 0.0)
    return flagged / total


def _weights_for(units, scores: Dict[str, TrustScore]) -> np.ndarray:
    return np.fromiter(
        (
            scores[u].trust if u in scores else 1.0
            for u in units
        ),
        dtype=float,
        count=len(units),
    )


def post_weights(corpus, scores: Dict[str, TrustScore]) -> np.ndarray:
    """Per-post trust weights, in corpus (created-time) order."""
    return _weights_for([p.author for p in corpus.posts()], scores)


def post_weights_columns(cols, scores: Dict[str, TrustScore]) -> np.ndarray:
    """Columnar twin of :func:`post_weights` via the author column."""
    return _weights_for(list(cols.author), scores)


def rated_weights(dataset, scores: Dict[str, TrustScore]) -> np.ndarray:
    """Per-rated-session trust weights, in dataset session order."""
    return _weights_for(
        [p.user_id for p in dataset.participants() if p.rating is not None],
        scores,
    )


def rated_weights_columns(cols, scores: Dict[str, TrustScore]) -> np.ndarray:
    """Columnar twin of :func:`rated_weights` via the rating mask."""
    rating = np.asarray(cols.rating, dtype=float)
    rated = np.flatnonzero(np.isfinite(rating))
    units = [cols.user_id[int(i)] for i in rated]
    return _weights_for(units, scores)


def fraud_rating_mask(cols, scores: Dict[str, TrustScore]) -> np.ndarray:
    """Boolean mask over *all* rows: True = fraud-flagged rated row.

    The prediction trainer subtracts this mask from its rated-row
    selection, so a fraud campaign cannot steer the MOS model.
    """
    rating = np.asarray(cols.rating, dtype=float)
    mask = np.zeros(len(rating), dtype=bool)
    for i in np.flatnonzero(np.isfinite(rating)):
        score = scores.get(cols.user_id[int(i)])
        if score is not None and score.trust == 0.0:
            mask[int(i)] = True
    return mask

"""Robust aggregates over the MOS and sentiment columns.

The estimators themselves live in :mod:`repro.core.stats` (registered
in the ``BinGrouping`` reducer table so every curve accepts them by
name); this module applies them to the two aggregates the integrity
soak defends — MOS over the rated sessions and mean sentiment polarity
over a corpus — on **both** the record and the columnar path, with the
same value ordering, so the two paths agree bit for bit.

``ESTIMATORS`` is the documented breakdown-point table
(``docs/integrity.md`` renders it): the contamination fraction each
estimator survives with bounded error.  The naive mean sits at 0 — one
adversarial sample moves it arbitrarily — which is exactly what the
ε-contamination soak demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.stats import (
    median_of_means,
    resolve_statistic,
    trimmed_mean,
    winsorized_mean,
)
from repro.errors import AnalysisError

__all__ = [
    "ESTIMATORS",
    "EstimatorInfo",
    "median_of_means",
    "robust_mos",
    "robust_mos_columns",
    "robust_polarity",
    "robust_polarity_columns",
    "trimmed_mean",
    "winsorized_mean",
]


@dataclass(frozen=True)
class EstimatorInfo:
    """One row of the estimator table: name, breakdown point, meaning."""

    statistic: str
    breakdown_point: str
    note: str


#: The documented breakdown-point table.  ``statistic`` values are the
#: reducer names every BinGrouping / curve_matrix / bin_statistic call
#: accepts.
ESTIMATORS: Tuple[EstimatorInfo, ...] = (
    EstimatorInfo(
        "mean", "0",
        "naive baseline: a single adversarial sample moves it "
        "arbitrarily far",
    ),
    EstimatorInfo(
        "trimmed_mean", "trim (default 0.1)",
        "drops floor(trim*n) samples per tail; contamination below the "
        "trim fraction lands in a discarded tail",
    ),
    EstimatorInfo(
        "winsorized_mean", "trim (default 0.1)",
        "clamps each tail to its trim-quantile neighbour; same "
        "breakdown as the trimmed mean, preserves sample size",
    ),
    EstimatorInfo(
        "median_of_means", "(ceil(k/2)-1)/n adversarial; ~0.5 per block",
        "median of k contiguous block means; survives while fewer than "
        "ceil(k/2) blocks are contaminated",
    ),
    EstimatorInfo(
        "median", "0.5",
        "maximal breakdown; reported for reference in the curves",
    ),
)


def _reduce(values: np.ndarray, statistic: str) -> float:
    if len(values) == 0:
        raise AnalysisError(f"cannot aggregate zero values ({statistic})")
    return float(resolve_statistic(statistic)(values))


def robust_mos(
    dataset,
    statistic: str = "trimmed_mean",
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Aggregate the rated sessions' ratings — record-path reference.

    ``weights`` (per rated session, in dataset order) selects the
    trust-weighted variant: zero-weight sessions are excluded *before*
    the reducer runs, which is how fraud-flagged raters drop out.
    """
    ratings = np.array(
        [float(p.rating) for p in dataset.participants()
         if p.rating is not None],
        dtype=float,
    )
    return _reduce(_apply_weights(ratings, weights), statistic)


def robust_mos_columns(
    cols,
    statistic: str = "trimmed_mean",
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Columnar twin of :func:`robust_mos` — bit-identical by contract.

    The block's ``rating`` column is NaN-sparse in session order, so
    the finite subset is the record path's rated list exactly.
    """
    rating = np.asarray(cols.rating, dtype=float)
    ratings = rating[np.isfinite(rating)]
    return _reduce(_apply_weights(ratings, weights), statistic)


def robust_polarity(
    corpus,
    analyzer=None,
    statistic: str = "trimmed_mean",
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Aggregate per-post sentiment polarity — record-path reference."""
    from repro.nlp.sentiment import SentimentAnalyzer

    analyzer = analyzer or SentimentAnalyzer()
    posts = corpus.posts()
    scores = analyzer.score_many(p.full_text for p in posts)
    polarity = np.fromiter(
        (s.polarity for s in scores), dtype=float, count=len(scores)
    )
    return _reduce(_apply_weights(polarity, weights), statistic)


def robust_polarity_columns(
    cols,
    analyzer=None,
    statistic: str = "trimmed_mean",
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Columnar twin of :func:`robust_polarity` via the sentiment block."""
    block = cols.sentiment(analyzer)
    return _reduce(
        _apply_weights(np.asarray(block.polarity, dtype=float), weights),
        statistic,
    )


def _apply_weights(
    values: np.ndarray, weights: Optional[Sequence[float]]
) -> np.ndarray:
    """Drop zero-weight samples; reject malformed weight vectors.

    Trust weights are currently binary in effect (suspect contributors
    get weight 0), so weighting composes with any reducer as a
    pre-filter — which keeps the record/columnar equality contract
    trivially intact.
    """
    if weights is None:
        return values
    w = np.asarray(weights, dtype=float)
    if w.shape != values.shape:
        raise AnalysisError(
            f"weights must align with values: {w.shape} != {values.shape}"
        )
    if np.any(w < 0):
        raise AnalysisError("trust weights must be non-negative")
    kept = values[w > 0]
    if len(kept) == 0:
        raise AnalysisError("all samples were down-weighted to zero")
    return kept

"""The streaming half of trust: an online gate the pipeline consults.

Batch trust scoring (:mod:`repro.integrity.trust`) sees the whole
corpus at once; a stream cannot wait.  :class:`OnlineTrustGate` keeps
O(keys) state and decides per record, in arrival order, whether the
record looks like organic measurement or an attack flood:

* **burst** — one (source, key) producing more records inside the
  sliding window than any organic unit does;
* **repetition** — one (source, key) emitting the same (metric, value)
  payload over and over (the streaming face of duplicate-text
  fingerprinting).

Quarantined records are counted out of the aggregate path by the
pipeline (ledger bucket ``quarantined``), and the gate remembers the
recent quarantine density so the change-point stage can ask: *was this
shift preceded by an attack burst?*  — the disambiguation between
"users are unhappy" and "someone is shouting", surfaced as the
``suspect`` flag on :class:`~repro.streaming.detector.ChangePoint`.

Everything here is event-time driven and checkpointable
(``state_dict`` / ``load_state``), so crash-resume soaks stay
byte-identical.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Tuple

from repro.errors import ConfigError, SchemaError

__all__ = ["BoundaryReport", "OnlineTrustGate", "parse_stream_dicts"]

#: Hard count bound on the quarantine-time history kept for
#: :meth:`OnlineTrustGate.burst_active` — far above what any change
#: point's evaluation lag can span, so it only guards memory.
SUSPECT_HISTORY_CAP = 4096


class OnlineTrustGate:
    """Bounded per-key burst/repetition screen for stream records."""

    def __init__(
        self,
        window_s: float = 60.0,
        burst_limit: int = 30,
        repeat_limit: int = 8,
        max_keys: int = 512,
        suspect_window_s: float = 120.0,
        suspect_min_quarantined: int = 5,
    ) -> None:
        if window_s <= 0 or suspect_window_s <= 0:
            raise ConfigError("gate windows must be positive")
        if burst_limit < 1 or repeat_limit < 1:
            raise ConfigError("gate limits must be >= 1")
        if max_keys < 1:
            raise ConfigError("max_keys must be >= 1")
        if suspect_min_quarantined < 1:
            raise ConfigError("suspect_min_quarantined must be >= 1")
        self.window_s = float(window_s)
        self.burst_limit = int(burst_limit)
        self.repeat_limit = int(repeat_limit)
        self.max_keys = int(max_keys)
        self.suspect_window_s = float(suspect_window_s)
        self.suspect_min_quarantined = int(suspect_min_quarantined)
        # key -> {"times": deque, "token": str, "run": int}; LRU by
        # last observation, evicted beyond max_keys.
        self._keys: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._recent_quarantined: Deque[float] = deque()
        self.observed = 0
        self.quarantined = 0

    def observe(self, record) -> bool:
        """Fold one record in; True = quarantine (keep it out of aggregates)."""
        self.observed += 1
        t = float(record.event_time_s)
        key = f"{record.source}/{record.key}"
        state = self._keys.pop(key, None)
        if state is None:
            state = {"times": deque(), "token": "", "run": 0}
        self._keys[key] = state
        while len(self._keys) > self.max_keys:
            self._keys.popitem(last=False)
        times: Deque[float] = state["times"]
        times.append(t)
        while times and times[0] < t - self.window_s:
            times.popleft()
        token = f"{record.metric}:{record.value!r}"
        if token == state["token"]:
            state["run"] += 1
        else:
            state["token"] = token
            state["run"] = 1
        verdict = (
            len(times) > self.burst_limit
            or state["run"] > self.repeat_limit
        )
        if verdict:
            self.quarantined += 1
            self._recent_quarantined.append(t)
            # Bound the history by count, never by ``t``: the caller
            # evaluates :meth:`burst_active` at change-point instants
            # that lag the latest observation by a queue's worth of
            # event time, so time-pruning here would make the answer
            # depend on how far ingestion had advanced at evaluation
            # time (and crash-resume replays would diverge).
            while len(self._recent_quarantined) > SUSPECT_HISTORY_CAP:
                self._recent_quarantined.popleft()
        return verdict

    def burst_active(self, at_s: float) -> bool:
        """Were enough records quarantined just before ``at_s``?

        The change-point disambiguation question: a level shift whose
        run-up is dense with quarantined records is flagged *suspect*
        (attack burst) rather than trusted as a real network event.
        Callers evaluate change points in event-time order, so history
        older than ``at_s``'s window can be pruned here — and *only*
        here, which keeps the answer a pure function of the quarantine
        record regardless of how far ingestion has run ahead.
        """
        while (
            self._recent_quarantined
            and self._recent_quarantined[0] < at_s - self.suspect_window_s
        ):
            self._recent_quarantined.popleft()
        count = sum(
            1 for t in self._recent_quarantined
            if t <= at_s
        )
        return count >= self.suspect_min_quarantined

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "keys": [
                [key, list(state["times"]), state["token"], state["run"]]
                for key, state in self._keys.items()
            ],
            "recent_quarantined": list(self._recent_quarantined),
            "observed": self.observed,
            "quarantined": self.quarantined,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._keys = OrderedDict()
        for key, times, token, run in state.get("keys", []):
            self._keys[str(key)] = {
                "times": deque(float(t) for t in times),
                "token": str(token),
                "run": int(run),
            }
        self._recent_quarantined = deque(
            float(t) for t in state.get("recent_quarantined", [])
        )
        self.observed = int(state.get("observed", 0))
        self.quarantined = int(state.get("quarantined", 0))


#: Quarantine reasons the boundary parser distinguishes.
BOUNDARY_REASONS: Tuple[str, ...] = (
    "missing_field", "bad_value", "bad_event_time", "other",
)


class BoundaryReport:
    """Outcome of validating raw stream dicts at the ingestion boundary."""

    def __init__(
        self, records: Tuple, quarantined: Dict[str, int]
    ) -> None:
        self.records = records
        self.quarantined = dict(quarantined)

    @property
    def n_quarantined(self) -> int:
        return sum(self.quarantined.values())

    def summary(self) -> str:
        parts = ", ".join(
            f"{reason}={self.quarantined[reason]}"
            for reason in BOUNDARY_REASONS
            if self.quarantined.get(reason)
        )
        return (
            f"[boundary] parsed={len(self.records)} "
            f"quarantined={self.n_quarantined}"
            + (f" ({parts})" if parts else "")
        )


def parse_stream_dicts(dicts) -> BoundaryReport:
    """Validate raw dicts into StreamRecords, counting rejects by reason.

    The trusting path (``StreamRecord.from_dict`` on everything) turns
    one malformed field into a dead pipeline; this boundary swallows
    nothing silently — every reject lands in exactly one reason bucket,
    mirroring the exactly-once ledger discipline downstream.
    """
    from repro.streaming.records import StreamRecord

    records = []
    quarantined = {reason: 0 for reason in BOUNDARY_REASONS}
    for data in dicts:
        try:
            records.append(StreamRecord.from_dict(data))
        except SchemaError:
            quarantined[_reject_reason(data)] += 1
    return BoundaryReport(records=tuple(records), quarantined=quarantined)


def _reject_reason(data) -> str:
    """Classify one rejected dict into a :data:`BOUNDARY_REASONS` bucket."""
    if any(
        field not in data
        for field in ("event_time_s", "source", "metric", "value")
    ):
        return "missing_field"
    try:
        event_time = float(data["event_time_s"])
        float(data["value"])
    except (TypeError, ValueError):
        return "bad_value"
    if event_time < 0:
        return "bad_event_time"
    return "other"

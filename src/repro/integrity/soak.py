"""Deterministic ε-contamination soak: does trust-weighting actually hold?

The experiment the integrity layer exists for, run end to end with no
wall clock and no live RNG: generate one clean call dataset and one
clean social corpus, then for each ε in the grid inject a seeded
rating-fraud campaign and a brigade flood
(:meth:`~repro.resilience.faults.FaultPlan.data_faults`) and compare

* the **naive mean** — breakdown point 0, the thing most dashboards
  ship — against
* the **trust-weighted mean** — fraud-flagged raters and ring authors
  down-weighted to zero by :mod:`repro.integrity.trust` — and the
  trimmed mean / median-of-means reference estimators,

all measured as deviation from the clean-run aggregate.  The contract
(also the CLI exit code):

* ``0`` — trust-weighted aggregates stayed within the documented bound
  at every ε **and** the naive mean broke the bound at the top ε (the
  attack was real and the defense held);
* ``2`` — a trust-weighted aggregate escaped the bound (hard violation:
  the defense failed);
* ``3`` — the naive mean never broke, or the trust layer flagged
  nothing under attack / flagged clean data (the experiment is not
  demonstrating anything — attack too weak or detection ineffective).

Record- and columnar-path robust aggregates are equality-pinned inside
the soak itself (exact ``==``, same discipline as ``test_columnar``),
and the stream-boundary fault kind is exercised through
:func:`~repro.integrity.online.parse_stream_dicts` so malformed and
dropped records land in reason-bucketed quarantine counters.  Every
number in :meth:`IntegritySoakReport.counters_dict` is a pure function
of the seed.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.rng import DEFAULT_SEED, derive

__all__ = ["EpsOutcome", "IntegritySoakReport", "run_integrity_soak"]

#: Trust-weighted MOS must stay within this absolute deviation of the
#: clean-run mean at every ε (documented in docs/integrity.md).
MOS_BOUND = 0.25

#: Trust-weighted mean sentiment polarity bound, same contract.
POLARITY_BOUND = 0.05

#: Clean-run contamination estimates above this are false positives.
FALSE_POSITIVE_TOLERANCE = 0.02


@dataclass(frozen=True)
class EpsOutcome:
    """All aggregates for one contamination level."""

    eps: float
    # -- telemetry / ratings ------------------------------------------
    n_rated: int
    n_fraud_flagged: int
    rating_contamination: float
    mos_naive: float
    mos_trimmed: float
    mos_mom: float
    mos_trust: float
    mos_naive_dev: float
    mos_trust_dev: float
    # -- social / sentiment -------------------------------------------
    n_posts: int
    n_injected: int
    n_flagged_authors: int
    post_contamination: float
    polarity_naive: float
    polarity_trust: float
    polarity_naive_dev: float
    polarity_trust_dev: float
    columnar_match: bool


@dataclass(frozen=True)
class IntegritySoakReport:
    """Closed-books summary of one ε-contamination sweep."""

    seed: int
    eps_grid: Tuple[float, ...]
    mos_bound: float
    polarity_bound: float
    clean_mos: float
    clean_polarity: float
    rows: Tuple[EpsOutcome, ...]
    boundary_parsed: int
    boundary_dropped: int
    boundary_quarantined: Dict[str, int]
    violations: Tuple[str, ...]
    ineffective: Tuple[str, ...]

    @property
    def exit_code(self) -> int:
        if self.violations:
            return 2
        if self.ineffective:
            return 3
        return 0

    @property
    def ok(self) -> bool:
        return self.exit_code == 0

    def counters_dict(self) -> Dict[str, object]:
        """Flat, rounded, deterministic-per-seed counter map."""
        out: Dict[str, object] = {
            "seed": self.seed,
            "clean_mos": round(self.clean_mos, 6),
            "clean_polarity": round(self.clean_polarity, 6),
            "boundary_parsed": self.boundary_parsed,
            "boundary_dropped": self.boundary_dropped,
        }
        for reason, count in sorted(self.boundary_quarantined.items()):
            out[f"boundary.{reason}"] = count
        for row in self.rows:
            tag = f"eps={row.eps:g}"
            out[f"{tag}.n_rated"] = row.n_rated
            out[f"{tag}.n_fraud_flagged"] = row.n_fraud_flagged
            out[f"{tag}.rating_contamination"] = round(
                row.rating_contamination, 6
            )
            out[f"{tag}.mos_naive"] = round(row.mos_naive, 6)
            out[f"{tag}.mos_trimmed"] = round(row.mos_trimmed, 6)
            out[f"{tag}.mos_mom"] = round(row.mos_mom, 6)
            out[f"{tag}.mos_trust"] = round(row.mos_trust, 6)
            out[f"{tag}.n_posts"] = row.n_posts
            out[f"{tag}.n_injected"] = row.n_injected
            out[f"{tag}.n_flagged_authors"] = row.n_flagged_authors
            out[f"{tag}.post_contamination"] = round(
                row.post_contamination, 6
            )
            out[f"{tag}.polarity_naive"] = round(row.polarity_naive, 6)
            out[f"{tag}.polarity_trust"] = round(row.polarity_trust, 6)
            out[f"{tag}.columnar_match"] = row.columnar_match
        return out

    def table(self) -> str:
        """Fixed-width ε sweep table (the CLI prints this)."""
        header = (
            f"{'eps':>5}  {'mos naive':>10}  {'mos trust':>10}  "
            f"{'pol naive':>10}  {'pol trust':>10}  "
            f"{'fraud':>5}  {'rings':>5}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.eps:>5g}  "
                f"{row.mos_naive:>10.4f}  {row.mos_trust:>10.4f}  "
                f"{row.polarity_naive:>10.4f}  "
                f"{row.polarity_trust:>10.4f}  "
                f"{row.n_fraud_flagged:>5}  {row.n_flagged_authors:>5}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        state = {0: "OK", 2: "VIOLATION", 3: "INEFFECTIVE"}[self.exit_code]
        top = self.rows[-1]
        return (
            f"integrity soak [{state}]: eps_max={top.eps:g} "
            f"naive_mos_dev={top.mos_naive_dev:+.3f} "
            f"trust_mos_dev={top.mos_trust_dev:+.3f} "
            f"(bound {self.mos_bound}); "
            f"naive_pol_dev={top.polarity_naive_dev:+.3f} "
            f"trust_pol_dev={top.polarity_trust_dev:+.3f} "
            f"(bound {self.polarity_bound}); "
            f"boundary quarantined="
            f"{sum(self.boundary_quarantined.values())}"
        )


def _boundary_records(seed: int, n: int) -> Tuple[Dict[str, object], ...]:
    """Seeded well-formed stream dicts for the boundary fault kind."""
    rng = derive(seed, "integrity.soak", "boundary")
    records = []
    t = 0.0
    for i in range(n):
        t += float(rng.uniform(0.05, 0.4))
        records.append({
            "event_time_s": round(t, 3),
            "source": "telemetry",
            "metric": "latency_ms",
            "value": round(float(rng.normal(120.0, 15.0)), 3),
            "key": f"user-{i % 50:03d}",
        })
    return tuple(records)


def run_integrity_soak(
    seed: int = DEFAULT_SEED,
    eps_grid: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    n_calls: int = 240,
    mos_sample_rate: float = 0.3,
    corpus_weeks: int = 4,
    mos_bound: float = MOS_BOUND,
    polarity_bound: float = POLARITY_BOUND,
    fraud_rating: int = 1,
    boundary_records: int = 400,
) -> IntegritySoakReport:
    """Run the ε-contamination sweep; see the module docstring for the
    contract.  Pure function of its arguments — byte-identical per seed.
    """
    from repro.errors import ConfigError
    from repro.integrity.estimators import (
        robust_mos,
        robust_mos_columns,
        robust_polarity,
        robust_polarity_columns,
    )
    from repro.integrity.online import parse_stream_dicts
    from repro.integrity.trust import (
        contamination_estimate,
        post_weights,
        post_weights_columns,
        rated_weights,
        rated_weights_columns,
        score_authors,
        score_raters,
    )
    from repro.nlp.sentiment import SentimentAnalyzer
    from repro.perf.columnar import CorpusColumns, ParticipantColumns
    from repro.resilience.faults import DataFaultSpec, FaultPlan
    from repro.social.corpus import CorpusConfig, CorpusGenerator
    from repro.telemetry.generator import CallDatasetGenerator, GeneratorConfig

    if not eps_grid:
        raise ConfigError("eps_grid must be non-empty")
    eps_grid = tuple(float(e) for e in eps_grid)
    if any(not 0 <= e <= 0.5 for e in eps_grid):
        raise ConfigError("every eps must be in [0, 0.5]")
    if list(eps_grid) != sorted(eps_grid):
        raise ConfigError("eps_grid must be ascending")

    # -- clean artifacts (generated once, shared across the sweep) -----
    dataset = CallDatasetGenerator(GeneratorConfig(
        n_calls=n_calls, seed=seed, mos_sample_rate=mos_sample_rate,
    )).generate()
    span_start = dt.date(2021, 1, 1)
    corpus_config = CorpusConfig(
        seed=seed,
        span_start=span_start,
        span_end=span_start + dt.timedelta(days=7 * corpus_weeks - 1),
    )
    corpus = CorpusGenerator(corpus_config).generate()
    analyzer = SentimentAnalyzer()

    clean_mos = robust_mos(dataset, "mean")
    clean_polarity = robust_polarity(corpus, analyzer, "mean")

    rows = []
    violations = []
    ineffective = []
    for eps in eps_grid:
        plan = FaultPlan(seed=seed)
        spec = DataFaultSpec(
            brigade_fraction=eps,
            fraud_fraction=eps,
            fraud_rating=fraud_rating,
            drift_fraction=eps / 2,
        )
        injector = plan.data_faults(f"eps-{eps:g}", spec)
        tainted_calls = injector.contaminate_calls(dataset)
        tainted_corpus = injector.contaminate_corpus(corpus)

        # Ratings: naive vs reference estimators vs trust-weighted.
        rater_scores = score_raters(tainted_calls.dataset)
        rating_weights = rated_weights(tainted_calls.dataset, rater_scores)
        mos_naive = robust_mos(tainted_calls.dataset, "mean")
        mos_trimmed = robust_mos(tainted_calls.dataset, "trimmed_mean")
        mos_mom = robust_mos(tainted_calls.dataset, "median_of_means")
        mos_trust = robust_mos(
            tainted_calls.dataset, "mean", weights=rating_weights
        )

        # Sentiment: naive vs trust-weighted polarity.
        author_scores = score_authors(tainted_corpus.corpus.posts())
        pw = post_weights(tainted_corpus.corpus, author_scores)
        polarity_naive = robust_polarity(
            tainted_corpus.corpus, analyzer, "mean"
        )
        polarity_trust = robust_polarity(
            tainted_corpus.corpus, analyzer, "mean", weights=pw
        )

        # Record vs columnar equality pins (exact, not approximate).
        pcols = ParticipantColumns.from_dataset(tainted_calls.dataset)
        ccols = CorpusColumns.from_corpus(tainted_corpus.corpus)
        columnar_match = (
            robust_mos_columns(pcols, "mean") == mos_naive
            and robust_mos_columns(pcols, "trimmed_mean") == mos_trimmed
            and robust_mos_columns(
                pcols, "mean",
                weights=rated_weights_columns(pcols, rater_scores),
            ) == mos_trust
            and robust_polarity_columns(ccols, analyzer, "mean")
            == polarity_naive
            and robust_polarity_columns(
                ccols, analyzer, "mean",
                weights=post_weights_columns(ccols, author_scores),
            ) == polarity_trust
        )

        n_rated = int(rating_weights.shape[0])
        row = EpsOutcome(
            eps=eps,
            n_rated=n_rated,
            n_fraud_flagged=sum(
                1 for s in rater_scores.values() if s.trust == 0.0
            ),
            rating_contamination=contamination_estimate(rater_scores),
            mos_naive=mos_naive,
            mos_trimmed=mos_trimmed,
            mos_mom=mos_mom,
            mos_trust=mos_trust,
            mos_naive_dev=mos_naive - clean_mos,
            mos_trust_dev=mos_trust - clean_mos,
            n_posts=len(tainted_corpus.corpus),
            n_injected=tainted_corpus.n_injected,
            n_flagged_authors=sum(
                1 for s in author_scores.values() if s.trust == 0.0
            ),
            post_contamination=contamination_estimate(author_scores),
            polarity_naive=polarity_naive,
            polarity_trust=polarity_trust,
            polarity_naive_dev=polarity_naive - clean_polarity,
            polarity_trust_dev=polarity_trust - clean_polarity,
            columnar_match=columnar_match,
        )
        rows.append(row)

        if abs(row.mos_trust_dev) > mos_bound:
            violations.append(
                f"eps={eps:g}: trust-weighted MOS deviated "
                f"{row.mos_trust_dev:+.4f} (bound {mos_bound})"
            )
        if abs(row.polarity_trust_dev) > polarity_bound:
            violations.append(
                f"eps={eps:g}: trust-weighted polarity deviated "
                f"{row.polarity_trust_dev:+.4f} (bound {polarity_bound})"
            )
        if not columnar_match:
            violations.append(
                f"eps={eps:g}: record and columnar robust aggregates "
                f"disagree"
            )
        if eps == 0.0:
            if row.rating_contamination > FALSE_POSITIVE_TOLERANCE:
                ineffective.append(
                    f"clean run flagged {row.rating_contamination:.3f} "
                    f"of ratings (false positives)"
                )
            if row.post_contamination > FALSE_POSITIVE_TOLERANCE:
                ineffective.append(
                    f"clean run flagged {row.post_contamination:.3f} "
                    f"of posts (false positives)"
                )

    top = rows[-1]
    if top.eps > 0:
        if abs(top.mos_naive_dev) <= mos_bound:
            ineffective.append(
                f"naive MOS held at eps={top.eps:g} "
                f"({top.mos_naive_dev:+.4f} within {mos_bound}) — "
                f"attack too weak to demonstrate anything"
            )
        if abs(top.polarity_naive_dev) <= polarity_bound:
            ineffective.append(
                f"naive polarity held at eps={top.eps:g} "
                f"({top.polarity_naive_dev:+.4f} within {polarity_bound})"
            )
        if top.n_fraud_flagged == 0:
            ineffective.append(
                f"no raters flagged at eps={top.eps:g} "
                f"(rating-fraud detection ineffective)"
            )
        if top.n_flagged_authors == 0:
            ineffective.append(
                f"no authors flagged at eps={top.eps:g} "
                f"(brigade detection ineffective)"
            )

    # -- stream-boundary fault kind ------------------------------------
    eps_max = eps_grid[-1]
    boundary_plan = FaultPlan(seed=seed)
    mangled = boundary_plan.data_faults(
        "boundary",
        DataFaultSpec(malform_rate=eps_max / 2, drop_rate=eps_max / 4),
    ).mangle_stream(_boundary_records(seed, boundary_records))
    boundary = parse_stream_dicts(mangled.records)
    if eps_max > 0 and boundary.n_quarantined != mangled.malformed:
        violations.append(
            f"boundary ledger leak: {mangled.malformed} malformed but "
            f"{boundary.n_quarantined} quarantined"
        )

    return IntegritySoakReport(
        seed=seed,
        eps_grid=eps_grid,
        mos_bound=mos_bound,
        polarity_bound=polarity_bound,
        clean_mos=clean_mos,
        clean_polarity=clean_polarity,
        rows=tuple(rows),
        boundary_parsed=len(boundary.records),
        boundary_dropped=mangled.dropped,
        boundary_quarantined=dict(boundary.quarantined),
        violations=tuple(violations),
        ineffective=tuple(ineffective),
    )

"""§5's MOS prediction as a first-class, perf-grade query surface.

The paper's USaaS vision needs MOS for *every* session while explicit
ratings cover well under 1 % of them.  This package closes that gap as
three layers:

* :mod:`repro.prediction.model` — :class:`ColumnarMosPredictor`, ridge
  regression trained on the sparse ``rating`` column of a
  :class:`~repro.perf.columnar.ParticipantColumns` block and predicting
  for every row in one vectorized call, byte-identical to the
  record-based :class:`~repro.engagement.predictor.MosPredictor`
  reference;
* :mod:`repro.prediction.emodel` — the vectorized E-model prior
  (:func:`emodel_prior_mos`), the deadline-pressure fallback that needs
  no training and no engagement features;
* :mod:`repro.prediction.service` / :mod:`repro.prediction.coalescer`
  — the serving side: a :class:`PredictionEngine` bound to a columnar
  block plus a :class:`PredictionCoalescer` that micro-batches
  batch-class ``predict_mos`` queries in front of the admission
  controller, with a :class:`PredictionCostModel`-driven fallback
  ladder so a prediction never blows its deadline by more than one
  batch cost.

:mod:`repro.prediction.evaluate` grades predictions against the
simulator's ground-truth experienced QoE (something the paper's
operators cannot do), overall and per platform via
:class:`~repro.core.stats.BinGrouping`; :mod:`repro.prediction.soak`
drives the serving path under deterministic overload on a
:class:`~repro.resilience.clock.ManualClock`.
"""

from repro.prediction.coalescer import CoalescerConfig, PredictionCoalescer
from repro.prediction.emodel import emodel_prior_from_arrays, emodel_prior_mos
from repro.prediction.evaluate import GroundTruthReport, evaluate_ground_truth
from repro.prediction.model import ColumnarMosPredictor
from repro.prediction.service import (
    MosPredictionAnswer,
    PredictionCostModel,
    PredictionEngine,
)
from repro.prediction.soak import (
    PredictionSoakReport,
    run_prediction_soak,
    synthetic_prediction_server,
)

__all__ = [
    "CoalescerConfig",
    "ColumnarMosPredictor",
    "GroundTruthReport",
    "MosPredictionAnswer",
    "PredictionCoalescer",
    "PredictionCostModel",
    "PredictionEngine",
    "PredictionSoakReport",
    "emodel_prior_from_arrays",
    "emodel_prior_mos",
    "evaluate_ground_truth",
    "run_prediction_soak",
    "synthetic_prediction_server",
]

"""The vectorized E-model prior: MOS with no training and no ratings.

When the ridge model cannot run — no rated sessions to train on, or a
deadline too tight for a full batch — the serving layer falls back to
the same G.107-flavoured QoE mapping the simulator itself uses
(:mod:`repro.netsim.qoe`), applied to each session's *aggregate*
network conditions.  It is a prior in the strict sense: purely
network-derived, blind to engagement, platform mitigation tuning and
per-interval dynamics, which is exactly why the trained model must
beat it on ground-truth MAE (the harness asserts this).

Everything here is a pure elementwise array computation via
:func:`repro.netsim.vectorized.mitigate_arrays` /
:func:`~repro.netsim.vectorized.qoe_arrays` — no clock, no RNG.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel
from repro.netsim.vectorized import mitigate_arrays, qoe_arrays
from repro.perf.columnar import ParticipantColumns

#: Burstiness assumed when scoring session aggregates.  Aggregate
#: columns do not carry burstiness, so the prior uses the default
#: :class:`~repro.netsim.link.LinkProfile` value — the same neutral
#: assumption the CLI's netsim commands default to.
DEFAULT_BURSTINESS = 0.3


def emodel_prior_from_arrays(
    latency_ms: np.ndarray,
    loss_pct: np.ndarray,
    jitter_ms: np.ndarray,
    bandwidth_mbps: np.ndarray,
    model: Optional[QoeModel] = None,
    stack: Optional[MitigationStack] = None,
    burstiness: float = DEFAULT_BURSTINESS,
) -> np.ndarray:
    """Overall MOS in [1, 5] for per-session aggregate conditions."""
    effective = mitigate_arrays(
        stack if stack is not None else MitigationStack(),
        np.asarray(latency_ms, dtype=float),
        np.asarray(loss_pct, dtype=float),
        np.asarray(jitter_ms, dtype=float),
        np.asarray(bandwidth_mbps, dtype=float),
        burstiness,
    )
    quality = qoe_arrays(model if model is not None else QoeModel(), effective)
    return np.clip(quality.overall_mos, 1.0, 5.0)


def emodel_prior_mos(
    cols: ParticipantColumns,
    rows: Optional[np.ndarray] = None,
    model: Optional[QoeModel] = None,
    stack: Optional[MitigationStack] = None,
    network_stat: str = "mean",
    burstiness: float = DEFAULT_BURSTINESS,
) -> np.ndarray:
    """The prior over ``rows`` of a columnar block (all rows when None)."""
    if rows is not None:
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return np.array([])
    elif len(cols) == 0:
        return np.array([])

    def column(name: str) -> np.ndarray:
        col = cols.metric(name, network_stat)
        return col if rows is None else col[rows]

    return emodel_prior_from_arrays(
        column("latency_ms"),
        column("loss_pct"),
        column("jitter_ms"),
        column("bandwidth_mbps"),
        model=model,
        stack=stack,
        burstiness=burstiness,
    )
